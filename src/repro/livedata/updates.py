"""Live-data update records and their wire payloads.

SQPeer's advertisements are only meaningful while they track the data:
"each peer base can join and leave the network at will" (Section 1) —
and, between joining and leaving, *change*.  This module defines the
update vocabulary a live data plane speaks:

* **update records** — insert/delete one asserted triple, or redefine
  the RVL views of a virtual base (:class:`InsertTriple`,
  :class:`DeleteTriple`, :class:`RedefineViews`);
* **:class:`UpdateBatch`** — a peer-addressed batch of records, the
  unit of injection both in-sim and over the live transport;
* **:class:`AdvertiseDelta`** — the *incremental* advertisement: only
  the schema fragments that flipped (paths/classes added or removed)
  travel, instead of the full active-schema — the economy Section 2.2
  claims over full data indices, now extended to refreshes;
* **continuous-query payloads** — subscribe/push/cancel for standing
  queries whose answers follow the data (:class:`ContinuousSubscribe`,
  :class:`ContinuousUpdate`, :class:`ContinuousCancel`,
  :class:`RefreshStanding`).

Every payload carries ``size_bytes`` so the simulator charges realistic
bandwidth, and every one is registered with the wire codec so live
deployments speak the identical protocol.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple, Union

from ..errors import SchemaError
from ..rdf.terms import URI
from ..rdf.triple import Triple
from ..rql.bindings import BindingTable
from ..rql.pattern import SchemaPath
from ..rvl.active_schema import ActiveSchema

#: flat per-term estimate used when sizing triples on the wire
_TRIPLE_BYTES = 24


def _triple_bytes(triple: Triple) -> int:
    return _TRIPLE_BYTES + sum(len(str(t)) for t in triple)


@dataclass(frozen=True)
class InsertTriple:
    """Assert one statement in the target peer's base."""

    triple: Triple

    def size_bytes(self) -> int:
        return _triple_bytes(self.triple)


@dataclass(frozen=True)
class DeleteTriple:
    """Retract one statement from the target peer's base."""

    triple: Triple

    def size_bytes(self) -> int:
        return _triple_bytes(self.triple)


@dataclass(frozen=True)
class RedefineViews:
    """Replace the target peer's RVL view set.

    Views travel as RVL source text (the canonical exchange syntax);
    the receiving peer re-parses them, so the record round-trips the
    wire without a structured view codec.  An empty tuple reverts the
    base to the materialised scenario (advertise what is populated).
    """

    texts: Tuple[str, ...]

    def size_bytes(self) -> int:
        return 16 + sum(len(t) + 2 for t in self.texts)


#: the union of record kinds an :class:`UpdateBatch` may carry
UpdateRecord = Union[InsertTriple, DeleteTriple, RedefineViews]


@dataclass(frozen=True)
class UpdateBatch:
    """Injector → peer: apply these updates to your base.

    Attributes:
        target: The peer whose base changes.
        revision: Monotone revision stamp of the stream; quiescent
            points are identified by it (continuous queries re-evaluate
            per revision).
        updates: The records, applied in order.
    """

    target: str
    revision: int
    updates: Tuple[UpdateRecord, ...]

    def size_bytes(self) -> int:
        return 48 + sum(u.size_bytes() for u in self.updates)


@dataclass(frozen=True)
class UpdateAck:
    """Peer → injector: batch ``revision`` applied (``applied`` counts
    the records that actually changed the base)."""

    target: str
    revision: int
    applied: int

    def size_bytes(self) -> int:
        return 48 + len(self.target)


@dataclass(frozen=True)
class AdvertiseDelta:
    """Peer → advertisement holder: my active-schema changed *by this
    much*.

    The holder reconstructs the new full advertisement from the one it
    already has — only the flipped fragments travel.  ``stats``
    piggybacks the refreshed per-property cardinalities exactly like a
    full :class:`~repro.peers.protocol.Advertise` does.
    """

    schema_uri: str
    peer_id: str
    added_paths: Tuple[SchemaPath, ...] = ()
    removed_paths: Tuple[SchemaPath, ...] = ()
    added_classes: Tuple[URI, ...] = ()
    removed_classes: Tuple[URI, ...] = ()
    stats: Optional[object] = None

    def is_empty(self) -> bool:
        return not (
            self.added_paths
            or self.removed_paths
            or self.added_classes
            or self.removed_classes
        )

    def size_bytes(self) -> int:
        path_bytes = sum(
            len(p.domain.value) + len(p.property.value) + len(p.range.value) + 6
            for p in self.added_paths + self.removed_paths
        )
        class_bytes = sum(
            len(c.value) + 2 for c in self.added_classes + self.removed_classes
        )
        stat_bytes = self.stats.size_bytes() if self.stats is not None else 0
        return 24 + len(self.schema_uri) + len(self.peer_id) + path_bytes + class_bytes + stat_bytes


def advertisement_delta(
    old: ActiveSchema, new: ActiveSchema, stats=None
) -> AdvertiseDelta:
    """The delta that turns advertisement ``old`` into ``new``.

    Classes are diffed over the *full* class sets (asserted plus
    path-implied), so :func:`apply_advertisement_delta` reproduces
    ``new`` exactly — digests agree with a from-scratch re-derivation.
    """
    if old.schema_uri != new.schema_uri:
        raise SchemaError(
            f"cannot diff advertisements of {old.schema_uri} and {new.schema_uri}"
        )
    return AdvertiseDelta(
        new.schema_uri,
        new.peer_id or old.peer_id or "",
        added_paths=tuple(sorted(new.paths - old.paths, key=str)),
        removed_paths=tuple(sorted(old.paths - new.paths, key=str)),
        added_classes=tuple(sorted(new.classes - old.classes, key=str)),
        removed_classes=tuple(sorted(old.classes - new.classes, key=str)),
        stats=stats,
    )


def apply_advertisement_delta(old: ActiveSchema, delta: AdvertiseDelta) -> ActiveSchema:
    """Reconstruct the new advertisement from ``old`` plus a delta.

    Inverse of :func:`advertisement_delta`:
    ``apply(old, delta(old, new)) == new`` for any pair over the same
    schema — the property the maintenance suite pins down.
    """
    if old.schema_uri != delta.schema_uri:
        raise SchemaError(
            f"delta for {delta.schema_uri} cannot apply to {old.schema_uri}"
        )
    paths = (old.paths - frozenset(delta.removed_paths)) | frozenset(delta.added_paths)
    classes = (old.classes - frozenset(delta.removed_classes)) | frozenset(
        delta.added_classes
    )
    return ActiveSchema(old.schema_uri, paths, classes, delta.peer_id or old.peer_id)


# ----------------------------------------------------------------------
# continuous queries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ContinuousSubscribe:
    """Client → coordinator: keep this query standing; push deltas."""

    query_id: str
    text: str
    reply_to: str

    def size_bytes(self) -> int:
        return 64 + len(self.text)


@dataclass(frozen=True)
class ContinuousUpdate:
    """Coordinator → subscriber: the answer changed by these bindings.

    Folding every update in revision order onto the initial snapshot
    reproduces the current answer: ``next = (prev - removed) + added``.
    """

    query_id: str
    added: BindingTable
    removed: BindingTable
    revision: int
    error: Optional[str] = None

    def size_bytes(self) -> int:
        return 48 + self.added.size_bytes() + self.removed.size_bytes()


@dataclass(frozen=True)
class ContinuousCancel:
    """Subscriber → coordinator: stop pushing for this standing query."""

    query_id: str

    def size_bytes(self) -> int:
        return 48 + len(self.query_id)


@dataclass(frozen=True)
class RefreshStanding:
    """Injector → coordinator: revision ``revision`` has quiesced —
    re-evaluate your standing queries and push what changed.

    Driving re-evaluation from the update injector keeps the quiescent
    points explicit (and identical in sim and live runs) instead of
    guessing them from message silence.
    """

    revision: int

    def size_bytes(self) -> int:
        return 32


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------
def active_schema_digest(advertisements: Iterable[ActiveSchema]) -> str:
    """A canonical digest over a set of advertisements.

    Serialises each advertisement through its sorted ``to_dict`` wire
    form, orders by peer id, and hashes — so two registries agree on
    the digest iff they hold value-identical advertisements, however
    they were derived (incrementally or from scratch).
    """
    payload = sorted(
        (a.to_dict() for a in advertisements),
        key=lambda d: (str(d.get("peer")), json.dumps(d, sort_keys=True)),
    )
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
