"""Continuous (standing) query state and binding-table deltas.

A standing query's answer follows the data: at each quiescent revision
the coordinator re-evaluates it and pushes only what changed — a
:class:`~repro.livedata.updates.ContinuousUpdate` carrying the added
and removed bindings.  Subscribers reconstruct the current answer by
*folding* updates onto their snapshot: ``next = (prev - removed) +
added``, a multiset identity the difftest wall checks bit-for-bit
against a from-scratch oracle evaluation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import EvaluationError
from ..rql.bindings import BindingTable
from .updates import ContinuousUpdate


@dataclass
class StandingQuery:
    """Coordinator-side state of one continuous subscription."""

    query_id: str
    text: str
    reply_to: str
    #: the answer as of the last pushed revision (None before the
    #: initial evaluation completed)
    snapshot: Optional[BindingTable] = None
    #: highest revision evaluated (0 = the initial snapshot)
    revision: int = 0
    #: True while a re-evaluation is in flight (refreshes arriving
    #: faster than evaluations queue up in :attr:`pending_revisions`)
    evaluating: bool = False
    pending_revisions: list = field(default_factory=list)


def _aligned_rows(table: BindingTable, columns: Tuple[str, ...]):
    """The table's rows reordered into ``columns`` order."""
    if table.columns == columns:
        return list(table.rows)
    if not table.rows:
        # an empty table aligns with anything (the columns of an empty
        # standing-query snapshot are unknown until rows first appear)
        return []
    if set(table.columns) != set(columns):
        raise EvaluationError(
            f"cannot align columns {table.columns} with {columns}"
        )
    reorder = [table.column_index(c) for c in columns]
    return [tuple(row[i] for i in reorder) for row in table.rows]


def _canonical(rows) -> "Counter":
    return Counter(rows)


def _row_key(row) -> Tuple[str, ...]:
    """Deterministic ordering for rows of (unorderable) terms."""
    return tuple(term.n3() for term in row)


def table_delta(
    previous: Optional[BindingTable], current: BindingTable
) -> Tuple[BindingTable, BindingTable]:
    """The ``(added, removed)`` multiset difference turning ``previous``
    into ``current`` (both over ``current``'s columns)."""
    columns = current.columns
    before = _canonical(
        _aligned_rows(previous, columns) if previous is not None else ()
    )
    after = _canonical(list(current.rows))
    added = BindingTable(columns)
    removed = BindingTable(columns)
    for row, count in sorted((after - before).items(), key=lambda kv: _row_key(kv[0])):
        for _ in range(count):
            added.append(row)
    for row, count in sorted((before - after).items(), key=lambda kv: _row_key(kv[0])):
        for _ in range(count):
            removed.append(row)
    return added, removed


def fold_delta(
    previous: Optional[BindingTable], update: ContinuousUpdate
) -> BindingTable:
    """Apply one pushed delta: ``(previous - removed) + added``.

    The subscriber-side half of the protocol; folding every update in
    revision order onto the initial snapshot reproduces the
    coordinator's current answer exactly.
    """
    columns = update.added.columns or (
        previous.columns if previous is not None else update.removed.columns
    )
    rows = _canonical(
        _aligned_rows(previous, columns) if previous is not None else ()
    )
    rows = rows - _canonical(_aligned_rows(update.removed, columns))
    rows = rows + _canonical(_aligned_rows(update.added, columns))
    out = BindingTable(columns)
    for row, count in sorted(rows.items(), key=lambda kv: _row_key(kv[0])):
        for _ in range(count):
            out.append(row)
    return out
