"""The live data plane: seeded update streams, incremental
active-schema maintenance, and continuous/top-k query support."""

from .continuous import StandingQuery, fold_delta, table_delta
from .maintenance import AppliedBatch, LiveMaintainer
from .stream import LiveDataDriver, UpdateInjector, UpdateStream, covering_view_text
from .updates import (
    AdvertiseDelta,
    ContinuousCancel,
    ContinuousSubscribe,
    ContinuousUpdate,
    DeleteTriple,
    InsertTriple,
    RedefineViews,
    RefreshStanding,
    UpdateAck,
    UpdateBatch,
    active_schema_digest,
    advertisement_delta,
    apply_advertisement_delta,
)

__all__ = [
    "AdvertiseDelta",
    "AppliedBatch",
    "ContinuousCancel",
    "ContinuousSubscribe",
    "ContinuousUpdate",
    "DeleteTriple",
    "InsertTriple",
    "LiveDataDriver",
    "LiveMaintainer",
    "RedefineViews",
    "RefreshStanding",
    "StandingQuery",
    "UpdateAck",
    "UpdateBatch",
    "UpdateInjector",
    "UpdateStream",
    "active_schema_digest",
    "advertisement_delta",
    "apply_advertisement_delta",
    "covering_view_text",
    "fold_delta",
    "table_delta",
]
