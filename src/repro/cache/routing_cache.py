"""The routing cache: signature → annotation, coherent under churn.

A cached entry is the full routing answer for one canonical pattern
signature, stored in re-targetable form (per canonical position, the
annotating peers with their rewritten schema paths).  Coherence is the
hard part: peers join, leave (``Goodbye``) and refresh advertisements
at will, and a stale annotation must never be served — it would route
a live query to a departed peer or miss a newly advertised one.

Invalidation is *scoped*, not flush-the-world:

* a departing peer invalidates exactly the entries that annotate it
  (removing an advertisement can only ever remove annotations);
* a new or refreshed advertisement invalidates the entries whose query
  properties lie in the superproperty closure of the advertised
  properties — the same closure the
  :class:`~repro.core.routing_index.RoutingIndex` buckets use, so any
  entry the advertisement could possibly extend is dropped — plus, on
  refresh, the entries annotating the peer (its rewrites may change).

Every registry mutation bumps the cache ``epoch``; entries are stamped
with the epoch they were computed at, which makes staleness auditable
(an entry's epoch never trails a mutation that could affect it).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.annotations import AnnotatedQueryPattern, PeerAnnotation
from ..rdf.schema import Schema
from ..rdf.terms import URI
from ..rql.pattern import PathPattern, QueryPattern, SchemaPath
from ..rvl.active_schema import ActiveSchema
from .signature import Signature, pattern_signature

#: One cached peer annotation: (peer id, rewritten schema path, exact).
_StoredAnnotation = Tuple[str, SchemaPath, bool]


class CacheStats:
    """Hit/miss/invalidation counters one cache instance accumulates."""

    __slots__ = ("hits", "misses", "invalidations", "negative_hits")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.negative_hits = 0

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"invalidations={self.invalidations})"
        )


class _Entry:
    """One cached routing answer in canonical (re-targetable) form.

    ``source_patterns`` / ``prebuilt`` additionally keep the immutable
    :class:`~repro.core.annotations.PeerAnnotation` objects of the
    pattern the entry was built from (in canonical order): when the
    same query repeats verbatim — the common warm case — the hit path
    replays them without constructing a single object.
    """

    __slots__ = (
        "schema_uri",
        "properties",
        "peers",
        "annotations",
        "source_patterns",
        "prebuilt",
        "epoch",
    )

    def __init__(
        self,
        schema_uri: str,
        properties: frozenset,
        peers: frozenset,
        annotations: Tuple[Tuple[_StoredAnnotation, ...], ...],
        source_patterns: Tuple[PathPattern, ...],
        prebuilt: Tuple[Tuple[PeerAnnotation, ...], ...],
        epoch: int,
    ):
        self.schema_uri = schema_uri
        self.properties = properties
        self.peers = peers
        self.annotations = annotations
        self.source_patterns = source_patterns
        self.prebuilt = prebuilt
        self.epoch = epoch

    @property
    def is_negative(self) -> bool:
        return not self.peers


class RoutingCache:
    """Signature-keyed cache of routing annotations for one registry.

    One cache instance serves one routing knowledge base — a
    super-peer's per-SON registry or a simple peer's neighbourhood
    knowledge — whose every mutation must be reported through
    :meth:`on_advertise` / :meth:`on_goodbye` (or the lower-level
    ``invalidate_*`` methods).

    Args:
        schemas: The community schemas whose subsumption closures scope
            advertisement-driven invalidation.  An advertisement for a
            schema not supplied here conservatively invalidates every
            entry of that schema.
        max_entries: Bound on stored entries (LRU-free FIFO eviction of
            the oldest signature; routing answers are cheap to rebuild).
    """

    def __init__(self, schemas: Iterable[Schema] = (), max_entries: int = 4096):
        self._schemas: Dict[str, Schema] = {
            s.namespace.uri: s for s in schemas if s is not None
        }
        self.max_entries = max_entries
        self.epoch = 0
        self.stats = CacheStats()
        self.metrics = None  # optionally a MetricSet, via bind_metrics()
        #: optional callable(count) fired per invalidation batch — the
        #: owning peer hangs a flight-recorder event off it
        self.on_invalidate = None
        self._entries: Dict[Tuple, _Entry] = {}
        self._by_peer: Dict[str, Set[Tuple]] = {}
        #: (schema uri, query property) -> signature keys
        self._by_property: Dict[Tuple[str, URI], Set[Tuple]] = {}

    def add_schema(self, schema: Schema) -> None:
        """Register another community schema's closure for scoping."""
        self._schemas[schema.namespace.uri] = schema

    def bind_metrics(self, metrics) -> None:
        """Mirror hit/miss/invalidation counts into a MetricSet."""
        self.metrics = metrics

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------
    def get(
        self, pattern: QueryPattern, signature: Optional[Signature] = None
    ) -> Optional[AnnotatedQueryPattern]:
        """The cached annotation re-targeted onto ``pattern``, or None.

        Re-targeting rebuilds each rewritten subquery with the *new*
        pattern's label and variables around the cached (narrowed)
        schema path, so a hit is indistinguishable from a cold route.
        """
        if signature is None:
            signature = pattern_signature(pattern)
        entry = self._entries.get(signature.key)
        if entry is None:
            self.stats.misses += 1
            if self.metrics is not None:
                self.metrics.record_cache_miss()
            return None
        self.stats.hits += 1
        if entry.is_negative:
            self.stats.negative_hits += 1
        if self.metrics is not None:
            self.metrics.record_cache_hit()
        annotated = AnnotatedQueryPattern(pattern)
        patterns = pattern.patterns
        for position, j in enumerate(signature.order):
            target = patterns[j]
            if target == entry.source_patterns[position]:
                # verbatim repeat: replay the stored immutable
                # annotations, zero construction
                annotated.extend_trusted(target, entry.prebuilt[position])
                continue
            annotated.extend_trusted(
                target,
                [
                    PeerAnnotation(
                        peer_id,
                        PathPattern(
                            label=target.label,
                            schema_path=schema_path,
                            subject_var=target.subject_var,
                            object_var=target.object_var,
                            projected=target.projected,
                        ),
                        exact,
                    )
                    for peer_id, schema_path, exact in entry.annotations[position]
                ],
            )
        return annotated

    def put(
        self,
        pattern: QueryPattern,
        annotated: AnnotatedQueryPattern,
        signature: Optional[Signature] = None,
    ) -> None:
        """Store one routing answer (empty annotations cache negatively)."""
        if signature is None:
            signature = pattern_signature(pattern)
        if signature.key in self._entries:
            self._unlink(signature.key)
        elif len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            self._unlink(oldest)
            del self._entries[oldest]
        patterns = pattern.patterns
        stored: List[Tuple[_StoredAnnotation, ...]] = []
        prebuilt: List[Tuple[PeerAnnotation, ...]] = []
        source: List[PathPattern] = []
        peers: Set[str] = set()
        for j in signature.order:
            target = patterns[j]
            annotations = annotated.annotations(target)
            row = tuple(
                (a.peer_id, a.rewritten.schema_path, a.exact) for a in annotations
            )
            stored.append(row)
            prebuilt.append(annotations)
            source.append(target)
            peers.update(a[0] for a in row)
        properties = frozenset(p.schema_path.property for p in patterns)
        entry = _Entry(
            pattern.schema.namespace.uri,
            properties,
            frozenset(peers),
            tuple(stored),
            tuple(source),
            tuple(prebuilt),
            self.epoch,
        )
        self._entries[signature.key] = entry
        for peer_id in entry.peers:
            self._by_peer.setdefault(peer_id, set()).add(signature.key)
        for prop in properties:
            self._by_property.setdefault(
                (entry.schema_uri, prop), set()
            ).add(signature.key)

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def _unlink(self, key: Tuple) -> None:
        entry = self._entries[key]
        for peer_id in entry.peers:
            bucket = self._by_peer.get(peer_id)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_peer[peer_id]
        for prop in entry.properties:
            bucket = self._by_property.get((entry.schema_uri, prop))
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_property[(entry.schema_uri, prop)]

    def _drop(self, keys: Iterable[Tuple]) -> int:
        count = 0
        for key in list(keys):
            if key in self._entries:
                self._unlink(key)
                del self._entries[key]
                count += 1
        if count:
            self.stats.invalidations += count
            if self.metrics is not None:
                self.metrics.record_cache_invalidation(count)
            if self.on_invalidate is not None:
                self.on_invalidate(count)
        return count

    def invalidate_peer(self, peer_id: str) -> int:
        """Drop exactly the entries annotating ``peer_id``."""
        return self._drop(self._by_peer.get(peer_id, ()))

    def invalidate_properties(
        self, schema_uri: str, properties: Iterable[URI]
    ) -> int:
        """Drop the entries a new advertisement of ``properties`` under
        ``schema_uri`` could extend.

        The affected query properties are the superproperty closure of
        the advertised ones (an advertisement for ``prop4 ⊑ prop1``
        answers ``prop1`` queries).  Without the schema's closure the
        scope cannot be computed, so every entry of that schema drops —
        over-invalidation is always safe, under-invalidation never is.
        """
        schema = self._schemas.get(schema_uri)
        if schema is None:
            return self._drop(
                key
                for key, entry in self._entries.items()
                if entry.schema_uri == schema_uri
            )
        affected: Set[Tuple] = set()
        for prop in properties:
            if schema.has_property(prop):
                keys: Iterable[URI] = schema.superproperties(prop)
            else:
                keys = (prop,)
            for query_prop in keys:
                affected.update(self._by_property.get((schema_uri, query_prop), ()))
        return self._drop(affected)

    def on_advertise(
        self, advertisement: ActiveSchema, previous: Optional[ActiveSchema] = None
    ) -> int:
        """A peer advertised (join or refresh): scoped invalidation.

        Entries annotating the peer drop (its rewrites may change);
        entries whose query properties the new footprint could answer
        drop (they may gain an annotation).  An unchanged re-advertise
        is a no-op.
        """
        if previous is not None and previous == advertisement:
            return 0
        self.epoch += 1
        count = 0
        if advertisement.peer_id is not None:
            count += self.invalidate_peer(advertisement.peer_id)
        count += self.invalidate_properties(
            advertisement.schema_uri, {p.property for p in advertisement}
        )
        return count

    def on_goodbye(self, peer_id: str) -> int:
        """A peer departed: only entries annotating it can be stale."""
        self.epoch += 1
        return self.invalidate_peer(peer_id)

    def clear(self) -> int:
        """Flush everything (epoch bumps; counters record the flush)."""
        self.epoch += 1
        return self._drop(list(self._entries))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def entry_epoch(self, pattern: QueryPattern) -> Optional[int]:
        """The registry epoch a cached pattern was computed at."""
        entry = self._entries.get(pattern_signature(pattern).key)
        return entry.epoch if entry is not None else None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pattern: QueryPattern) -> bool:
        return pattern_signature(pattern).key in self._entries

    def __repr__(self) -> str:
        return f"RoutingCache(entries={len(self._entries)}, epoch={self.epoch}, {self.stats})"
