"""Request coalescing (singleflight) for in-flight identical queries.

Under heavy traffic the same query arrives at a coordinator many times
before the first copy finishes — routing, planning and the whole
distributed execution would run once per copy.  The coalescer keys
in-flight work by ``(query text, result-shaping constraints)``: the
first arrival becomes the **leader** and proceeds normally; subsequent
identical arrivals become **followers**, parked until the leader's
completion continuation answers them all from the single shared
result.

The key is the exact query text (plus constraints), not the canonical
pattern signature: two isomorphic-but-differently-written queries may
project different variable *names*, so only textual equality
guarantees the leader's final table answers the follower verbatim.
Isomorphic variants still share work one layer down, in the routing
cache.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, TypeVar

R = TypeVar("R")


class QueryCoalescer:
    """Tracks in-flight leaders and their parked followers."""

    def __init__(self):
        #: coalescing key -> leader query id
        self._leaders: Dict[Hashable, str] = {}
        #: leader query id -> its coalescing key (for completion)
        self._key_of: Dict[str, Hashable] = {}
        #: leader query id -> parked follower requests
        self._followers: Dict[str, List] = {}

    def admit(self, key: Hashable, query_id: str, request: R) -> Optional[str]:
        """Admit one request under a coalescing key.

        Returns ``None`` when the request becomes the leader (caller
        proceeds with routing/planning/execution), or the leader's
        query id when the request was parked as a follower (caller
        stops; :meth:`complete` will surface it).
        """
        leader = self._leaders.get(key)
        if leader is None:
            self._leaders[key] = query_id
            self._key_of[query_id] = key
            return None
        self._followers.setdefault(leader, []).append(request)
        return leader

    def complete(self, query_id: str) -> List:
        """The leader finished (result or error): release its followers.

        Idempotent; unknown (non-leader) ids release nothing.  The
        coalescing key is retired first, so requests arriving after
        completion start a fresh flight.
        """
        key = self._key_of.pop(query_id, None)
        if key is not None and self._leaders.get(key) == query_id:
            del self._leaders[key]
        return self._followers.pop(query_id, [])

    def in_flight(self) -> int:
        """The number of distinct leaders currently flying."""
        return len(self._leaders)

    def parked(self) -> int:
        """The number of followers currently parked."""
        return sum(len(f) for f in self._followers.values())

    def __repr__(self) -> str:
        return f"QueryCoalescer(in_flight={self.in_flight()}, parked={self.parked()})"
