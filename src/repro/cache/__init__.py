"""Semantic routing & plan caching with churn-driven invalidation.

SQPeer's routing step (paper Section 2.3) re-annotates every query
pattern against the active-schema registry; under the repeated-query
workloads the related work observes (query-mining P2P communities,
super-peer routing indices), that work is overwhelmingly redundant —
the same semantic pattern arrives again and again while the registry
barely moves.  This package remembers past routing and planning
decisions *without* ever serving an answer a cold run would not give:

* :mod:`~repro.cache.signature` — canonical pattern signatures:
  alpha-renaming of variables and reordering of path patterns map to
  one stable hashable key, so textually different but semantically
  identical queries share cache entries.
* :mod:`~repro.cache.routing_cache` — signature → annotation cache,
  epoch-stamped against the advertisement registry.  ``Goodbye``s and
  advertisement refreshes invalidate *only* the entries that name the
  affected peer or whose query properties the new advertisement could
  answer (scoped invalidation via the schema's subsumption closure,
  not flush-the-world).  Unanswerable patterns are cached as negative
  entries and revived the moment a relevant peer advertises.
* :mod:`~repro.cache.plan_cache` — compiled + optimised plans keyed by
  ``(signature, annotation fingerprint, statistics version)``, layered
  on top of the routing cache.
* :mod:`~repro.cache.coalescer` — request coalescing (singleflight):
  concurrent identical in-flight queries at a coordinator share one
  routing/planning pass and one distributed execution; followers are
  answered from the leader's completion continuation.
"""

from .coalescer import QueryCoalescer
from .plan_cache import PlanCache
from .routing_cache import CacheStats, RoutingCache
from .signature import Signature, annotation_fingerprint, pattern_signature

__all__ = [
    "CacheStats",
    "PlanCache",
    "QueryCoalescer",
    "RoutingCache",
    "Signature",
    "annotation_fingerprint",
    "pattern_signature",
]
