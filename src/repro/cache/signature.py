"""Canonical pattern signatures.

Routing annotations depend only on a query pattern's *semantic*
content: which schema paths it touches, how its path patterns share
variables, and which community schema it commits to.  Variable names
and FROM-clause ordering are presentation; two queries differing only
there route identically.  :func:`pattern_signature` normalises both
away — path patterns are reordered into a canonical order and
variables renamed by first occurrence in that order — yielding a
stable hashable key plus the permutation needed to re-target cached
annotations onto a fresh :class:`~repro.rql.pattern.QueryPattern`
instance.

Ties between path patterns that are structurally identical (same
schema path, same variable shape) are broken by FROM-clause position.
Two such patterns carry identical annotations (annotation content is a
function of the schema path alone), so an arbitrary-but-deterministic
tiebreak never produces an unsound reuse — at worst a reordering of
interchangeable patterns misses the cache.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.annotations import AnnotatedQueryPattern
from ..rql.pattern import QueryPattern


class Signature:
    """A query pattern's canonical identity.

    Attributes:
        key: Stable hashable key — equal for patterns identical up to
            variable renaming and path-pattern reordering.
        order: Canonical permutation: ``order[i]`` is the index into
            ``pattern.patterns`` of the path pattern at canonical
            position ``i``.  Two patterns with equal ``key`` have
            corresponding path patterns at equal canonical positions.
    """

    __slots__ = ("key", "order")

    def __init__(self, key: Tuple, order: Tuple[int, ...]):
        self.key = key
        self.order = order

    def __eq__(self, other) -> bool:
        return isinstance(other, Signature) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"Signature({hash(self.key):#x}, order={self.order})"


def _structural_key(pattern) -> Tuple:
    """The variable-name-independent shape of one path pattern."""
    path = pattern.schema_path
    return (
        path.domain.value,
        path.property.value,
        path.range.value,
        pattern.subject_var is not None,
        pattern.object_var is not None,
        pattern.subject_var is not None and pattern.subject_var == pattern.object_var,
        pattern.subject_var in pattern.projected,
        pattern.object_var in pattern.projected,
    )


def pattern_signature(pattern: QueryPattern) -> Signature:
    """Compute the canonical signature of a query pattern.

    The canonical order sorts path patterns by structural key (schema
    path, variable shape, projection shape); canonical variable ids are
    assigned by first occurrence along that order, so any consistent
    alpha-renaming of the query yields the same key.
    """
    structs = [_structural_key(p) for p in pattern.patterns]
    order = tuple(sorted(range(len(structs)), key=lambda j: structs[j]))
    var_ids: Dict[str, int] = {}

    def canonical(var: Optional[str]) -> int:
        if var is None:
            return -1
        if var not in var_ids:
            var_ids[var] = len(var_ids)
        return var_ids[var]

    parts = tuple(
        structs[j]
        + (
            canonical(pattern.patterns[j].subject_var),
            canonical(pattern.patterns[j].object_var),
        )
        for j in order
    )
    projections = tuple(sorted(var_ids.get(v, -1) for v in pattern.projections))
    key = (pattern.schema.namespace.uri, parts, projections)
    return Signature(key, order)


def annotation_fingerprint(
    annotated: AnnotatedQueryPattern, signature: Optional[Signature] = None
) -> Tuple:
    """A stable hashable digest of an annotation's routing content.

    Two annotated patterns with equal fingerprints name the same peers
    with the same rewritten schema paths at every canonical position —
    the precondition for reusing a compiled plan.
    """
    if signature is None:
        signature = pattern_signature(annotated.query_pattern)
    patterns = annotated.query_pattern.patterns
    parts = []
    for j in signature.order:
        pattern = patterns[j]
        parts.append(
            tuple(
                sorted(
                    (
                        a.peer_id,
                        a.rewritten.schema_path.domain.value,
                        a.rewritten.schema_path.property.value,
                        a.rewritten.schema_path.range.value,
                        a.exact,
                    )
                    for a in annotated.annotations(pattern)
                )
            )
        )
    return (signature.key, tuple(parts))
