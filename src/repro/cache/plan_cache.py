"""The plan cache: compiled + optimised plans, layered on routing.

Plan compilation (Section 2.4's recursion plus Figure 4's algebraic
rewrites) is deterministic in three inputs: the query pattern, its
routing annotation, and the optimiser's statistics.  The cache keys on
exactly those — ``(annotation fingerprint, statistics version)``,
where the fingerprint already embeds the pattern signature — so a
cached plan is only ever served when a fresh compile would reproduce
it bit for bit.

Unlike routing annotations, a compiled plan embeds the query's actual
labels and variables (its scans become wire subqueries), so reuse
additionally requires the stored pattern to *equal* the incoming one —
an isomorphic-but-renamed query is a miss here even though it hits the
routing cache.  Plans are immutable once built; sharing one across
executions is safe.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..core.algebra import PlanNode
from ..core.annotations import AnnotatedQueryPattern
from ..rql.pattern import QueryPattern
from .routing_cache import CacheStats
from .signature import annotation_fingerprint


class PlanCache:
    """LRU cache of compiled plans keyed by routing + statistics state.

    Args:
        max_entries: LRU bound; plan reuse is an optimisation, eviction
            only costs a recompile.
    """

    def __init__(self, max_entries: int = 512):
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.metrics = None  # optionally a MetricSet, via bind_metrics()
        self._entries: "OrderedDict[Tuple, Tuple[QueryPattern, PlanNode]]" = (
            OrderedDict()
        )

    def bind_metrics(self, metrics) -> None:
        self.metrics = metrics

    def _key(self, annotated: AnnotatedQueryPattern, version: int) -> Tuple:
        return (annotation_fingerprint(annotated), version)

    def get(
        self, annotated: AnnotatedQueryPattern, version: int = 0
    ) -> Optional[PlanNode]:
        """A plan a fresh compile would reproduce, or ``None``."""
        key = self._key(annotated, version)
        entry = self._entries.get(key)
        if entry is not None and entry[0] == annotated.query_pattern:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            if self.metrics is not None:
                self.metrics.record_cache_hit()
            return entry[1]
        self.stats.misses += 1
        if self.metrics is not None:
            self.metrics.record_cache_miss()
        return None

    def put(
        self, annotated: AnnotatedQueryPattern, plan: PlanNode, version: int = 0
    ) -> None:
        key = self._key(annotated, version)
        self._entries[key] = (annotated.query_pattern, plan)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"PlanCache(entries={len(self._entries)}, {self.stats})"
