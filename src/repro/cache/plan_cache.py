"""The plan cache: compiled + optimised plans, layered on routing.

Plan compilation (Section 2.4's recursion plus Figure 4's algebraic
rewrites) is deterministic in three inputs: the query pattern, its
routing annotation, and the optimiser's statistics.  The cache keys on
exactly those — ``(annotation fingerprint, statistics version)``,
where the fingerprint already embeds the pattern signature — so a
cached plan is only ever served when a fresh compile would reproduce
it bit for bit.

Unlike routing annotations, a compiled plan embeds the query's actual
labels and variables (its scans become wire subqueries), so reuse
additionally requires the stored pattern to *equal* the incoming one —
an isomorphic-but-renamed query is a miss here even though it hits the
routing cache.  Plans are immutable once built; sharing one across
executions is safe.

A compiled plan also *names* peers (its scans are addressed wire
subqueries), so each entry remembers the peer set its plan touches and
:meth:`PlanCache.invalidate_peer` drops exactly those entries.  The
live data plane relies on this: when a peer's advertisement changes —
a view redefinition above all — any cached plan naming it may carry
rewrites against the *old* view.  A racing stale annotation (obtained
before the change) would otherwise re-key to the old fingerprint and
be served that stale plan.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..core.algebra import PlanNode
from ..core.annotations import AnnotatedQueryPattern
from ..rql.pattern import QueryPattern
from .routing_cache import CacheStats
from .signature import annotation_fingerprint


class PlanCache:
    """LRU cache of compiled plans keyed by routing + statistics state.

    Args:
        max_entries: LRU bound; plan reuse is an optimisation, eviction
            only costs a recompile.
    """

    def __init__(self, max_entries: int = 512):
        self.max_entries = max_entries
        self.stats = CacheStats()
        self.metrics = None  # optionally a MetricSet, via bind_metrics()
        #: key → (pattern, plan, peers the plan names)
        self._entries: "OrderedDict[Tuple, Tuple[QueryPattern, PlanNode, frozenset]]" = (
            OrderedDict()
        )

    def bind_metrics(self, metrics) -> None:
        self.metrics = metrics

    def _key(self, annotated: AnnotatedQueryPattern, version: int) -> Tuple:
        return (annotation_fingerprint(annotated), version)

    def get(
        self, annotated: AnnotatedQueryPattern, version: int = 0
    ) -> Optional[PlanNode]:
        """A plan a fresh compile would reproduce, or ``None``."""
        key = self._key(annotated, version)
        entry = self._entries.get(key)
        if entry is not None and entry[0] == annotated.query_pattern:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            if self.metrics is not None:
                self.metrics.record_cache_hit()
            return entry[1]
        self.stats.misses += 1
        if self.metrics is not None:
            self.metrics.record_cache_miss()
        return None

    def put(
        self, annotated: AnnotatedQueryPattern, plan: PlanNode, version: int = 0
    ) -> None:
        key = self._key(annotated, version)
        self._entries[key] = (
            annotated.query_pattern,
            plan,
            frozenset(annotated.all_peers()),
        )
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def invalidate_peer(self, peer_id: str) -> int:
        """Drop every cached plan that names ``peer_id``.

        Called when the peer's advertisement moves (delta or full
        refresh, view redefinitions included) or it departs: its cached
        plans may address subqueries rewritten against state the peer
        no longer has.  Fingerprint re-keying covers *fresh*
        annotations; this covers plans reachable through stale ones.
        """
        stale = [
            key for key, entry in self._entries.items() if peer_id in entry[2]
        ]
        for key in stale:
            del self._entries[key]
        if stale:
            self.stats.invalidations += len(stale)
            if self.metrics is not None:
                self.metrics.record_cache_invalidation(len(stale))
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"PlanCache(entries={len(self._entries)}, {self.stats})"
