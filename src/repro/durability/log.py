"""The append-only membership log's record format.

One record per line::

    <crc32 as 8 hex digits> <canonical JSON of {"seq", "kind", "data"}>\\n

The checksum covers the JSON text, so a bit flip inside a record is
detected, and the trailing newline marks commit: a crash mid-append
leaves a final line without one (or with a checksum mismatch), which
:func:`decode_log` treats as an uncommitted tail — replay stops there
and every record before it is served.  Sequence numbers are assigned by
the writer and strictly increase, so a decoder can also detect a log
spliced from two incarnations.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class LogRecord:
    """One committed membership event."""

    seq: int
    kind: str
    data: dict


def encode_record(seq: int, kind: str, data: dict) -> bytes:
    """One log line, checksummed and newline-terminated (the commit)."""
    body = json.dumps(
        {"seq": seq, "kind": kind, "data": data},
        sort_keys=True,
        separators=(",", ":"),
    )
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n".encode("utf-8")


def _decode_line(line: bytes) -> LogRecord:
    """One committed line back into a record.

    Raises:
        ValueError: On any damage — short line, bad checksum, malformed
            JSON, missing fields.
    """
    if len(line) < 10 or line[8:9] != b" ":
        raise ValueError("short or malformed log line")
    stated = int(line[:8], 16)
    body = line[9:]
    if zlib.crc32(body) & 0xFFFFFFFF != stated:
        raise ValueError("log record checksum mismatch")
    payload = json.loads(body.decode("utf-8"))
    return LogRecord(int(payload["seq"]), str(payload["kind"]), payload["data"])


def decode_log(blob: bytes) -> Tuple[List[LogRecord], bool]:
    """Every committed record of a log image, tolerating a torn tail.

    Returns ``(records, clean)`` — ``clean`` is False when the log ends
    in an uncommitted or damaged record (replay stopped at the longest
    valid prefix).  An empty log is clean.
    """
    records: List[LogRecord] = []
    if not blob:
        return records, True
    lines = blob.split(b"\n")
    # a clean log ends in a newline, so the final split element is empty
    trailing = lines.pop()
    expected_seq = 0
    for line in lines:
        try:
            record = _decode_line(line)
        except (ValueError, KeyError, TypeError):
            return records, False
        if record.seq != expected_seq:
            return records, False
        records.append(record)
        expected_seq += 1
    return records, trailing == b""
