"""Durable peer state: snapshots plus an append-only membership log.

A peer's survivable state is a **snapshot** (triple base, view
definitions, derived active-schema) and an append-only **membership
log** (remote advertisements, goodbyes, quarantine verdicts,
rehabilitations, own-advertisement refreshes).  Recovery replays the
log over the snapshot; every record is CRC-checksummed and a torn tail
(the crash landed mid-append) is tolerated by stopping replay at the
first damaged record.

Two backing stores share one interface: :class:`MemoryStore` (the
simulator's in-memory twin, cloneable/truncatable for crash-point
property tests) and :class:`FileStore` (the live deployment's on-disk
store with fsync-on-commit).
"""

from .log import LogRecord, decode_log, encode_record
from .state import PeerStateStore, RecoveredState, peer_state_digest, state_digest
from .store import FileStore, MemoryStore

__all__ = [
    "LogRecord",
    "decode_log",
    "encode_record",
    "FileStore",
    "MemoryStore",
    "PeerStateStore",
    "RecoveredState",
    "peer_state_digest",
    "state_digest",
]
