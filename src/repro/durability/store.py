"""Backing stores for durable peer state.

Both stores hold exactly two objects — a snapshot document and an
append-only log — behind one small interface, so
:class:`~repro.durability.state.PeerStateStore` is transport-agnostic:
the simulator uses :class:`MemoryStore` (cloneable and truncatable, the
handle crash-point property tests need) and live node processes use
:class:`FileStore` (atomic snapshot replace, fsync-on-commit appends).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional


class MemoryStore:
    """The in-memory (simulation) twin of a peer's durable state."""

    def __init__(self):
        self._snapshot: Optional[str] = None
        self._log = bytearray()

    def exists(self) -> bool:
        return self._snapshot is not None or bool(self._log)

    def read_snapshot(self) -> Optional[str]:
        return self._snapshot

    def write_snapshot(self, text: str) -> None:
        self._snapshot = text

    def append_log(self, data: bytes) -> None:
        self._log.extend(data)

    def read_log(self) -> bytes:
        return bytes(self._log)

    def rewrite_log(self, data: bytes) -> None:
        """Replace the log image (torn-tail repair on open)."""
        self._log = bytearray(data)

    # ------------------------------------------------------------------
    # crash-point testing hooks
    # ------------------------------------------------------------------
    def clone(self) -> "MemoryStore":
        """An independent copy (the state a crash would freeze)."""
        twin = MemoryStore()
        twin._snapshot = self._snapshot
        twin._log = bytearray(self._log)
        return twin

    def truncate_log(self, nbytes: int) -> None:
        """Cut the log image to ``nbytes`` — a crash mid-append."""
        del self._log[nbytes:]

    def log_size(self) -> int:
        return len(self._log)


class FileStore:
    """On-disk peer state under one directory.

    ``snapshot.json`` is replaced atomically (temp file + fsync +
    rename + directory fsync) so a crash mid-snapshot leaves the old
    one intact; ``membership.log`` appends are fsynced per record, so a
    record either committed (its newline reached the disk) or is a torn
    tail the decoder skips.
    """

    SNAPSHOT = "snapshot.json"
    LOG = "membership.log"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    @property
    def snapshot_path(self) -> Path:
        return self.root / self.SNAPSHOT

    @property
    def log_path(self) -> Path:
        return self.root / self.LOG

    def exists(self) -> bool:
        return self.snapshot_path.exists() or self.log_path.exists()

    def read_snapshot(self) -> Optional[str]:
        try:
            return self.snapshot_path.read_text()
        except FileNotFoundError:
            return None

    def write_snapshot(self, text: str) -> None:
        tmp = self.root / (self.SNAPSHOT + ".tmp")
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.snapshot_path)
        self._fsync_dir()

    def append_log(self, data: bytes) -> None:
        with open(self.log_path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def read_log(self) -> bytes:
        try:
            return self.log_path.read_bytes()
        except FileNotFoundError:
            return b""

    def rewrite_log(self, data: bytes) -> None:
        """Atomically replace the log (torn-tail repair on open)."""
        tmp = self.root / (self.LOG + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.log_path)
        self._fsync_dir()

    def _fsync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
