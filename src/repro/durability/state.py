"""Per-peer durable state: snapshot + membership log + recovery.

:class:`PeerStateStore` is the one durability handle a peer holds.  It
persists a **snapshot** of the peer's base (sorted N-Triples), view
definitions (their source text) and derived active-schema, and appends
membership events — remote advertisements, goodbyes, quarantine
verdicts, rehabilitations and own-advertisement refreshes — to the
checksummed log.  :meth:`recover` replays the log over the snapshot and
returns everything a rejoining peer needs to resume: its base, views,
active-schema, remembered advertisements and quarantine set.

Snapshots never truncate the log: the log is an append-only history
across restarts and is fully replayed on every recovery (events are
last-writer-wins per peer, so replay is idempotent).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from ..rdf.graph import Graph
from ..rdf.serializer import deserialize, serialize
from ..rvl.active_schema import ActiveSchema
from ..rvl.parser import parse_view
from ..rvl.view import ViewDefinition
from .log import decode_log, encode_record

#: Snapshot document version (bump on incompatible layout changes).
SNAPSHOT_VERSION = 1


@dataclass
class RecoveredState:
    """What :meth:`PeerStateStore.recover` reconstructs."""

    graph: Optional[Graph] = None
    views: Tuple[ViewDefinition, ...] = ()
    active_schema: Optional[ActiveSchema] = None
    advertisements: Dict[str, ActiveSchema] = field(default_factory=dict)
    quarantined: Set[str] = field(default_factory=set)
    #: completed crash-recoveries before this one (salts channel ids so
    #: a rejoined incarnation can never collide with its predecessor's)
    incarnations: int = 0
    #: log records replayed over the snapshot
    replayed: int = 0
    #: False when the log ended in a torn/damaged record (tolerated)
    clean: bool = True
    #: False when neither a snapshot nor a log existed
    found: bool = False

    def digest(self) -> str:
        return peer_state_digest(
            self.graph,
            self.views,
            self.active_schema,
            self.advertisements,
            self.quarantined,
        )


def peer_state_digest(
    graph: Optional[Graph],
    views: Sequence[ViewDefinition],
    active_schema: Optional[ActiveSchema],
    advertisements: Dict[str, ActiveSchema],
    quarantined: Iterable[str],
) -> str:
    """A canonical digest of one peer's membership-relevant state.

    Byte-equality of digests is the crash-recovery acceptance oracle:
    a peer recovered after a kill at any log boundary must digest
    identically to an uncrashed twin that saw the same events.
    """
    document = {
        "base": serialize(graph) if graph is not None else None,
        "views": [view.text for view in views],
        "active_schema": active_schema.to_dict() if active_schema else None,
        "advertisements": {
            peer: advertisement.to_dict()
            for peer, advertisement in sorted(advertisements.items())
        },
        "quarantined": sorted(quarantined),
    }
    canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: Convenience alias usable on a :class:`RecoveredState` or raw parts.
def state_digest(state: RecoveredState) -> str:
    return state.digest()


class PeerStateStore:
    """One peer's durability handle over a backing store.

    Opening the handle scans the log once: a torn tail left by a crash
    mid-append is cut back to the longest valid prefix (so later
    appends commit after the last *committed* record, never after
    garbage) and the append sequence continues from there.
    """

    def __init__(self, store, peer_id: str):
        self.store = store
        self.peer_id = peer_id
        self.metrics = None
        records, clean = decode_log(store.read_log())
        if not clean:
            store.rewrite_log(
                b"".join(encode_record(r.seq, r.kind, r.data) for r in records)
            )
        self._seq = len(records)

    def bind_metrics(self, metrics) -> None:
        self.metrics = metrics

    def exists(self) -> bool:
        return self.store.exists()

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def save_snapshot(
        self,
        graph: Optional[Graph],
        views: Sequence[ViewDefinition] = (),
        active_schema: Optional[ActiveSchema] = None,
    ) -> int:
        """Persist the peer's base/views/active-schema; returns bytes."""
        document = {
            "version": SNAPSHOT_VERSION,
            "peer": self.peer_id,
            "base": serialize(graph) if graph is not None else None,
            "views": [view.text for view in views],
            "active_schema": active_schema.to_dict() if active_schema else None,
        }
        text = json.dumps(document, sort_keys=True, indent=1)
        self.store.write_snapshot(text)
        nbytes = len(text.encode("utf-8"))
        if self.metrics is not None:
            self.metrics.record_snapshot_bytes(nbytes)
        return nbytes

    # ------------------------------------------------------------------
    # membership log
    # ------------------------------------------------------------------
    def _append(self, kind: str, data: dict) -> None:
        self.store.append_log(encode_record(self._seq, kind, data))
        self._seq += 1

    def log_advertise(self, advertisement: ActiveSchema) -> None:
        """A remote peer's advertisement arrived (or changed)."""
        self._append("advertise", advertisement.to_dict())

    def log_self_advertise(self, advertisement: ActiveSchema) -> None:
        """This peer refreshed its own advertisement (footprint drift)."""
        self._append("self", advertisement.to_dict())

    def log_goodbye(self, peer_id: str) -> None:
        self._append("goodbye", {"peer": peer_id})

    def log_quarantine(self, peer_id: str) -> None:
        self._append("quarantine", {"peer": peer_id})

    def log_rehabilitate(self, peer_id: str) -> None:
        self._append("rehabilitate", {"peer": peer_id})

    def log_recover(self) -> None:
        """This peer is starting a crash-recovered incarnation.

        Recorded so survivors of the *previous* incarnation cannot
        confuse the two: recovery counts feed the channel-id epoch and
        a retransmit-replay cache keyed by an older incarnation's
        channel ids must never answer a newer one's subplans.
        """
        self._append("recover", {"peer": self.peer_id})

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveredState:
        """Snapshot plus replayed log = the state to resume from."""
        state = RecoveredState()
        text = self.store.read_snapshot()
        if text is not None:
            document = json.loads(text)
            state.found = True
            if document.get("base") is not None:
                state.graph = deserialize(document["base"])
            state.views = tuple(
                parse_view(source) for source in document.get("views", ())
            )
            if document.get("active_schema"):
                state.active_schema = ActiveSchema.from_dict(
                    document["active_schema"]
                )
        records, clean = decode_log(self.store.read_log())
        state.clean = clean
        for record in records:
            state.found = True
            if record.kind == "advertise":
                advertisement = ActiveSchema.from_dict(record.data)
                if advertisement.peer_id:
                    state.advertisements[advertisement.peer_id] = advertisement
            elif record.kind == "self":
                state.active_schema = ActiveSchema.from_dict(record.data)
            elif record.kind == "goodbye":
                state.advertisements.pop(record.data["peer"], None)
            elif record.kind == "quarantine":
                state.quarantined.add(record.data["peer"])
            elif record.kind == "rehabilitate":
                state.quarantined.discard(record.data["peer"])
            elif record.kind == "recover":
                state.incarnations += 1
            # unknown kinds: a newer incarnation's events — skipped
        state.replayed = len(records)
        if self.metrics is not None and records:
            self.metrics.record_log_replay(len(records))
        return state
