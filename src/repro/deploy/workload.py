"""Deterministic cluster workloads shared by every process of a run.

A live deployment has no shared memory: the launcher and each peer
process must agree on the synthetic schema, the peer bases and the
query texts from nothing but a seed and the topology numbers.  This
module is that agreement — the same :class:`ClusterSpec` (serialised
into child-process command lines) rebuilds bit-identical workloads
everywhere, and :func:`build_sim_system` deploys the identical workload
in-sim so differential runs compare like with like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..rdf.graph import Graph
from ..workloads.data_gen import Distribution, generate_bases
from ..workloads.query_gen import random_queries
from ..workloads.schema_gen import SyntheticSchema, generate_schema

#: Distributions cycled over dataset seeds (mirrors the difftest
#: harness, so live runs cover the same layout spectrum).
DISTRIBUTIONS = (
    Distribution.VERTICAL,
    Distribution.HORIZONTAL,
    Distribution.MIXED,
)


@dataclass(frozen=True)
class ClusterSpec:
    """Everything needed to rebuild one cluster's workload and topology.

    Attributes:
        seed: Dataset/network seed.
        peers: Simple-peer count (``P1`` ... ``Pn``).
        super_peers: Super-peer count (``SP1`` ... ``SPk``); peers
            cluster round-robin.
        chain_length: Synthetic schema chain length.
        queries: Distinct query texts to generate.
        statements_per_segment: Base size knob.
        resilient: Run with the resilience layer on (retries,
            quarantine, partial results) — required for kill runs.
        time_scale: Real seconds per virtual-time unit (live only).
        joiners: Extra peers (``P{peers+1}`` ...) that are *not* started
            with the cluster but hold pre-generated bases, so a mid-run
            ``--join`` spawns them with data every process agrees on.
        livedata: Enable the live data plane on every node: peers serve
            :class:`~repro.livedata.updates.UpdateBatch` streams (they
            always do) *and* opt into top-k cancel with paced chunked
            result streaming, so ``LIMIT`` queries can discard channels
            mid-stream.
    """

    seed: int
    peers: int = 3
    super_peers: int = 1
    chain_length: int = 4
    queries: int = 4
    statements_per_segment: int = 15
    resilient: bool = False
    time_scale: float = 0.02
    joiners: int = 0
    livedata: bool = False

    def peer_ids(self) -> List[str]:
        return [f"P{i}" for i in range(1, self.peers + 1)]

    def joiner_ids(self) -> List[str]:
        return [f"P{i}" for i in range(self.peers + 1, self.peers + self.joiners + 1)]

    def all_peer_ids(self) -> List[str]:
        """Initial members plus late joiners — the base-generation
        population (with ``joiners=0`` this is exactly ``peer_ids()``,
        keeping seeded workloads bit-identical to pre-joiner runs)."""
        return self.peer_ids() + self.joiner_ids()

    def super_ids(self) -> List[str]:
        return [f"SP{i}" for i in range(1, self.super_peers + 1)]

    def home_for(self, peer_id: str) -> str:
        index = int(peer_id[1:]) - 1
        return f"SP{(index % self.super_peers) + 1}"

    def to_args(self) -> List[str]:
        """The CLI fragment a child process rebuilds the spec from."""
        args = [
            "--workload-seed", str(self.seed),
            "--peers", str(self.peers),
            "--super-peers", str(self.super_peers),
            "--chain-length", str(self.chain_length),
            "--queries", str(self.queries),
            "--statements", str(self.statements_per_segment),
            "--time-scale", str(self.time_scale),
        ]
        if self.joiners:
            args.extend(["--joiners", str(self.joiners)])
        if self.resilient:
            args.append("--resilient")
        if self.livedata:
            args.append("--livedata")
        return args


@dataclass
class ClusterWorkload:
    """The materialised workload of one :class:`ClusterSpec`."""

    spec: ClusterSpec
    synthetic: SyntheticSchema
    bases: Dict[str, Graph]
    queries: List[str]
    distribution: Distribution


def build_workload(spec: ClusterSpec) -> ClusterWorkload:
    """Rebuild the cluster's workload deterministically from its spec."""
    synthetic = generate_schema(
        chain_length=spec.chain_length,
        refinement_fraction=0.0,
        noise_properties=1,
        seed=spec.seed,
    )
    distribution = DISTRIBUTIONS[spec.seed % len(DISTRIBUTIONS)]
    generated = generate_bases(
        synthetic,
        spec.all_peer_ids(),
        distribution,
        statements_per_segment=spec.statements_per_segment,
        shared_pool=6,
        seed=spec.seed,
    )
    texts = random_queries(
        synthetic,
        spec.queries,
        max_length=min(3, spec.chain_length),
        seed=spec.seed,
    )
    return ClusterWorkload(spec, synthetic, generated.bases, texts, distribution)


def build_sim_system(spec: ClusterSpec, workload: ClusterWorkload = None, **options):
    """The in-sim twin of a live cluster: same workload, same topology,
    same options, on :class:`~repro.transport.SimTransport`."""
    from ..resilience import ResilienceConfig
    from ..systems import HybridSystem

    workload = workload or build_workload(spec)
    system = HybridSystem(workload.synthetic.schema, seed=spec.seed, **options)
    for super_id in spec.super_ids():
        system.add_super_peer(super_id)
    for peer_id in spec.peer_ids():
        system.add_peer(peer_id, workload.bases[peer_id], spec.home_for(peer_id))
    system.run()  # settle the advertisement push
    if spec.resilient:
        system.enable_resilience(ResilienceConfig.default(spec.seed))
    return system
