"""Multi-process deployment of the middleware over the live transport.

``repro.deploy`` is the layer that takes the protocol stack out of the
simulator and runs it as real OS processes on localhost:

* :mod:`workload` — :class:`ClusterSpec`, the seed-deterministic
  contract every process rebuilds its workload slice from, plus the
  in-sim twin builder for differential runs.
* :mod:`node` — one process, one peer: ``python -m repro peer``.
* :mod:`launcher` — :class:`LiveCluster`, the seed process that spawns,
  drives, kills and reaps a cluster: ``python -m repro launch``.
* :mod:`supervisor` — :class:`Supervisor`, crash-restart supervision
  with exponential backoff and a restart-storm circuit breaker
  (``--supervise``).
"""

from .launcher import LiveCluster, run_launch
from .node import run_node, spec_from_args
from .supervisor import RestartBackoff, Supervisor
from .workload import ClusterSpec, ClusterWorkload, build_sim_system, build_workload

__all__ = [
    "ClusterSpec",
    "ClusterWorkload",
    "LiveCluster",
    "RestartBackoff",
    "Supervisor",
    "build_sim_system",
    "build_workload",
    "run_launch",
    "run_node",
    "spec_from_args",
]
