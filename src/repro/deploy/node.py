"""One OS process of a live deployment: ``python -m repro peer``.

A node process hosts exactly one protocol peer (a super-peer or a
simple peer) on its own :class:`~repro.transport.AsyncioTransport`,
rebuilds its slice of the cluster workload from the shared
:class:`~repro.deploy.workload.ClusterSpec`, announces itself to the
seed, and serves until SIGTERM.  On shutdown it exports its metrics
(Prometheus text tagged with ``peer_id``/``pid``/``transport`` const
labels) and its trace spans into the run's output directory, says a
graceful bye, and exits 0.

Resilience mirrors the in-sim wiring minus the heartbeat layer: live
deployments have no heartbeat emitters driving the failure detector, so
``watch_cluster`` would suspect every peer.  Failure detection instead
rides on the transport's dial-give-up bounces, which produce the same
:class:`~repro.net.message.DeliveryFailure` signal chaos runs do.
"""

from __future__ import annotations

import os
import signal
import sys
from pathlib import Path
from typing import Tuple

from ..durability import FileStore, PeerStateStore
from ..net.simulator import Network
from ..obs import peer_gauges, render_prometheus
from ..obs.telemetry import (
    JsonlSink,
    SlowQueryLog,
    TelemetryProbe,
    TelemetryServer,
    write_endpoint_file,
)
from ..peers.base import PeerBase
from ..peers.super import SuperPeer
from ..systems.hybrid import HybridPeer
from ..core.adaptivity import ReplanBudget
from ..resilience import ResilienceConfig
from ..transport.live import AsyncioTransport
from .workload import ClusterSpec, build_workload

#: Virtual-time backstop: a node exits on its own after this long even
#: if the launcher never reaps it (a crashed launcher must not leave
#: orphan processes behind, e.g. in CI).
DEFAULT_LIFETIME = 30_000.0


def add_spec_arguments(parser) -> None:
    """The :class:`ClusterSpec` fragment of a node/launch command line."""
    parser.add_argument("--workload-seed", type=int, default=0,
                        help="dataset/network seed (default 0)")
    parser.add_argument("--peers", type=int, default=3,
                        help="simple-peer count (default 3)")
    parser.add_argument("--super-peers", type=int, default=1,
                        help="super-peer count (default 1)")
    parser.add_argument("--chain-length", type=int, default=4,
                        help="synthetic schema chain length (default 4)")
    parser.add_argument("--queries", type=int, default=4,
                        help="distinct query texts (default 4)")
    parser.add_argument("--statements", type=int, default=15,
                        help="statements per schema segment (default 15)")
    parser.add_argument("--joiners", type=int, default=0,
                        help="extra peers with pre-generated bases that "
                             "join mid-run (default 0)")
    parser.add_argument("--resilient", action="store_true",
                        help="enable the resilience layer (required for kill runs)")
    parser.add_argument("--livedata", action="store_true",
                        help="enable the live data plane: top-k cancel "
                             "with paced chunked result streaming")
    parser.add_argument("--time-scale", type=float, default=0.02,
                        help="real seconds per virtual-time unit (default 0.02)")


def spec_from_args(args) -> ClusterSpec:
    return ClusterSpec(
        seed=args.workload_seed,
        peers=args.peers,
        super_peers=args.super_peers,
        chain_length=args.chain_length,
        queries=args.queries,
        statements_per_segment=args.statements,
        resilient=args.resilient,
        time_scale=args.time_scale,
        joiners=args.joiners,
        livedata=getattr(args, "livedata", False),
    )


def parse_address(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


def _apply_resilience(node, config: ResilienceConfig) -> None:
    """Mirror of ``HybridSystem._apply_resilience_*`` minus heartbeats."""
    if isinstance(node, SuperPeer):
        node.quarantine_enabled = config.quarantine_enabled
        return
    node.channel_retry = config.channel_retry
    node.routing_retry = config.routing_retry
    node.quarantine_enabled = config.quarantine_enabled
    node.partial_results = config.partial_results
    node.replan_budget = ReplanBudget(
        config.max_replans, config.replan_delay, config.replan_backoff
    )


def export_artifacts(outdir: Path, node_id: str, network: Network,
                     transport, node=None) -> None:
    """Dump this process's metrics and traces for the launcher to merge."""
    outdir.mkdir(parents=True, exist_ok=True)
    labels = {"peer_id": node_id, "pid": os.getpid(), "transport": transport.kind}
    gauges = peer_gauges([node]) if node is not None else None
    text = render_prometheus(network.metrics, gauges, const_labels=labels)
    (outdir / f"{node_id}.metrics.prom").write_text(text)
    if network.trace_collector is not None:
        (outdir / f"{node_id}.trace.json").write_text(
            network.trace_collector.export_json()
        )


def _trip_quarantine(quarantine, suspects) -> None:
    """Re-open the breaker for every recovered quarantine verdict."""
    for suspect in sorted(suspects):
        while not quarantine.is_quarantined(suspect):
            quarantine.record_failure(suspect)


def run_node(args) -> int:
    """Entry point of the ``python -m repro peer`` subcommand."""
    spec = spec_from_args(args)
    workload = build_workload(spec)
    node_id = args.node_id
    role = "super" if node_id in spec.super_ids() else "peer"

    transport = AsyncioTransport(
        host=args.host, port=args.port,
        seed=parse_address(args.seed),
        time_scale=spec.time_scale,
    )
    network = Network(seed=spec.seed, transport=transport)
    if network.tracer.enabled:
        # disambiguate span/trace ids across processes: the launcher
        # stitches every node's export into one trace per query, and
        # two processes' locally-minted ``s<n>`` ids would collide
        network.tracer.id_suffix = f"@{args.node_id}"

    # telemetry (repro.obs.telemetry): durable flight-recorder sink +
    # slow-query log, attached before any event can fire so a crash
    # always leaves its last moments in <node>.events.jsonl
    outdir = Path(args.outdir)
    telemetry_on = not getattr(args, "no_telemetry", False)
    event_sink = None
    slow_log = None
    if telemetry_on:
        outdir.mkdir(parents=True, exist_ok=True)
        event_sink = JsonlSink(outdir / f"{node_id}.events.jsonl")
        if network.flight_recorder is not None:
            network.flight_recorder.sink = event_sink

        def _dump_slow(entry, _counter=[0]):
            _counter[0] += 1
            import json as _json
            (outdir / f"{node_id}.slow.{_counter[0]}.json").write_text(
                _json.dumps(entry, indent=2)
            )

        slow_log = SlowQueryLog(
            threshold=getattr(args, "slow_query_threshold", 500.0),
            collector=network.trace_collector,
            on_slow=_dump_slow,
        ).install(network.metrics)

    # durable peer state: snapshot + membership log under the node's
    # own state directory; a restarted process finds it and recovers
    state_store = None
    recovered = None
    if getattr(args, "statedir", None):
        state_store = PeerStateStore(
            FileStore(Path(args.statedir) / node_id), node_id
        )
        state_store.bind_metrics(network.metrics)
        if state_store.exists():
            recovered = state_store.recover()
            state_store.log_recover()

    if role == "super":
        node = SuperPeer(node_id, schemas=[workload.synthetic.schema])
        node.join(network)
        if state_store is not None:
            node.attach_durability(state_store)
        if recovered is not None:
            # rebuild the SON registries (no metrics, no re-logging),
            # then the quarantine verdicts on top
            for advertisement in recovered.advertisements.values():
                node.register_advertisement(advertisement, record=False)
            _trip_quarantine(node.quarantine, recovered.quarantined)
            node.channels.epoch = recovered.incarnations + 1
            network.metrics.record_recovery()
            network.emit_event("recovery", peer=node_id, pid=os.getpid())
        host, port = transport.start()
    else:
        host, port = transport.start()
        # the Advertise pushed by join() needs a routable home: wait
        # until the seed's book broadcast names this peer's super-peer
        home = spec.home_for(node_id)
        transport.run_until(lambda: home in transport.book, timeout=2_000.0)
        if recovered is not None and recovered.graph is not None:
            # crash recovery: resume from the durable base and views,
            # re-deriving the active-schema from them
            base = PeerBase(recovered.graph, workload.synthetic.schema,
                            recovered.views)
        else:
            base = PeerBase(workload.bases[node_id], workload.synthetic.schema)
        node = HybridPeer(node_id, base, home_super_peer=home)
        if recovered is not None:
            node.rejoining = True  # join() advertises with the rejoin flag
        node.join(network)
        node.rejoining = False
        if state_store is not None:
            node.attach_durability(state_store)
        if recovered is not None:
            node.known_advertisements = {
                remote: advertisement
                for remote, advertisement in recovered.advertisements.items()
                if remote != node_id
            }
            _trip_quarantine(node.quarantine, recovered.quarantined)
            # survivors may hold replay caches keyed by the previous
            # incarnation's channel ids: mint ids they cannot have seen
            node.channels.epoch = recovered.incarnations + 1
            network.metrics.record_recovery()
            network.emit_event("recovery", peer=node_id, pid=os.getpid())
        elif state_store is not None:
            node.save_durable_snapshot()
    if spec.resilient:
        _apply_resilience(node, ResilienceConfig.default(spec.seed))
    if spec.livedata and role != "super":
        # live data plane: LIMIT queries terminate early once k answers
        # are stable, discarding still-streaming channels the ubQL way;
        # paced chunked streaming gives the discard something to stop
        node.topk_cancel = True
        node.stream_chunk_rows = 4

    stopping = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        transport.loop.add_signal_handler(signum, lambda: stopping.append(True))

    # telemetry endpoints: /metrics /healthz /tracez on the node's own
    # event loop; the endpoint file makes the address discoverable even
    # after the launcher dies (nodes outlive their parent)
    server = None
    if telemetry_on:
        probe = TelemetryProbe(network, peers=[node], node_id=node_id, role=role)
        labels = {"peer_id": node_id, "pid": os.getpid(), "transport": transport.kind}
        import json as _json
        server = TelemetryServer(
            {
                "/metrics": lambda: (
                    "text/plain; version=0.0.4",
                    probe.metrics_text(const_labels=labels),
                ),
                "/healthz": lambda: (
                    "application/json", _json.dumps(probe.healthz(), default=str)
                ),
                "/tracez": lambda: (
                    "application/json", _json.dumps(probe.tracez(), default=str)
                ),
            },
            host=args.host,
            port=getattr(args, "telemetry_port", 0),
        )
        telemetry_host, telemetry_port = server.start(transport.loop)
        write_endpoint_file(
            outdir, node_id, telemetry_host, telemetry_port,
            pid=os.getpid(), role=role, peer_port=port,
        )

    print(f"READY {node_id} {host} {port}", flush=True)
    transport.run_until(lambda: bool(stopping), timeout=args.lifetime)

    # graceful stop: persist the latest base/views/active-schema so the
    # next incarnation recovers from it (crashes skip this, by nature)
    node.save_durable_snapshot()
    export_artifacts(outdir, node_id, network, transport, node)
    if server is not None:
        server.close(transport.loop)
    if event_sink is not None:
        event_sink.close()
    transport.close()
    print(f"STOPPED {node_id}", flush=True)
    sys.stdout.flush()
    return 0
