"""Supervised crash recovery for live deployments.

``python -m repro launch --supervise`` arms a :class:`Supervisor` over
the cluster's child processes: whenever one is found dead that was not
*expected* to be down (graceful shutdown, an operator-ordered kill with
a scheduled manual restart), it is respawned through the launcher's
restart path — the fresh process recovers from its durable state
directory and re-advertises with the ``rejoin`` flag.

Two guards keep a crash-looping node from taking the run down with it:

- **exponential backoff** between successive restarts of the same node
  (:class:`RestartBackoff`), so a node that dies instantly on boot is
  retried at widening intervals instead of as fast as the loop spins;
- a **restart-storm circuit breaker**: more than ``max_restarts``
  restarts of one node inside ``window`` seconds trips the node into
  the ``tripped`` set and the supervisor gives up on it (the rest of
  the cluster keeps serving, degraded).

The supervisor is deliberately poll-driven (:meth:`Supervisor.tick`
between queries) rather than thread-driven: restarts happen at known
points of the workload loop, which keeps live runs reproducible enough
to compare against the simulator.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Mapping, Optional, Set


class RestartBackoff:
    """Exponential restart delays: ``base * factor**attempt``, capped."""

    def __init__(self, base: float = 0.5, factor: float = 2.0, max_delay: float = 8.0):
        if base < 0 or factor < 1 or max_delay < base:
            raise ValueError("backoff wants base >= 0, factor >= 1, max >= base")
        self.base = base
        self.factor = factor
        self.max_delay = max_delay

    def delay(self, attempt: int) -> float:
        return min(self.max_delay, self.base * self.factor ** max(0, attempt))


class Supervisor:
    """Restart dead child processes, with backoff and a storm breaker.

    Args:
        processes: A live mapping ``node_id -> process`` (anything with
            ``poll() -> Optional[int]``); the launcher's own dict, so
            respawns the supervisor triggers are observed on the next
            tick.
        respawn: ``respawn(node_id)`` brings the node back (the
            launcher's ``restart_peer``).
        backoff: Restart delay policy (default :class:`RestartBackoff`).
        max_restarts: Storm threshold per node within ``window``.
        window: Seconds of restart history the breaker considers.
        clock: Injectable monotonic clock (tests pass a fake).
        on_restart: Optional ``on_restart(node_id, attempt)`` fired
            after each successful respawn (the launcher writes a
            diagnostic bundle from it).
        on_trip: Optional ``on_trip(node_id, restarts)`` fired once when
            the storm breaker gives up on a node.
    """

    def __init__(
        self,
        processes: Mapping[str, object],
        respawn: Callable[[str], None],
        backoff: Optional[RestartBackoff] = None,
        max_restarts: int = 5,
        window: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
        on_restart: Optional[Callable[[str, int], None]] = None,
        on_trip: Optional[Callable[[str, int], None]] = None,
    ):
        self.processes = processes
        self.respawn = respawn
        self.backoff = backoff or RestartBackoff()
        self.max_restarts = max_restarts
        self.window = window
        self.clock = clock
        self.on_restart = on_restart
        self.on_trip = on_trip
        #: nodes whose death is ordered (graceful stop, manual restart
        #: pending) — the supervisor leaves them alone
        self.expected_down: Set[str] = set()
        #: nodes the storm breaker gave up on
        self.tripped: Set[str] = set()
        self.restart_totals: Dict[str, int] = {}
        self._attempts: Dict[str, int] = {}
        self._history: Dict[str, List[float]] = {}
        self._due: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # operator intent
    # ------------------------------------------------------------------
    def expect_down(self, node_id: str) -> None:
        """Mark a death as ordered; :meth:`tick` won't restart it."""
        self.expected_down.add(node_id)

    def resume(self, node_id: str) -> None:
        """The node is (manually) back under supervision."""
        self.expected_down.discard(node_id)
        self._due.pop(node_id, None)

    # ------------------------------------------------------------------
    # the supervision loop
    # ------------------------------------------------------------------
    def tick(self) -> List[str]:
        """One supervision pass; returns the node ids restarted now."""
        restarted: List[str] = []
        now = self.clock()
        for node_id, process in list(self.processes.items()):
            if process.poll() is None:
                # alive; once quiet for a full window, forgive history
                history = self._history.get(node_id)
                if history and now - history[-1] >= self.window:
                    self._history[node_id] = []
                    self._attempts[node_id] = 0
                self._due.pop(node_id, None)
                continue
            if node_id in self.expected_down or node_id in self.tripped:
                continue
            history = self._history.setdefault(node_id, [])
            history[:] = [stamp for stamp in history if now - stamp < self.window]
            if len(history) >= self.max_restarts:
                self.tripped.add(node_id)
                self._due.pop(node_id, None)
                if self.on_trip is not None:
                    self.on_trip(node_id, self.restart_totals.get(node_id, 0))
                continue
            due = self._due.get(node_id)
            if due is None:
                # first sighting of this death: schedule the restart
                self._due[node_id] = now + self.backoff.delay(
                    self._attempts.get(node_id, 0)
                )
                continue
            if now < due:
                continue
            self.respawn(node_id)
            history.append(now)
            self._attempts[node_id] = self._attempts.get(node_id, 0) + 1
            self.restart_totals[node_id] = self.restart_totals.get(node_id, 0) + 1
            self._due.pop(node_id, None)
            restarted.append(node_id)
            if self.on_restart is not None:
                self.on_restart(node_id, self._attempts[node_id])
        return restarted
