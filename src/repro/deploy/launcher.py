"""The deployment launcher: ``python -m repro launch``.

:class:`LiveCluster` turns one :class:`~repro.deploy.workload.
ClusterSpec` into a running multi-process deployment on localhost: it
becomes the seed of the address book, spawns one OS process per
super-peer and per simple peer (each a ``python -m repro peer``),
waits for membership and advertisement settling, drives the cluster's
query workload through client peers living in the launcher process,
and tears everything down — collecting each process's metrics/trace
exports and merging them into cluster-wide artifacts.

A mid-run ``kill_peer`` SIGTERMs one process; the cluster degrades the
same way a chaos run does in-sim — dial give-ups bounce as
:class:`~repro.net.message.DeliveryFailure`, channels replan around the
loss, and answers arrive as coverage-annotated partials.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional

from ..errors import NetworkError
from ..net.simulator import Network
from ..obs import (
    merge_expositions,
    render_prometheus,
    stitch_trace_exports,
    validate_trace_dicts,
)
from ..obs.telemetry import (
    ClusterScraper,
    default_slo_rules,
    render_alert,
    write_diagnostic_bundle,
)
from ..peers.base import Peer
from ..peers.client import ClientPeer
from ..peers.protocol import AdvertisementReply, AdvertisementRequest
from ..transport.live import AsyncioTransport
from .node import export_artifacts
from .workload import ClusterSpec, ClusterWorkload, build_workload

#: Virtual-time budget for cluster bring-up (membership + settling).
BOOTSTRAP_TIMEOUT = 2_000.0
#: Virtual-time budget for one query to complete.
QUERY_TIMEOUT = 4_000.0


class _Probe(Peer):
    """A launcher-side peer that pulls advertisement registries, used
    to observe when the cluster's advertisement push has settled."""

    def __init__(self, peer_id: str = "launcher-probe"):
        super().__init__(peer_id)
        self.registries: Dict[str, set] = {}

    def handle_AdvertisementReply(self, message) -> None:
        reply: AdvertisementReply = message.payload
        self.registries[reply.from_peer] = {
            a.peer_id for a in reply.schemas if a.peer_id
        }

    def poll(self, super_id: str) -> None:
        self.registries.pop(super_id, None)
        self.send(super_id, AdvertisementRequest(self.peer_id))


class LiveCluster:
    """A running live deployment of one cluster spec.

    Usage::

        cluster = LiveCluster(spec, outdir)
        cluster.start()
        try:
            result = cluster.query("P1", text)
        finally:
            cluster.shutdown()
    """

    def __init__(self, spec: ClusterSpec, outdir, host: str = "127.0.0.1",
                 statedir=None, telemetry: bool = True,
                 slo_window: float = 120.0, shed_alert: float = 0.25):
        self.spec = spec
        self.outdir = Path(outdir)
        self.host = host
        self.telemetry = telemetry
        self.slo_window = slo_window
        self.shed_alert = shed_alert
        self.scraper: Optional[ClusterScraper] = None
        #: per-node durable state root; None keeps peers ephemeral
        self.statedir = Path(statedir) if statedir is not None else None
        self.workload: ClusterWorkload = build_workload(spec)
        self.transport = AsyncioTransport(
            host=host, port=0, seed=None, time_scale=spec.time_scale
        )
        self.network = Network(seed=spec.seed, transport=self.transport)
        if self.network.tracer.enabled:
            # same id disambiguation the node processes apply
            self.network.tracer.id_suffix = "@launcher"
        self.probe = _Probe()
        self.probe.join(self.network)
        self.processes: Dict[str, subprocess.Popen] = {}
        self.killed: List[str] = []
        self.restarts: List[str] = []
        self.joined: List[str] = []
        #: exit code of each node's *first* incarnation (a restarted
        #: SIGKILL victim keeps its -9 here while ``exit_codes`` shows
        #: the final process's status)
        self.first_exit_codes: Dict[str, int] = {}
        self._client_counter = 0
        self.clients: Dict[str, ClientPeer] = {}

    # ------------------------------------------------------------------
    # the system facade the workload engine drives
    # ------------------------------------------------------------------
    def add_client(self, peer_id: Optional[str] = None) -> ClientPeer:
        self._client_counter += 1
        client = ClientPeer(peer_id or f"client{self._client_counter}")
        client.join(self.network)
        if self.spec.resilient:
            from ..resilience import ResilienceConfig

            client.submit_retry = ResilienceConfig.default(self.spec.seed).client_retry
        self.clients[client.peer_id] = client
        return client

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, bootstrap_timeout: float = BOOTSTRAP_TIMEOUT) -> None:
        """Bring the cluster up: seed, processes, membership, settling."""
        self.outdir.mkdir(parents=True, exist_ok=True)
        self.transport.start()
        if self.telemetry:
            # the scraper's clock reads the transport's virtual units,
            # so live timelines compare 1:1 with simulated ones
            self.scraper = ClusterScraper(
                self.outdir,
                clock=lambda: self.transport.now,
                rules=default_slo_rules(
                    shed_bound=self.shed_alert, window=self.slo_window
                ),
                window=self.slo_window,
            )
        for node_id in self.spec.super_ids() + self.spec.peer_ids():
            self._spawn(node_id)
        expected = set(self.spec.super_ids()) | set(self.spec.peer_ids())
        if not self.transport.run_until(
            lambda: expected <= set(self.transport.book), bootstrap_timeout
        ):
            missing = expected - set(self.transport.book)
            raise NetworkError(f"cluster bootstrap timed out; missing {sorted(missing)}")
        self._settle_advertisements(bootstrap_timeout)

    def _spawn(self, node_id: str) -> None:
        argv = [
            sys.executable, "-m", "repro", "peer",
            "--node-id", node_id,
            "--seed", f"{self.host}:{self.transport.port}",
            "--host", self.host,
            "--outdir", str(self.outdir),
        ] + self.spec.to_args()
        if self.statedir is not None:
            argv += ["--statedir", str(self.statedir)]
        if not self.telemetry:
            argv += ["--no-telemetry"]
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        self.processes[node_id] = subprocess.Popen(
            argv, env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )

    def _settle_advertisements(self, timeout: float) -> None:
        """Poll every super-peer's registry until each clustered peer's
        advertisement has landed (a deterministic alternative to the
        in-sim ``system.run()`` settle)."""
        wanted = {
            super_id: {p for p in self.spec.peer_ids()
                       if self.spec.home_for(p) == super_id}
            for super_id in self.spec.super_ids()
        }
        deadline = self.transport.now + timeout

        def settled() -> bool:
            return all(
                wanted[s] <= self.probe.registries.get(s, set()) for s in wanted
            )

        while not settled():
            if self.transport.now >= deadline:
                raise NetworkError("advertisements never settled on the backbone")
            for super_id in wanted:
                if not wanted[super_id] <= self.probe.registries.get(super_id, set()):
                    self.probe.poll(super_id)
            self.transport.run(until=self.transport.now + 20.0)

    def scrape(self) -> Optional[Dict[str, object]]:
        """One mid-run telemetry round over every peer's endpoints;
        returns the cluster rollup (with alert transitions) or ``None``
        when telemetry is off."""
        if self.scraper is None:
            return None
        rollup = self.scraper.scrape_once()
        for event in rollup.get("alerts", ()):
            print(f"  ALERT {render_alert(event)}")
        return rollup

    def kill_peer(self, node_id: str, sig: str = "term") -> None:
        """Kill one process mid-run (the live analogue of a chaos
        ``peer_down`` injection).  ``sig="term"`` lets the node flush
        its artifacts and snapshot; ``sig="kill"`` is the real crash —
        no snapshot, no goodbye, a stale address-book entry left behind.
        """
        process = self.processes[node_id]
        process.send_signal(signal.SIGKILL if sig == "kill" else signal.SIGTERM)
        self.killed.append(node_id)

    def restart_peer(self, node_id: str, timeout: float = BOOTSTRAP_TIMEOUT) -> None:
        """Respawn a dead node and wait until it is back in the overlay.

        A SIGKILL'd node's stale address-book entry still names the old
        port, so "back" means the book announces a *different* address
        for it; the fresh process recovers from its durable state (when
        the cluster runs with one) and re-advertises with the rejoin
        flag.
        """
        old = self.processes.get(node_id)
        if old is not None:
            try:
                old.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                old.kill()
                old.wait()
            self.first_exit_codes.setdefault(node_id, old.returncode)
        stale = self.transport.book.get(node_id)
        self._spawn(node_id)
        if not self.transport.run_until(
            lambda: self.transport.book.get(node_id) not in (None, stale), timeout
        ):
            raise NetworkError(f"restarted {node_id} never rejoined the address book")
        self._settle_peer(node_id, timeout)
        self.restarts.append(node_id)

    def spawn_peer(self, node_id: str, timeout: float = BOOTSTRAP_TIMEOUT) -> None:
        """Bring a late joiner into the running cluster (``--join``):
        spawn its process, wait for membership, wait until its
        advertisement lands at its home super-peer."""
        self._spawn(node_id)
        if not self.transport.run_until(
            lambda: node_id in self.transport.book, timeout
        ):
            raise NetworkError(f"joiner {node_id} never reached the address book")
        self._settle_peer(node_id, timeout)
        self.joined.append(node_id)

    def _settle_peer(self, node_id: str, timeout: float) -> None:
        """Poll the node's home super-peer until its advertisement is
        registered there."""
        home = self.spec.home_for(node_id)
        deadline = self.transport.now + timeout
        while node_id not in self.probe.registries.get(home, set()):
            if self.transport.now >= deadline:
                raise NetworkError(
                    f"{node_id}'s advertisement never settled at {home}"
                )
            self.probe.poll(home)
            self.transport.run(until=self.transport.now + 20.0)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def submit(self, via: str, text: str):
        """Fire a query without waiting; returns ``(client, query_id)``
        for :meth:`await_result`.  Used by kill runs to overlap a
        SIGTERM with an in-flight query."""
        client = self.add_client()
        return client, client.submit(via, text)

    def await_result(self, client, query_id: str, timeout: float = QUERY_TIMEOUT):
        self.transport.run_until(lambda: query_id in client.results, timeout)
        result = client.result(query_id)
        if result is None:
            raise NetworkError(f"query {query_id} timed out live")
        return result

    def query(self, via: str, text: str, timeout: float = QUERY_TIMEOUT):
        """One query to completion; returns the
        :class:`~repro.peers.client.QueryResult` (table, error or
        coverage-annotated partial)."""
        client, query_id = self.submit(via, text)
        return self.await_result(client, query_id, timeout)

    def serve(self, spec, settle: float = 200.0, timeout: float = QUERY_TIMEOUT):
        """Drive a :class:`~repro.workload_engine.spec.WorkloadSpec`
        against the live cluster; returns the workload report."""
        from ..workload_engine import WorkloadDriver

        driver = WorkloadDriver(self, spec)
        driver.install()
        self.transport.run_until(
            lambda: len(driver.outcomes) >= spec.count, timeout
        )
        self.transport.run(until=self.transport.now + settle)
        return driver.report()

    # ------------------------------------------------------------------
    # teardown and artifacts
    # ------------------------------------------------------------------
    def shutdown(self, grace: float = 10.0) -> Dict[str, object]:
        """Stop every process, export and merge artifacts.

        Returns the run summary written to ``report.json``.
        """
        # one last scrape while the endpoints are still alive, so the
        # timeline's final round reflects the cluster at teardown
        if self.scraper is not None:
            try:
                self.scraper.scrape_once()
            except Exception:
                pass  # teardown must proceed even if a peer died racing us
        for node_id, process in self.processes.items():
            if process.poll() is None:
                process.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + grace
        for node_id, process in self.processes.items():
            try:
                process.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        export_artifacts(
            self.outdir, "launcher", self.network, self.transport
        )
        self.transport.close()
        summary = self._merge_artifacts()
        if self.scraper is not None:
            summary["telemetry"] = self.scraper.summary()
            self.scraper.close()
            (self.outdir / "report.json").write_text(
                json.dumps(summary, indent=2, default=str)
            )
        return summary

    def _merge_artifacts(self) -> Dict[str, object]:
        expositions = sorted(self.outdir.glob("*.metrics.prom"))
        merged = merge_expositions([p.read_text() for p in expositions])
        (self.outdir / "merged.metrics.prom").write_text(merged)
        traces = {}
        for path in sorted(self.outdir.glob("*.trace.json")):
            traces[path.name[: -len(".trace.json")]] = json.loads(path.read_text())
        # cross-process stitching: each node exports only its local
        # fragment of a distributed trace; reassemble per trace id and
        # validate the whole causal tree.  The dump is strict JSON —
        # Span.to_dict guarantees scalars, so no default= escape hatch.
        stitched = stitch_trace_exports(list(traces.values()))
        validation = {
            trace_id: problems
            for trace_id, problems in (
                (trace_id, validate_trace_dicts(spans, cross_clock=True))
                for trace_id, spans in sorted(stitched.items())
            )
            if problems
        }
        (self.outdir / "merged.traces.json").write_text(
            json.dumps(
                {
                    "schema": "repro.obs/trace-merge-v1",
                    "nodes": traces,
                    "stitched_traces": len(stitched),
                    "validation": validation,
                },
                indent=2,
            )
        )
        summary = {
            "spec": {
                "seed": self.spec.seed,
                "peers": self.spec.peers,
                "super_peers": self.spec.super_peers,
                "resilient": self.spec.resilient,
            },
            "killed": list(self.killed),
            "restarts": list(self.restarts),
            "joined": list(self.joined),
            "exit_codes": {
                node_id: process.returncode
                for node_id, process in self.processes.items()
            },
            "first_exit_codes": {
                node_id: self.first_exit_codes.get(node_id, process.returncode)
                for node_id, process in self.processes.items()
            },
            "artifacts": sorted(p.name for p in self.outdir.iterdir()),
        }
        (self.outdir / "report.json").write_text(json.dumps(summary, indent=2))
        return summary


def run_launch(args) -> int:
    """Entry point of the ``python -m repro launch`` subcommand."""
    from .node import spec_from_args
    from .supervisor import Supervisor

    spec = spec_from_args(args)
    updates = getattr(args, "updates", False)
    topk = getattr(args, "topk", None)
    if topk is not None and not spec.livedata:
        # top-k cancel needs the nodes' live data plane switched on
        spec = replace(spec, livedata=True)
    kill_signal = getattr(args, "kill_signal", "term")
    restart_after = getattr(args, "restart_after", None)
    supervise = getattr(args, "supervise", False)
    joiner = getattr(args, "join", None)
    statedir = getattr(args, "statedir", None)
    if statedir is None and (supervise or restart_after is not None):
        # restarted processes need somewhere to recover from
        statedir = str(Path(args.outdir) / "state")
    telemetry = not getattr(args, "no_telemetry", False)
    scrape_every = max(1, getattr(args, "scrape_every", 2))
    cluster = LiveCluster(
        spec, args.outdir, host=args.host, statedir=statedir,
        telemetry=telemetry,
        slo_window=getattr(args, "slo_window", 120.0),
        shed_alert=getattr(args, "shed_alert", 0.25),
    )
    print(f"launching {spec.super_peers} super-peer(s) + {spec.peers} peer(s) "
          f"on {args.host} (seed {spec.seed}, "
          f"{'resilient' if spec.resilient else 'baseline'}"
          f"{', supervised' if supervise else ''})")
    outcomes = []
    supervisor = None
    update_driver = None
    #: nodes currently believed dead (killed and not yet restarted)
    down = set()
    kill_time = None
    try:
        cluster.start()
        print(f"cluster up: seed port {cluster.transport.port}, "
              f"book {sorted(cluster.transport.book)}")
        if supervise:
            def _on_restart(node_id: str, attempt: int) -> None:
                write_diagnostic_bundle(
                    cluster.outdir, f"restart-{node_id}-{attempt}",
                    reason="supervised restart", node_ids=(node_id,),
                    scraper=cluster.scraper,
                    details={"attempt": attempt},
                )

            def _on_trip(node_id: str, restarts: int) -> None:
                write_diagnostic_bundle(
                    cluster.outdir, f"breaker-{node_id}",
                    reason="restart-storm circuit breaker tripped",
                    node_ids=(node_id,), scraper=cluster.scraper,
                    details={"restarts": restarts},
                )

            supervisor = Supervisor(
                cluster.processes, cluster.restart_peer,
                on_restart=_on_restart, on_trip=_on_trip,
            )
        kill_index = args.count // 2 if args.kill is not None else None
        join_index = (3 * args.count) // 4 if joiner is not None else None
        update_index = args.count // 3 if updates else None
        for index in range(args.count):
            if update_index is not None and index == update_index:
                from ..livedata import LiveDataDriver, UpdateStream

                # only churn the peers that are actually up: joiners
                # hold pre-generated bases but no process yet
                live_bases = {
                    p: cluster.workload.bases[p]
                    for p in spec.peer_ids() if p not in down
                }
                stream = UpdateStream(
                    cluster.workload.synthetic.schema,
                    live_bases,
                    seed=spec.seed,
                    revisions=1,
                    rate=getattr(args, "update_rate", 0.08),
                )
                update_driver = LiveDataDriver(cluster, stream)
                print(f"injecting live update revision "
                      f"({stream.total_records()} records, "
                      f"rate {getattr(args, 'update_rate', 0.08)})")
                update_driver.inject(0)
                if not cluster.transport.run_until(
                    lambda: update_driver.acked(1), QUERY_TIMEOUT
                ):
                    print("warning: update revision not fully acked",
                          file=sys.stderr)
            if supervisor is not None:
                for node_id in supervisor.tick():
                    down.discard(node_id)
                    print(f"supervisor restarted {node_id}")
            if (kill_time is not None and restart_after is not None
                    and time.monotonic() - kill_time >= restart_after
                    and args.kill in down):
                print(f"restarting {args.kill} ({restart_after}s after kill)")
                cluster.restart_peer(args.kill)
                down.discard(args.kill)
                if supervisor is not None:
                    supervisor.resume(args.kill)
            if join_index is not None and index == join_index:
                print(f"joining {joiner} mid-run")
                cluster.spawn_peer(joiner)
            rotation = spec.peer_ids() + cluster.joined
            alive = [p for p in rotation if p not in down]
            via = alive[index % len(alive)]
            text = cluster.workload.queries[index % len(cluster.workload.queries)]
            if kill_index is not None and index == kill_index:
                # overlap the kill with an in-flight query so the loss
                # degrades it to a coverage-annotated partial, exactly
                # as a mid-query chaos crash does in-sim
                if via == args.kill:
                    via = next(p for p in alive if p != args.kill)
                client, query_id = cluster.submit(via, text)
                print(f"killing {args.kill} mid-query (SIG{kill_signal.upper()})")
                if restart_after is not None and supervisor is not None:
                    supervisor.expect_down(args.kill)
                cluster.kill_peer(args.kill, sig=kill_signal)
                down.add(args.kill)
                kill_time = time.monotonic()
                if kill_signal == "kill" and telemetry:
                    # the crash black box: the victim's durable flight
                    # record survives the SIGKILL; bundle it now
                    write_diagnostic_bundle(
                        cluster.outdir, f"crash-{args.kill}",
                        reason="SIGKILL crash", node_ids=(args.kill,),
                        scraper=cluster.scraper,
                    )
                result = cluster.await_result(client, query_id)
            else:
                result = cluster.query(via, text)
            status = "error" if result.error else (
                "partial" if result.coverage is not None
                and not result.coverage.is_complete else "ok"
            )
            rows = 0 if result.table is None else len(result.table)
            outcomes.append({"via": via, "status": status, "rows": rows,
                             "error": result.error})
            print(f"  q{index}: via {via} -> {status} ({rows} rows)")
            if telemetry and index % scrape_every == 0:
                # mid-run scrape: every peer's /metrics + /healthz into
                # the rollups, the timeline, and the SLO watchdogs
                cluster.scrape()
            if supervisor is not None and args.kill in down and restart_after is None:
                # give the backoff clock a chance between queries, so a
                # short run still observes the supervised restart
                time.sleep(supervisor.backoff.base)
        if topk is not None:
            # one LIMIT-k query over the live cluster: the answering
            # peer cancels still-streaming channels once k rows are
            # stable, the ubQL discard working across real sockets
            rotation = spec.peer_ids() + cluster.joined
            alive = [p for p in rotation if p not in down]
            via = alive[0]
            text = cluster.workload.queries[0]
            client = cluster.add_client()
            query_id = client.submit(via, text, limit=topk)
            result = cluster.await_result(client, query_id)
            status = "error" if result.error else "ok"
            rows = 0 if result.table is None else len(result.table)
            outcomes.append({"via": via, "status": status, "rows": rows,
                             "error": result.error, "limit": topk})
            print(f"  top-{topk}: via {via} -> {status} ({rows} rows)")
    finally:
        summary = cluster.shutdown()
    summary["outcomes"] = outcomes
    if update_driver is not None:
        summary["updates"] = {
            "batches_injected": update_driver.injected,
            "acks": len(update_driver.injector.acks),
            "records": update_driver.stream.total_records(),
        }
        print(f"live updates: {update_driver.injected} batch(es), "
              f"{len(update_driver.injector.acks)} ack(s)")
    if topk is not None:
        summary["topk"] = topk
    (cluster.outdir / "report.json").write_text(json.dumps(summary, indent=2))
    print(f"artifacts merged under {cluster.outdir}")
    statuses = {o["status"] for o in outcomes}
    if args.kill is not None and "partial" not in statuses:
        print("warning: kill run produced no partial answers")
    return 0
