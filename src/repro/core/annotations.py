"""Annotated query patterns: the routing algorithm's output.

An :class:`AnnotatedQueryPattern` decorates each path pattern of a
query pattern with the peers that can answer it — plus, per peer, the
subquery actually rewritten for that peer (Section 2.3, Figure 2).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..rql.pattern import PathPattern, QueryPattern


class PeerAnnotation:
    """One relevant peer for one path pattern.

    Attributes:
        peer_id: The peer that can answer the pattern.
        rewritten: The subquery pattern rewritten for this peer's
            active-schema (class filters narrowed, see
            :mod:`repro.subsumption.rewriter`).
        exact: True when the peer's advertisement matches the query
            pattern exactly (same property and classes) rather than via
            strict subsumption.
    """

    __slots__ = ("peer_id", "rewritten", "exact")

    def __init__(self, peer_id: str, rewritten: PathPattern, exact: bool):
        object.__setattr__(self, "peer_id", peer_id)
        object.__setattr__(self, "rewritten", rewritten)
        object.__setattr__(self, "exact", exact)

    def __setattr__(self, name, val):
        raise AttributeError("PeerAnnotation is immutable")

    def __repr__(self) -> str:
        kind = "exact" if self.exact else "subsumed"
        return f"PeerAnnotation({self.peer_id}, {kind})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PeerAnnotation)
            and self.peer_id == other.peer_id
            and self.rewritten == other.rewritten
            and self.exact == other.exact
        )

    def __hash__(self) -> int:
        return hash((self.peer_id, self.rewritten, self.exact))


class AnnotatedQueryPattern:
    """A query pattern whose path patterns carry routing annotations."""

    def __init__(self, query_pattern: QueryPattern):
        self.query_pattern = query_pattern
        self._annotations: Dict[PathPattern, List[PeerAnnotation]] = {
            p: [] for p in query_pattern
        }

    def annotate(self, pattern: PathPattern, annotation: PeerAnnotation) -> None:
        """Add a relevant peer for ``pattern`` (idempotent per peer)."""
        existing = self._annotations[pattern]
        if all(a.peer_id != annotation.peer_id for a in existing):
            existing.append(annotation)

    def extend_trusted(self, pattern: PathPattern, annotations) -> None:
        """Bulk-add annotations already known to be unique per peer —
        skips :meth:`annotate`'s per-item duplicate scan.  Only for
        callers replaying a previously deduplicated annotation set
        (the routing cache's hit path)."""
        self._annotations[pattern].extend(annotations)

    def annotations(self, pattern: PathPattern) -> Tuple[PeerAnnotation, ...]:
        """The annotations of one path pattern, sorted by peer id."""
        return tuple(sorted(self._annotations[pattern], key=lambda a: a.peer_id))

    def peers_for(self, pattern: PathPattern) -> Tuple[str, ...]:
        """Just the relevant peer ids, sorted."""
        return tuple(a.peer_id for a in self.annotations(pattern))

    def rewritten_for(self, pattern: PathPattern, peer_id: str) -> Optional[PathPattern]:
        """The subquery pattern rewritten for one annotated peer."""
        for annotation in self._annotations[pattern]:
            if annotation.peer_id == peer_id:
                return annotation.rewritten
        return None

    def all_peers(self) -> Tuple[str, ...]:
        """Every annotated peer across all patterns, sorted."""
        out = set()
        for annotations in self._annotations.values():
            out.update(a.peer_id for a in annotations)
        return tuple(sorted(out))

    def unannotated_patterns(self) -> Tuple[PathPattern, ...]:
        """Path patterns with no relevant peer — future plan holes."""
        return tuple(p for p in self.query_pattern if not self._annotations[p])

    def is_fully_annotated(self) -> bool:
        """True when every path pattern has at least one relevant peer."""
        return not self.unannotated_patterns()

    def same_annotations(self, other: "AnnotatedQueryPattern") -> bool:
        """True when both annotate the same query pattern identically
        (used to check cache-served answers against cold routing)."""
        if self.query_pattern != other.query_pattern:
            return False
        return all(
            self.annotations(p) == other.annotations(p) for p in self.query_pattern
        )

    def merge(self, other: "AnnotatedQueryPattern") -> "AnnotatedQueryPattern":
        """Combine annotations from another routing pass over the same
        query pattern (used when interleaving routing in ad-hoc SONs)."""
        merged = AnnotatedQueryPattern(self.query_pattern)
        for pattern in self.query_pattern:
            for annotation in self.annotations(pattern):
                merged.annotate(pattern, annotation)
            for annotation in other.annotations(pattern):
                merged.annotate(pattern, annotation)
        return merged

    def without_peers(self, excluded: set) -> "AnnotatedQueryPattern":
        """A copy dropping annotations of excluded peers (replanning
        after failures, Section 2.5)."""
        out = AnnotatedQueryPattern(self.query_pattern)
        for pattern in self.query_pattern:
            for annotation in self.annotations(pattern):
                if annotation.peer_id not in excluded:
                    out.annotate(pattern, annotation)
        return out

    def __iter__(self) -> Iterator[PathPattern]:
        return iter(self.query_pattern)

    def __str__(self) -> str:
        parts = []
        for pattern in self.query_pattern:
            peers = ", ".join(self.peers_for(pattern)) or "?"
            parts.append(f"{pattern.label}<-[{peers}]")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"AnnotatedQueryPattern({self})"
