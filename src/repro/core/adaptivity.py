"""Run-time plan adaptation (paper Section 2.5).

When a channel's destination peer fails (or its throughput collapses),
the channel's **root node** is responsible for repairing the execution:
it re-runs routing and processing *excluding the obsolete peers* and —
following the ubQL policy the paper adopts — **discards** previous
intermediate results and on-going computations rather than entering a
phased cleanup.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Set

from ..rdf.schema import Schema
from ..rql.pattern import QueryPattern
from ..rvl.active_schema import ActiveSchema
from .algebra import PlanNode
from .annotations import AnnotatedQueryPattern
from .cost import CostModel
from .optimizer import optimize
from .planning import build_plan
from .routing import route_query


class ReplanResult:
    """Outcome of a run-time replan.

    Attributes:
        plan: The new plan, or ``None`` when no peer can cover some
            path pattern any more (the query cannot be repaired from
            local knowledge).
        annotated: The re-routing output.
        excluded: The peers that were treated as obsolete.
        discarded_results: Number of partial result sets thrown away
            (ubQL discard semantics) — reported for the adaptivity
            experiment.
    """

    def __init__(
        self,
        plan: Optional[PlanNode],
        annotated: AnnotatedQueryPattern,
        excluded: Set[str],
        discarded_results: int,
    ):
        self.plan = plan
        self.annotated = annotated
        self.excluded = set(excluded)
        self.discarded_results = discarded_results

    @property
    def repaired(self) -> bool:
        return self.plan is not None and self.plan.is_complete()

    def __repr__(self) -> str:
        status = "repaired" if self.repaired else "unrepairable"
        return f"ReplanResult({status}, excluded={sorted(self.excluded)})"


def replan(
    query_pattern: QueryPattern,
    advertisements: Iterable[ActiveSchema],
    failed_peers: Iterable[str],
    schema: Optional[Schema] = None,
    cost_model: Optional[CostModel] = None,
    discarded_results: int = 0,
) -> ReplanResult:
    """Produce a repaired plan that avoids the failed peers.

    Re-executes the routing algorithm over the advertisements minus
    those of the failed peers, regenerates and re-optimises the plan
    ("re-executing the routing and processing algorithm and not taking
    into consideration those peers that became obsolete").

    Args:
        query_pattern: The original query's semantic pattern.
        advertisements: The advertisements known to the replanning peer.
        failed_peers: Peers observed to have failed.
        schema: Community schema (defaults to the pattern's).
        cost_model: Statistics for cost-guided optimisation.
        discarded_results: How many partial results the caller threw
            away, recorded in the result for accounting.
    """
    excluded = set(failed_peers)
    surviving = [a for a in advertisements if a.peer_id not in excluded]
    annotated = route_query(query_pattern, surviving, schema)
    if not annotated.is_fully_annotated():
        return ReplanResult(None, annotated, excluded, discarded_results)
    plan = optimize(build_plan(annotated), cost_model).result
    return ReplanResult(plan, annotated, excluded, discarded_results)


class ReplanBudget:
    """Bounds the run-time adaptation loop of a query root.

    Round ``n`` is the n-th execution attempt (1-based).  The budget
    answers whether another replan round is allowed after attempt ``n``
    failed, and how long to back off before starting it — a failing
    region gets geometrically more breathing room instead of a tight
    replan storm.
    """

    def __init__(
        self,
        max_rounds: int = 3,
        base_delay: float = 0.0,
        backoff: float = 2.0,
        max_delay: float = 120.0,
    ):
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        self.max_rounds = max_rounds
        self.base_delay = base_delay
        self.backoff = backoff
        self.max_delay = max_delay

    def exhausted(self, attempts: int) -> bool:
        """True when ``attempts`` executions have used up the budget
        (``max_rounds`` replans on top of the initial attempt)."""
        return attempts > self.max_rounds

    def delay(self, attempts: int) -> float:
        """Back-off delay before the replan following attempt
        ``attempts`` (0 when no base delay is configured)."""
        if not self.base_delay:
            return 0.0
        return min(
            self.base_delay * (self.backoff ** max(0, attempts - 1)), self.max_delay
        )

    def __repr__(self) -> str:
        return (
            f"ReplanBudget(rounds={self.max_rounds}, base={self.base_delay}, "
            f"backoff={self.backoff})"
        )


class ChannelMonitor:
    """Throughput watchdog for a running channel (Section 2.5).

    The optimiser "may alter a running query plan by observing the
    throughput of a certain channel", measured in tuples.  The monitor
    tracks per-channel tuple counts against expectations and flags
    channels whose observed throughput falls below a fraction of the
    expected rate.
    """

    def __init__(self, minimum_ratio: float = 0.1):
        if not 0.0 < minimum_ratio <= 1.0:
            raise ValueError("minimum_ratio must be in (0, 1]")
        self.minimum_ratio = minimum_ratio
        self._expected: dict = {}
        self._observed: dict = {}

    def expect(self, channel_id: str, tuples: float) -> None:
        """Record the expected tuple volume of a channel."""
        self._expected[channel_id] = max(tuples, 1.0)
        self._observed.setdefault(channel_id, 0.0)

    def observe(self, channel_id: str, tuples: int) -> None:
        """Record tuples received over a channel."""
        self._observed[channel_id] = self._observed.get(channel_id, 0.0) + tuples

    def throughput_ratio(self, channel_id: str) -> float:
        expected = self._expected.get(channel_id)
        if not expected:
            return 1.0
        return self._observed.get(channel_id, 0.0) / expected

    def underperforming(self) -> Sequence[str]:
        """Channels whose observed/expected ratio is below threshold."""
        return sorted(
            cid
            for cid in self._expected
            if self.throughput_ratio(cid) < self.minimum_ratio
        )
