"""Compile-time plan optimisation (paper Section 2.5, Figure 4).

Three rewrites are applied, in the paper's order:

1. **Distribution of joins and unions** — rewrite
   ``⋈(∪(Q11..Q1n), ∪(Q21..Q2m))`` into
   ``∪(⋈(Q11,Q21), ⋈(Q11,Q22), ..., ⋈(Q1n,Q2m))``.  The paper applies
   it heuristically when the join result is expected to be smaller
   than its inputs; pass a :class:`~repro.core.cost.CostModel` to get
   that guard, or none to always distribute (Figure 4's Plan 2).

2. **Transformation Rule 1** — ``⋈(Q1@Pi, ..., Qn@Pi)`` where every
   input lives at the same peer becomes one composite subquery
   ``Q@Pi`` evaluated entirely at that peer.

3. **Transformation Rule 2** — ``⋈(⋈(QP, Q1@Pi), Q2@Pi)`` becomes
   ``⋈(QP, Q@Pi)``: the two same-peer inputs of nested joins merge.

Rules 2 and 3 are implemented together on the flattened n-ary join
form: within any join, all scan inputs at the same peer merge into one
composite scan (Figure 4's Plan 3, which pushes the prop1⋈prop2 join
to peers P1 and P4).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

from .algebra import (
    Hole,
    Join,
    PlanNode,
    Scan,
    Union,
    flatten,
    join_of,
    union_of,
)
from .cost import CostModel

#: Safety bound on the number of join terms produced by distribution.
MAX_DISTRIBUTED_TERMS = 4096


class OptimizationTrace:
    """The sequence of plans an optimisation pass went through.

    Attributes:
        steps: ``(rule_name, plan)`` pairs, starting with
            ``("input", original_plan)``.
    """

    def __init__(self, plan: PlanNode):
        self.steps: List[Tuple[str, PlanNode]] = [("input", plan)]
        #: set by the cost-based pass: the chosen plan's estimated cost
        #: and the rule-based plan's (the rejected alternative) — what
        #: the ``optimize.cost`` trace span exposes
        self.cost_decision: Optional[dict] = None

    def record(self, rule: str, plan: PlanNode) -> None:
        if plan != self.steps[-1][1]:
            self.steps.append((rule, plan))

    @property
    def result(self) -> PlanNode:
        return self.steps[-1][1]

    def __iter__(self):
        return iter(self.steps)

    def __str__(self) -> str:
        return "\n".join(f"{rule:>24}: {plan.render()}" for rule, plan in self.steps)


def distribute_joins_over_unions(
    plan: PlanNode,
    cost_model: Optional[CostModel] = None,
    max_terms: int = MAX_DISTRIBUTED_TERMS,
) -> PlanNode:
    """Push joins below unions (Section 2.5's algebraic equivalence).

    With a cost model, the rewrite is applied only when the expected
    join result is smaller than any of its union inputs — the paper's
    "beneficial" condition.  Without one it is applied unconditionally.
    The rewrite is skipped when it would exceed ``max_terms`` join
    combinations.
    """
    plan = flatten(plan)
    if isinstance(plan, (Scan, Hole)):
        return plan
    children = [
        distribute_joins_over_unions(c, cost_model, max_terms) for c in plan.children()
    ]
    if isinstance(plan, Union):
        return union_of(children)
    # plan is a Join over optimised children
    union_children: List[Sequence[PlanNode]] = []
    for child in children:
        if isinstance(child, Union):
            union_children.append(child.children())
        else:
            union_children.append((child,))
    combinations = 1
    for group in union_children:
        combinations *= len(group)
    if combinations <= 1 or combinations > max_terms:
        return join_of(children)
    if cost_model is not None and not _distribution_beneficial(plan, cost_model):
        return join_of(children)
    terms = [
        flatten(join_of(list(combo))) for combo in itertools.product(*union_children)
    ]
    return union_of(terms)


def _distribution_beneficial(join: Join, cost_model: CostModel) -> bool:
    """The paper's guard: expected join result smaller than any input."""
    join_rows = cost_model.cardinality(join)
    input_rows = [cost_model.cardinality(c) for c in join.children()]
    return bool(input_rows) and join_rows < min(input_rows)


def merge_same_peer_scans(plan: PlanNode) -> PlanNode:
    """Transformation Rules 1 and 2: merge same-peer join inputs.

    On the flattened n-ary join form, all scan inputs of a join that
    live at one peer collapse into a single composite scan executed
    there.  A join whose inputs all merge into one scan collapses to
    that scan (Rule 1); partial merges reduce the join arity (Rule 2).
    """
    plan = flatten(plan)
    if isinstance(plan, (Scan, Hole)):
        return plan
    children = [merge_same_peer_scans(c) for c in plan.children()]
    if isinstance(plan, Union):
        return flatten(union_of(children))
    merged: List[PlanNode] = []
    scans_by_peer: dict = {}
    for child in children:
        if isinstance(child, Scan):
            scans_by_peer.setdefault(child.peer_id, []).append(child)
        else:
            merged.append(child)
    for peer_id in sorted(scans_by_peer):
        group = scans_by_peer[peer_id]
        if len(group) == 1:
            merged.append(group[0])
        else:
            patterns = [p for scan in group for p in scan.patterns()]
            patterns.sort(key=lambda p: p.label)
            merged.append(Scan(tuple(patterns), peer_id))
    # deterministic, paper-style shape: scans first (by label), then
    # inner subplans, holes last (⋈(Q1@P2, Q2@?) as in Figure 7)
    merged.sort(
        key=lambda n: (isinstance(n, Hole), not isinstance(n, Scan), n.render())
    )
    return join_of(merged)


def order_joins_by_cost(plan: PlanNode, cost_model: CostModel) -> PlanNode:
    """Statistics-driven join ordering, applied recursively.

    Every n-ary join's inputs are reordered by ascending estimated
    cardinality (render text breaking ties, for determinism).  Under
    the model's multiplicative cardinality estimate the cost of a join
    prefix is a product of its inputs' cardinalities, so the ascending
    order minimises *every* intermediate prefix simultaneously — the
    greedy order coincides with the dynamic-programming optimum, at
    O(n log n) instead of O(2^n).  Holes (unroutable patterns) keep
    their conventional last position.
    """
    plan = flatten(plan)
    if isinstance(plan, (Scan, Hole)):
        return plan
    children = [order_joins_by_cost(c, cost_model) for c in plan.children()]
    if isinstance(plan, Union):
        return union_of(children)
    children.sort(
        key=lambda c: (isinstance(c, Hole), cost_model.cardinality(c), c.render())
    )
    return join_of(children)


def optimize(
    plan: PlanNode,
    cost_model: Optional[CostModel] = None,
    distribute: bool = True,
    merge: bool = True,
    cost_based: bool = False,
    coordinator: str = "",
) -> OptimizationTrace:
    """Run the full compile-time pipeline and return its trace.

    The trace's steps reproduce Figure 4: input (Plan 1), after
    distribution (Plan 2), after the transformation rules (Plan 3).
    With ``cost_based`` on, a statistics-driven join-ordering pass
    follows, and the trace's :attr:`~OptimizationTrace.cost_decision`
    records the chosen plan's estimated cost against the rule-based
    plan it displaced (priced from ``coordinator``'s vantage point).
    """
    trace = OptimizationTrace(flatten(plan))
    current = trace.result
    if distribute:
        current = distribute_joins_over_unions(current, cost_model)
        trace.record("distribute joins/unions", current)
    if merge:
        current = merge_same_peer_scans(current)
        trace.record("merge same-peer (TR1/TR2)", current)
    if cost_based:
        model = cost_model or CostModel()
        rule_based = current
        current = order_joins_by_cost(current, model)
        trace.record("cost-based join order", current)
        trace.cost_decision = {
            "chosen": model.plan_cost(current, coordinator).total,
            "rejected": model.plan_cost(rule_based, coordinator).total,
        }
    return trace
