"""Data / query / hybrid shipping decisions (paper Section 2.5, Figure 5).

Given a plan and the coordinating peer, the optimiser assigns every
inner operator (join/union) an *execution site*:

* **data shipping** — the operator runs at the coordinator and all
  inputs ship their results there (Figure 5 left: P1 joins locally);
* **query shipping** — the operator is pushed to one of the peers
  contributing an input, which combines results locally and ships only
  the operator's output upward (Figure 5 right: P2 executes the join);
* **hybrid shipping** — different operators make different choices.

The assignment minimises estimated cost, combining the three statistics
Section 2.5 enumerates: link costs between peers, expected result
sizes, and per-peer processing load (slots).
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from .algebra import Hole, PlanNode, Scan
from .cost import CONTROL_MESSAGE_BYTES, CostEstimate, CostModel

#: Tree path — the child-index route from the root to a node — used to
#: key assignments (structurally equal subtrees may sit at different
#: sites).
TreePath = Tuple[int, ...]


class ShippingPolicy(enum.Enum):
    """The overall character of a site assignment."""

    DATA = "data"
    QUERY = "query"
    HYBRID = "hybrid"


class SiteAssignment:
    """Execution sites for every node of one plan.

    Attributes:
        plan: The plan the assignment refers to.
        coordinator: The peer that launched the query.
        sites: Mapping tree path → executing peer id.
        cost: The estimated cost of this assignment.
    """

    def __init__(
        self,
        plan: PlanNode,
        coordinator: str,
        sites: Dict[TreePath, str],
        cost: CostEstimate,
    ):
        self.plan = plan
        self.coordinator = coordinator
        self.sites = dict(sites)
        self.cost = cost

    def site_of(self, path: TreePath) -> str:
        return self.sites[path]

    def policy(self) -> ShippingPolicy:
        """Classify the assignment (Figure 5's two poles, or hybrid)."""
        inner_sites = [
            site
            for path, site in self.sites.items()
            if not isinstance(_node_at(self.plan, path), (Scan, Hole))
        ]
        if not inner_sites:
            return ShippingPolicy.DATA
        at_coordinator = [s == self.coordinator for s in inner_sites]
        if all(at_coordinator):
            return ShippingPolicy.DATA
        if not any(at_coordinator):
            return ShippingPolicy.QUERY
        return ShippingPolicy.HYBRID

    def describe(self) -> str:
        """Human-readable per-operator placement."""
        lines = [f"policy: {self.policy().value}  cost: {self.cost!r}"]
        for path in sorted(self.sites):
            node = _node_at(self.plan, path)
            kind = type(node).__name__.lower()
            lines.append(f"  {'.'.join(map(str, path)) or 'root'} [{kind}] @ {self.sites[path]}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"SiteAssignment(policy={self.policy().value}, cost={self.cost!r})"


def _node_at(plan: PlanNode, path: TreePath) -> PlanNode:
    node = plan
    for index in path:
        node = node.children()[index]
    return node


def assign_sites(
    plan: PlanNode, coordinator: str, cost_model: Optional[CostModel] = None
) -> SiteAssignment:
    """Choose the cost-minimal execution site for every operator.

    Dynamic program over the plan tree: for each node and each
    candidate site (the parent's site or any peer contributing a scan
    below the node), the cheapest placement of the subtree is computed;
    the root is charged for shipping its result to the coordinator.
    """
    model = cost_model or CostModel()
    best = _Assigner(model).solve(plan, (), coordinator)
    sites, bytes_shipped, messages, time = best
    return SiteAssignment(
        plan, coordinator, sites, CostEstimate(bytes_shipped, messages, time)
    )


class _Assigner:
    """The recursive site-assignment dynamic program."""

    def __init__(self, model: CostModel):
        self.model = model
        self.stats = model.stats

    def solve(
        self, node: PlanNode, path: TreePath, parent_site: str
    ) -> Tuple[Dict[TreePath, str], float, int, float]:
        """Best placement of ``node`` given its parent executes at
        ``parent_site``.

        Returns:
            ``(sites, bytes, messages, time)`` — the site map for the
            subtree, and the cost of executing it *and shipping its
            result to the parent site*.
        """
        if isinstance(node, (Scan, Hole)):
            return self._solve_leaf(node, path, parent_site)
        candidates = sorted({parent_site} | node.peers())
        best: Optional[Tuple[Dict[TreePath, str], float, int, float]] = None
        for site in candidates:
            sites: Dict[TreePath, str] = {path: site}
            total_bytes = 0.0
            total_messages = 0
            child_time = 0.0
            for index, child in enumerate(node.children()):
                c_sites, c_bytes, c_messages, c_time = self.solve(
                    child, path + (index,), site
                )
                sites.update(c_sites)
                total_bytes += c_bytes
                total_messages += c_messages
                child_time = max(child_time, c_time)  # children run in parallel
            rows = self.model.cardinality(node)
            processing = rows * 0.001 * self.stats.load_factor(site)
            ship_bytes, ship_messages, ship_time = self._shipment(
                rows, site, parent_site
            )
            candidate = (
                sites,
                total_bytes + ship_bytes,
                total_messages + ship_messages,
                child_time + processing + ship_time,
            )
            if best is None or _total(candidate) < _total(best):
                best = candidate
        assert best is not None
        return best

    def _solve_leaf(
        self, node: PlanNode, path: TreePath, parent_site: str
    ) -> Tuple[Dict[TreePath, str], float, int, float]:
        if isinstance(node, Hole):
            return ({path: "?"}, 0.0, 0, 0.0)
        assert isinstance(node, Scan)
        rows = self.model.scan_cardinality(node)
        processing = rows * 0.001 * self.stats.load_factor(node.peer_id)
        ship_bytes, ship_messages, ship_time = self._shipment(
            rows, node.peer_id, parent_site
        )
        # +1 message: the subplan sent to the peer
        return (
            {path: node.peer_id},
            ship_bytes,
            ship_messages + 1,
            processing + ship_time,
        )

    def _shipment(
        self, rows: float, source: str, target: str
    ) -> Tuple[float, int, float]:
        """Cost of shipping ``rows`` result rows from source to target."""
        if source == target:
            return (0.0, 0, 0.0)
        payload = rows * self.stats.row_bytes + CONTROL_MESSAGE_BYTES
        link = self.stats.link_cost(source, target)
        return (payload, 1, payload * link)


def _total(candidate: Tuple[Dict[TreePath, str], float, int, float]) -> float:
    _, bytes_shipped, messages, time = candidate
    return time + messages * 0.1 + bytes_shipped * 1e-9  # bytes as a tiebreaker


def compare_policies(
    plan: PlanNode, coordinator: str, cost_model: Optional[CostModel] = None
) -> Dict[ShippingPolicy, CostEstimate]:
    """Cost of the pure data-shipping and pure query-shipping plans,
    plus the optimal (possibly hybrid) assignment — the comparison
    behind Figure 5's discussion."""
    model = cost_model or CostModel()
    out: Dict[ShippingPolicy, CostEstimate] = {}
    out[ShippingPolicy.DATA] = _forced_assignment(plan, coordinator, model, push=False)
    out[ShippingPolicy.QUERY] = _forced_assignment(plan, coordinator, model, push=True)
    out[ShippingPolicy.HYBRID] = assign_sites(plan, coordinator, model).cost
    return out


def _forced_assignment(
    plan: PlanNode, coordinator: str, model: CostModel, push: bool
) -> CostEstimate:
    """Cost with every inner operator forced to the coordinator
    (``push=False``, data shipping) or forced to the lexicographically
    first contributing peer (``push=True``, query shipping)."""

    def walk(node: PlanNode, parent_site: str) -> Tuple[float, int, float]:
        if isinstance(node, Hole):
            return (0.0, 0, 0.0)
        if isinstance(node, Scan):
            rows = model.scan_cardinality(node)
            processing = rows * 0.001 * model.stats.load_factor(node.peer_id)
            payload, messages, time = _ship(model, rows, node.peer_id, parent_site)
            return (payload, messages + 1, processing + time)
        contributing = sorted(node.peers() - {"?"})
        site = coordinator if not push or not contributing else contributing[0]
        total_bytes, total_messages, child_time = 0.0, 0, 0.0
        for child in node.children():
            c_bytes, c_messages, c_time = walk(child, site)
            total_bytes += c_bytes
            total_messages += c_messages
            child_time = max(child_time, c_time)
        rows = model.cardinality(node)
        processing = rows * 0.001 * model.stats.load_factor(site)
        payload, messages, time = _ship(model, rows, site, parent_site)
        return (
            total_bytes + payload,
            total_messages + messages,
            child_time + processing + time,
        )

    bytes_shipped, messages, time = walk(plan, coordinator)
    return CostEstimate(bytes_shipped, messages, time)


def _ship(model: CostModel, rows: float, source: str, target: str):
    if source == target:
        return (0.0, 0, 0.0)
    payload = rows * model.stats.row_bytes + CONTROL_MESSAGE_BYTES
    return (payload, 1, payload * model.stats.link_cost(source, target))
