"""Statistics and the cost model for distributed plan optimisation.

Section 2.5 names three inputs to the optimisation choice: statistics
about the **communication cost** between peers (connection speed), the
**expected size of peers' query results**, and the **processing load**
of peers (free "slots").  :class:`Statistics` stores exactly those
three, and :class:`CostModel` combines them into per-plan estimates of
bytes shipped, messages sent and completion time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..rdf.terms import URI
from .algebra import Hole, Join, PlanNode, Scan, Union

#: Estimated wire bytes per binding-table row (term renderings + overhead).
DEFAULT_ROW_BYTES = 64
#: Default join selectivity when no statistics narrow it down.
DEFAULT_JOIN_SELECTIVITY = 0.01
#: Wire size of a subplan/control message.
CONTROL_MESSAGE_BYTES = 256


@dataclass(frozen=True)
class StatSummary:
    """A peer's compact statistics advertisement.

    Rides alongside the active-schema advertisement (Section 2.5's
    "expected size of peers' query results"): per-predicate row counts
    plus distinct endpoint counts, from which the receiving super-peer
    derives cardinalities and join selectivities.

    Attributes:
        peer_id: The advertising peer.
        predicates: ``(property URI value, rows, distinct subjects,
            distinct objects)`` per non-empty predicate.
    """

    peer_id: str
    predicates: Tuple[Tuple[str, int, int, int], ...] = ()

    def size_bytes(self) -> int:
        return 32 + 24 * len(self.predicates)


def harvest_stat_summary(graph, schema, peer_id: str) -> StatSummary:
    """Derive a peer's stat summary from its own base.

    Counts are RDFS-entailed (the same :class:`~repro.rdf.inference.
    InferredView` semantics queries see), so the advertised cardinality
    of ``prop1`` includes a base that only stores ``prop4 ⊑ prop1``
    statements — Figure 2's P4 advertises non-zero ``prop1`` rows.
    """
    from ..rdf.inference import InferredView

    view = InferredView(graph, schema)
    predicates = []
    for prop in sorted(schema.properties, key=lambda p: p.value):
        rows = 0
        subjects = set()
        objects = set()
        for triple in view.triples(None, prop, None):
            rows += 1
            subjects.add(triple.subject)
            objects.add(triple.object)
        if rows:
            predicates.append((prop.value, rows, len(subjects), len(objects)))
    return StatSummary(peer_id, tuple(predicates))


class Statistics:
    """Per-peer statistics the optimiser consumes.

    Args:
        default_cardinality: Fallback result size for (peer, property)
            pairs that were never recorded.
        default_link_cost: Fallback per-byte transfer cost.
        join_selectivity: Fraction of the cross product surviving a join.
    """

    def __init__(
        self,
        default_cardinality: int = 100,
        default_link_cost: float = 1.0,
        join_selectivity: float = DEFAULT_JOIN_SELECTIVITY,
        row_bytes: int = DEFAULT_ROW_BYTES,
    ):
        self.default_cardinality = default_cardinality
        self.default_link_cost = default_link_cost
        self.join_selectivity = join_selectivity
        self.row_bytes = row_bytes
        #: bumped on every recorded change; plan caches key on it so a
        #: cached plan is only reused while its cost inputs still hold
        self.version = 0
        self._cardinality: Dict[Tuple[str, URI], int] = {}
        self._link_cost: Dict[Tuple[str, str], float] = {}
        self._load: Dict[str, int] = {}
        self._slots: Dict[str, int] = {}
        #: property → (max distinct subjects, max distinct objects)
        #: across folded peer summaries; feeds :meth:`selectivity`
        self._distinct: Dict[URI, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def set_cardinality(self, peer_id: str, prop: URI, rows: int) -> None:
        """Record that ``peer_id`` returns ``rows`` bindings for ``prop``."""
        if self._cardinality.get((peer_id, prop)) != rows:
            self.version += 1
        self._cardinality[(peer_id, prop)] = rows

    def set_link_cost(self, a: str, b: str, cost: float) -> None:
        """Record the per-byte cost of the (symmetric) link ``a — b``."""
        if self._link_cost.get((a, b)) != cost:
            self.version += 1
        self._link_cost[(a, b)] = cost
        self._link_cost[(b, a)] = cost

    def set_load(self, peer_id: str, load: int, slots: int = 1) -> None:
        """Record a peer's current processing load and its slot count."""
        if (self._load.get(peer_id), self._slots.get(peer_id)) != (load, max(1, slots)):
            self.version += 1
        self._load[peer_id] = load
        self._slots[peer_id] = max(1, slots)

    def fold_summary(self, summary: StatSummary) -> None:
        """Fold a peer's advertised :class:`StatSummary` in: observed
        cardinalities replace the static defaults, and distinct counts
        sharpen the per-predicate join selectivity."""
        for value, rows, distinct_subjects, distinct_objects in summary.predicates:
            prop = URI(value)
            self.set_cardinality(summary.peer_id, prop, rows)
            previous = self._distinct.get(prop, (0, 0))
            merged = (
                max(previous[0], distinct_subjects),
                max(previous[1], distinct_objects),
            )
            if merged != previous:
                self.version += 1
            self._distinct[prop] = merged

    def fold_link_observations(
        self, observations: Mapping[Tuple[str, str], Tuple[float, float]]
    ) -> None:
        """Fold observed per-link (mean delay, mean bytes) pairs — from
        :meth:`~repro.metrics.collectors.MetricSet.link_observations` —
        into per-byte link costs, replacing the static default.

        Costs are rounded to three significant digits before recording
        so minor histogram drift between folds does not churn
        :attr:`version` (and with it every plan cache).
        """
        for (a, b), (mean_delay, mean_bytes) in sorted(observations.items()):
            if a == b:
                continue
            cost = mean_delay / max(mean_bytes, 1.0)
            self.set_link_cost(a, b, float(f"{cost:.3g}"))

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def cardinality(self, peer_id: str, prop: URI) -> int:
        return self._cardinality.get((peer_id, prop), self.default_cardinality)

    def selectivity(self, prop: URI) -> float:
        """Join selectivity of a predicate: ``1 / max(distinct
        subjects, distinct objects)`` when a summary supplied the
        distinct counts, else the static default — so with no stats
        folded the model is numerically identical to the rule-based
        era."""
        distinct = self._distinct.get(prop)
        if not distinct:
            return self.join_selectivity
        denominator = max(distinct)
        return 1.0 / denominator if denominator else self.join_selectivity

    def link_cost(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        return self._link_cost.get((a, b), self.default_link_cost)

    def load_factor(self, peer_id: str) -> float:
        """Queueing penalty multiplier: 1 + load/slots."""
        load = self._load.get(peer_id, 0)
        slots = self._slots.get(peer_id, 1)
        return 1.0 + load / slots

    def known_peers(self) -> Iterable[str]:
        return sorted({p for p, _ in self._cardinality} | set(self._load))


class CostEstimate:
    """A plan cost breakdown."""

    __slots__ = ("bytes_shipped", "messages", "time")

    def __init__(self, bytes_shipped: float, messages: int, time: float):
        object.__setattr__(self, "bytes_shipped", bytes_shipped)
        object.__setattr__(self, "messages", messages)
        object.__setattr__(self, "time", time)

    def __setattr__(self, name, val):
        raise AttributeError("CostEstimate is immutable")

    @property
    def total(self) -> float:
        """The scalar the optimiser compares: time-weighted bytes plus
        a fixed charge per message."""
        return self.time + self.messages * 0.1

    def __repr__(self) -> str:
        return (
            f"CostEstimate(bytes={self.bytes_shipped:.0f}, "
            f"messages={self.messages}, time={self.time:.2f})"
        )


class CostModel:
    """Estimates plan cardinalities and execution costs.

    Args:
        stats: The statistics store.
    """

    def __init__(self, stats: Optional[Statistics] = None):
        self.stats = stats or Statistics()

    # ------------------------------------------------------------------
    # cardinality estimation
    # ------------------------------------------------------------------
    def scan_cardinality(self, scan: Scan) -> float:
        """Expected rows a scan returns from its peer.

        A composite scan is a local join of its patterns: product of
        the per-pattern cardinalities scaled by the join selectivity.
        """
        result = 1.0
        for index, pattern in enumerate(scan.patterns()):
            prop = pattern.schema_path.property
            rows = self.stats.cardinality(scan.peer_id, prop)
            if index == 0:
                result = rows
            else:
                result = result * rows * self.stats.selectivity(prop)
        return result

    def _plan_selectivity(self, plan: PlanNode) -> float:
        """Selectivity applied when a subplan joins in: the sharpest
        (smallest) per-predicate selectivity among its scans' properties
        — the most selective join predicate dominates.  Falls back to
        the static default when no summary narrowed anything down."""
        best: Optional[float] = None
        for node in plan.walk():
            if not isinstance(node, Scan):
                continue
            for pattern in node.patterns():
                s = self.stats.selectivity(pattern.schema_path.property)
                best = s if best is None else min(best, s)
        return self.stats.join_selectivity if best is None else best

    def cardinality(self, plan: PlanNode) -> float:
        """Expected result rows of a plan node."""
        if isinstance(plan, Scan):
            return self.scan_cardinality(plan)
        if isinstance(plan, Hole):
            return 0.0
        if isinstance(plan, Union):
            return sum(self.cardinality(c) for c in plan.children())
        if isinstance(plan, Join):
            result = None
            for child in plan.children():
                rows = self.cardinality(child)
                if result is None:
                    result = rows
                else:
                    result = result * rows * self._plan_selectivity(child)
            return result or 0.0
        raise TypeError(f"unknown plan node {type(plan).__name__}")

    # ------------------------------------------------------------------
    # plan cost (all intermediate results shipped to one coordinator)
    # ------------------------------------------------------------------
    def plan_cost(self, plan: PlanNode, coordinator: str) -> CostEstimate:
        """Cost of executing a plan with every scan result shipped to
        ``coordinator`` and every inner operator evaluated there
        (the data-shipping baseline; shipping decisions refine this in
        :mod:`repro.core.shipping`).
        """
        bytes_shipped = 0.0
        messages = 0
        time = 0.0
        for node in plan.walk():
            if not isinstance(node, Scan):
                continue
            rows = self.scan_cardinality(node)
            payload = rows * self.stats.row_bytes
            link = self.stats.link_cost(node.peer_id, coordinator)
            bytes_shipped += payload
            messages += 2  # subplan out + results back
            transfer = (payload + CONTROL_MESSAGE_BYTES) * link
            processing = rows * 0.001 * self.stats.load_factor(node.peer_id)
            time = max(time, transfer + processing)  # scans run in parallel
        join_rows = self.cardinality(plan)
        time += join_rows * 0.001 * self.stats.load_factor(coordinator)
        return CostEstimate(bytes_shipped, messages, time)

    def max_intermediate_rows(self, plan: PlanNode) -> float:
        """The largest operator input anywhere in the plan.

        This is the quantity the paper's Figure 4 discussion targets:
        "pushing joins below the unions produces smaller intermediate
        results" — after distribution, no join consumes a full union.
        """
        largest = 0.0
        for node in plan.walk():
            for child in node.children():
                largest = max(largest, self.cardinality(child))
        return largest

    def intermediate_result_rows(self, plan: PlanNode) -> float:
        """Total rows crossing the network: sum over scan leaves.

        This is the quantity Figure 4's heuristic minimises ("pushing
        joins below the unions produces smaller intermediate results").
        """
        return sum(
            self.scan_cardinality(node)
            for node in plan.walk()
            if isinstance(node, Scan)
        )
