"""Statistics and the cost model for distributed plan optimisation.

Section 2.5 names three inputs to the optimisation choice: statistics
about the **communication cost** between peers (connection speed), the
**expected size of peers' query results**, and the **processing load**
of peers (free "slots").  :class:`Statistics` stores exactly those
three, and :class:`CostModel` combines them into per-plan estimates of
bytes shipped, messages sent and completion time.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..rdf.terms import URI
from .algebra import Hole, Join, PlanNode, Scan, Union

#: Estimated wire bytes per binding-table row (term renderings + overhead).
DEFAULT_ROW_BYTES = 64
#: Default join selectivity when no statistics narrow it down.
DEFAULT_JOIN_SELECTIVITY = 0.01
#: Wire size of a subplan/control message.
CONTROL_MESSAGE_BYTES = 256


class Statistics:
    """Per-peer statistics the optimiser consumes.

    Args:
        default_cardinality: Fallback result size for (peer, property)
            pairs that were never recorded.
        default_link_cost: Fallback per-byte transfer cost.
        join_selectivity: Fraction of the cross product surviving a join.
    """

    def __init__(
        self,
        default_cardinality: int = 100,
        default_link_cost: float = 1.0,
        join_selectivity: float = DEFAULT_JOIN_SELECTIVITY,
        row_bytes: int = DEFAULT_ROW_BYTES,
    ):
        self.default_cardinality = default_cardinality
        self.default_link_cost = default_link_cost
        self.join_selectivity = join_selectivity
        self.row_bytes = row_bytes
        #: bumped on every recorded change; plan caches key on it so a
        #: cached plan is only reused while its cost inputs still hold
        self.version = 0
        self._cardinality: Dict[Tuple[str, URI], int] = {}
        self._link_cost: Dict[Tuple[str, str], float] = {}
        self._load: Dict[str, int] = {}
        self._slots: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def set_cardinality(self, peer_id: str, prop: URI, rows: int) -> None:
        """Record that ``peer_id`` returns ``rows`` bindings for ``prop``."""
        if self._cardinality.get((peer_id, prop)) != rows:
            self.version += 1
        self._cardinality[(peer_id, prop)] = rows

    def set_link_cost(self, a: str, b: str, cost: float) -> None:
        """Record the per-byte cost of the (symmetric) link ``a — b``."""
        if self._link_cost.get((a, b)) != cost:
            self.version += 1
        self._link_cost[(a, b)] = cost
        self._link_cost[(b, a)] = cost

    def set_load(self, peer_id: str, load: int, slots: int = 1) -> None:
        """Record a peer's current processing load and its slot count."""
        if (self._load.get(peer_id), self._slots.get(peer_id)) != (load, max(1, slots)):
            self.version += 1
        self._load[peer_id] = load
        self._slots[peer_id] = max(1, slots)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def cardinality(self, peer_id: str, prop: URI) -> int:
        return self._cardinality.get((peer_id, prop), self.default_cardinality)

    def link_cost(self, a: str, b: str) -> float:
        if a == b:
            return 0.0
        return self._link_cost.get((a, b), self.default_link_cost)

    def load_factor(self, peer_id: str) -> float:
        """Queueing penalty multiplier: 1 + load/slots."""
        load = self._load.get(peer_id, 0)
        slots = self._slots.get(peer_id, 1)
        return 1.0 + load / slots

    def known_peers(self) -> Iterable[str]:
        return sorted({p for p, _ in self._cardinality} | set(self._load))


class CostEstimate:
    """A plan cost breakdown."""

    __slots__ = ("bytes_shipped", "messages", "time")

    def __init__(self, bytes_shipped: float, messages: int, time: float):
        object.__setattr__(self, "bytes_shipped", bytes_shipped)
        object.__setattr__(self, "messages", messages)
        object.__setattr__(self, "time", time)

    def __setattr__(self, name, val):
        raise AttributeError("CostEstimate is immutable")

    @property
    def total(self) -> float:
        """The scalar the optimiser compares: time-weighted bytes plus
        a fixed charge per message."""
        return self.time + self.messages * 0.1

    def __repr__(self) -> str:
        return (
            f"CostEstimate(bytes={self.bytes_shipped:.0f}, "
            f"messages={self.messages}, time={self.time:.2f})"
        )


class CostModel:
    """Estimates plan cardinalities and execution costs.

    Args:
        stats: The statistics store.
    """

    def __init__(self, stats: Optional[Statistics] = None):
        self.stats = stats or Statistics()

    # ------------------------------------------------------------------
    # cardinality estimation
    # ------------------------------------------------------------------
    def scan_cardinality(self, scan: Scan) -> float:
        """Expected rows a scan returns from its peer.

        A composite scan is a local join of its patterns: product of
        the per-pattern cardinalities scaled by the join selectivity.
        """
        result = 1.0
        for index, pattern in enumerate(scan.patterns()):
            rows = self.stats.cardinality(scan.peer_id, pattern.schema_path.property)
            result = rows if index == 0 else result * rows * self.stats.join_selectivity
        return result

    def cardinality(self, plan: PlanNode) -> float:
        """Expected result rows of a plan node."""
        if isinstance(plan, Scan):
            return self.scan_cardinality(plan)
        if isinstance(plan, Hole):
            return 0.0
        if isinstance(plan, Union):
            return sum(self.cardinality(c) for c in plan.children())
        if isinstance(plan, Join):
            result = None
            for child in plan.children():
                rows = self.cardinality(child)
                if result is None:
                    result = rows
                else:
                    result = result * rows * self.stats.join_selectivity
            return result or 0.0
        raise TypeError(f"unknown plan node {type(plan).__name__}")

    # ------------------------------------------------------------------
    # plan cost (all intermediate results shipped to one coordinator)
    # ------------------------------------------------------------------
    def plan_cost(self, plan: PlanNode, coordinator: str) -> CostEstimate:
        """Cost of executing a plan with every scan result shipped to
        ``coordinator`` and every inner operator evaluated there
        (the data-shipping baseline; shipping decisions refine this in
        :mod:`repro.core.shipping`).
        """
        bytes_shipped = 0.0
        messages = 0
        time = 0.0
        for node in plan.walk():
            if not isinstance(node, Scan):
                continue
            rows = self.scan_cardinality(node)
            payload = rows * self.stats.row_bytes
            link = self.stats.link_cost(node.peer_id, coordinator)
            bytes_shipped += payload
            messages += 2  # subplan out + results back
            transfer = (payload + CONTROL_MESSAGE_BYTES) * link
            processing = rows * 0.001 * self.stats.load_factor(node.peer_id)
            time = max(time, transfer + processing)  # scans run in parallel
        join_rows = self.cardinality(plan)
        time += join_rows * 0.001 * self.stats.load_factor(coordinator)
        return CostEstimate(bytes_shipped, messages, time)

    def max_intermediate_rows(self, plan: PlanNode) -> float:
        """The largest operator input anywhere in the plan.

        This is the quantity the paper's Figure 4 discussion targets:
        "pushing joins below the unions produces smaller intermediate
        results" — after distribution, no join consumes a full union.
        """
        largest = 0.0
        for node in plan.walk():
            for child in node.children():
                largest = max(largest, self.cardinality(child))
        return largest

    def intermediate_result_rows(self, plan: PlanNode) -> float:
        """Total rows crossing the network: sum over scan leaves.

        This is the quantity Figure 4's heuristic minimises ("pushing
        joins below the unions produces smaller intermediate results").
        """
        return sum(
            self.scan_cardinality(node)
            for node in plan.walk()
            if isinstance(node, Scan)
        )
