"""A property-bucket index over advertisements for fast routing.

Scanning every advertisement per query (the paper's pseudocode) is
O(#advertisements × #paths).  A super-peer serving a large SON instead
maintains buckets keyed by property URI — each advertisement filed
under every advertised property *and its superproperties*, the same
subsumption-closure trick the schema DHT uses — so routing touches only
the candidate advertisements of each path pattern and then applies the
precise ``isSubsumed`` check.  Results are identical to the exhaustive
scan (the closure makes the bucket lookup complete; the precise check
keeps it sound).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..rdf.schema import Schema
from ..rdf.terms import URI
from ..rql.pattern import QueryPattern
from ..rvl.active_schema import ActiveSchema
from .annotations import AnnotatedQueryPattern
from .routing import route_query


class RoutingIndex:
    """Incremental advertisement index for one SON.

    Args:
        schema: The community schema (supplies the subsumption closure).
    """

    def __init__(self, schema: Schema):
        self.schema = schema
        self._buckets: Dict[URI, Set[str]] = {}
        self._advertisements: Dict[str, ActiveSchema] = {}

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _keys_for(self, advertisement: ActiveSchema) -> Set[URI]:
        keys: Set[URI] = set()
        for path in advertisement:
            if self.schema.has_property(path.property):
                keys.update(self.schema.superproperties(path.property))
            else:
                keys.add(path.property)
        return keys

    def add(self, advertisement: ActiveSchema) -> None:
        """File (or refresh) one peer's advertisement."""
        peer_id = advertisement.peer_id
        if peer_id is None:
            raise ValueError("advertisement must carry a peer id")
        self.remove(peer_id)
        self._advertisements[peer_id] = advertisement
        for key in self._keys_for(advertisement):
            self._buckets.setdefault(key, set()).add(peer_id)

    def remove(self, peer_id: str) -> None:
        """Drop a departed peer."""
        advertisement = self._advertisements.pop(peer_id, None)
        if advertisement is None:
            return
        for key in self._keys_for(advertisement):
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(peer_id)
                if not bucket:
                    del self._buckets[key]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def candidates(self, prop: URI) -> List[ActiveSchema]:
        """Advertisements possibly relevant to a query on ``prop``."""
        peers = self._buckets.get(prop, set())
        return [self._advertisements[p] for p in sorted(peers)]

    def route(self, pattern: QueryPattern) -> AnnotatedQueryPattern:
        """Routing over bucket candidates only; result identical to the
        exhaustive :func:`~repro.core.routing.route_query` scan."""
        candidate_peers: Set[str] = set()
        for path_pattern in pattern:
            candidate_peers.update(
                self._buckets.get(path_pattern.schema_path.property, ())
            )
        candidates = [self._advertisements[p] for p in sorted(candidate_peers)]
        return route_query(pattern, candidates, self.schema)

    def advertisements(self) -> List[ActiveSchema]:
        """All filed advertisements, sorted by peer id."""
        return [self._advertisements[p] for p in sorted(self._advertisements)]

    def __len__(self) -> int:
        return len(self._advertisements)

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self._advertisements
