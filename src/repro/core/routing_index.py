"""A property-bucket index over advertisements for fast routing.

Scanning every advertisement per query (the paper's pseudocode) is
O(#advertisements × #paths).  A super-peer serving a large SON instead
maintains buckets keyed by property URI — each advertisement filed
under every advertised property *and its superproperties*, the same
subsumption-closure trick the schema DHT uses — so routing touches only
the candidate advertisements of each path pattern and then applies the
precise ``isSubsumed`` check.  Results are identical to the exhaustive
scan (the closure makes the bucket lookup complete; the precise check
keeps it sound).
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..rdf.schema import Schema
from ..rdf.terms import URI
from ..rql.pattern import QueryPattern
from ..rvl.active_schema import ActiveSchema
from .annotations import AnnotatedQueryPattern
from .routing import route_query


class RoutingIndex:
    """Incremental advertisement index for one SON.

    Args:
        schema: The community schema (supplies the subsumption closure).
        cache: A :class:`~repro.cache.routing_cache.RoutingCache` to
            layer over the index, or ``None`` to build one (the
            default).  Every registry mutation flows through
            :meth:`add` / :meth:`remove`, so the index can keep its
            cache coherent with scoped invalidation on its own.
        use_cache: Set False to run uncached (the ``--no-cache``
            escape hatch; also handy for benchmarking the cold path).
    """

    def __init__(
        self,
        schema: Schema,
        cache=None,
        use_cache: bool = True,
    ):
        self.schema = schema
        if cache is None and use_cache:
            from ..cache.routing_cache import RoutingCache

            cache = RoutingCache([schema])
        self.cache = cache
        self._buckets: Dict[URI, Set[str]] = {}
        self._advertisements: Dict[str, ActiveSchema] = {}

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _keys_for(self, advertisement: ActiveSchema) -> Set[URI]:
        keys: Set[URI] = set()
        for path in advertisement:
            if self.schema.has_property(path.property):
                keys.update(self.schema.superproperties(path.property))
            else:
                keys.add(path.property)
        return keys

    def add(self, advertisement: ActiveSchema) -> None:
        """File (or refresh) one peer's advertisement."""
        peer_id = advertisement.peer_id
        if peer_id is None:
            raise ValueError("advertisement must carry a peer id")
        previous = self._advertisements.get(peer_id)
        self._unfile(peer_id)
        self._advertisements[peer_id] = advertisement
        for key in self._keys_for(advertisement):
            self._buckets.setdefault(key, set()).add(peer_id)
        if self.cache is not None:
            self.cache.on_advertise(advertisement, previous)

    def remove(self, peer_id: str) -> None:
        """Drop a departed peer."""
        if peer_id not in self._advertisements:
            return
        self._unfile(peer_id)
        if self.cache is not None:
            self.cache.on_goodbye(peer_id)

    def _unfile(self, peer_id: str) -> None:
        advertisement = self._advertisements.pop(peer_id, None)
        if advertisement is None:
            return
        for key in self._keys_for(advertisement):
            bucket = self._buckets.get(key)
            if bucket is not None:
                bucket.discard(peer_id)
                if not bucket:
                    del self._buckets[key]

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def candidates(self, prop: URI) -> List[ActiveSchema]:
        """Advertisements possibly relevant to a query on ``prop``."""
        peers = self._buckets.get(prop, set())
        return [self._advertisements[p] for p in sorted(peers)]

    def route(self, pattern: QueryPattern) -> AnnotatedQueryPattern:
        """Routing over bucket candidates only; result identical to the
        exhaustive :func:`~repro.core.routing.route_query` scan.

        With a cache attached, a repeated (or alpha-renamed) pattern is
        answered from the cache; unanswerable patterns — including the
        empty-registry case — are cached negatively and revived by the
        next relevant :meth:`add`.
        """
        if self.cache is not None:
            cached = self.cache.get(pattern)
            if cached is not None:
                return cached
        candidate_peers: Set[str] = set()
        for path_pattern in pattern:
            candidate_peers.update(
                self._buckets.get(path_pattern.schema_path.property, ())
            )
        candidates = [self._advertisements[p] for p in sorted(candidate_peers)]
        annotated = route_query(pattern, candidates, self.schema)
        if self.cache is not None:
            self.cache.put(pattern, annotated)
        return annotated

    def advertisements(self) -> List[ActiveSchema]:
        """All filed advertisements, sorted by peer id."""
        return [self._advertisements[p] for p in sorted(self._advertisements)]

    def __len__(self) -> int:
        return len(self._advertisements)

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self._advertisements
