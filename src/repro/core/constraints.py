"""Query constraints: the completeness/load trade-off (paper Section 5).

The paper's future work proposes "to study the trade-off between result
completeness and processing load using the concepts of Top N (or
Bottom N) queries" and "constraints regarding the number of peer nodes
that each query is broadcasted and further processed".
:class:`QueryConstraints` captures both knobs:

* ``max_peers_per_pattern`` — bound the horizontal distribution: only
  the first K relevant peers per path pattern are contacted (exact
  advertisement matches are preferred over subsumption matches, then
  peers with the smallest estimated results);
* ``max_results`` (+ ``order_by``/``descending``) — Top-N or Bottom-N:
  the coordinator orders the answer by a projected variable and keeps
  the first N rows.
"""

from __future__ import annotations

from typing import Optional

from ..rdf.terms import Literal
from ..rql.bindings import BindingTable
from .annotations import AnnotatedQueryPattern
from .cost import Statistics


class QueryConstraints:
    """Broadcast and result-size bounds for one query.

    Attributes:
        max_peers_per_pattern: Contact at most this many peers per path
            pattern (``None`` = all relevant peers — full completeness).
        max_results: Return at most this many answer rows (``None`` =
            all).
        order_by: Order the answer by this variable before applying
            ``max_results`` (Top-N when descending, Bottom-N otherwise).
        descending: Sort direction for ``order_by``.
    """

    __slots__ = ("max_peers_per_pattern", "max_results", "order_by", "descending")

    def __init__(
        self,
        max_peers_per_pattern: Optional[int] = None,
        max_results: Optional[int] = None,
        order_by: Optional[str] = None,
        descending: bool = False,
    ):
        if max_peers_per_pattern is not None and max_peers_per_pattern < 1:
            raise ValueError("max_peers_per_pattern must be >= 1")
        if max_results is not None and max_results < 1:
            raise ValueError("max_results must be >= 1")
        object.__setattr__(self, "max_peers_per_pattern", max_peers_per_pattern)
        object.__setattr__(self, "max_results", max_results)
        object.__setattr__(self, "order_by", order_by)
        object.__setattr__(self, "descending", bool(descending))

    def __setattr__(self, name, val):
        raise AttributeError("QueryConstraints is immutable")

    def is_unconstrained(self) -> bool:
        return (
            self.max_peers_per_pattern is None
            and self.max_results is None
            and self.order_by is None
        )

    def apply_result_bounds(self, table: BindingTable) -> BindingTable:
        """Order (when requested) and truncate (when bounded) a final
        answer table."""
        result = table
        if self.order_by is not None and self.order_by in result.columns:
            index = result.column_index(self.order_by)

            def sort_key(row):
                term = row[index]
                if isinstance(term, Literal):
                    value = term.to_python()
                    # sort numbers before strings, each consistently
                    if isinstance(value, (int, float)) and not isinstance(value, bool):
                        return (0, value, "")
                    return (1, 0, str(value))
                return (2, 0, term.n3())

            ordered = sorted(result.rows, key=sort_key, reverse=self.descending)
            result = BindingTable(result.columns, ordered)
        if self.max_results is not None and len(result) > self.max_results:
            result = BindingTable(result.columns, result.rows[: self.max_results])
        return result

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, QueryConstraints)
            and self.max_peers_per_pattern == other.max_peers_per_pattern
            and self.max_results == other.max_results
            and self.order_by == other.order_by
            and self.descending == other.descending
        )

    def __hash__(self) -> int:
        return hash(
            (self.max_peers_per_pattern, self.max_results, self.order_by, self.descending)
        )

    def __repr__(self) -> str:
        return (
            f"QueryConstraints(max_peers_per_pattern={self.max_peers_per_pattern}, "
            f"max_results={self.max_results}, order_by={self.order_by!r}, "
            f"descending={self.descending})"
        )


#: No bounds: contact every relevant peer, return every answer.
UNCONSTRAINED = QueryConstraints()


def apply_peer_bound(
    annotated: AnnotatedQueryPattern,
    constraints: QueryConstraints,
    statistics: Optional[Statistics] = None,
) -> AnnotatedQueryPattern:
    """Trim each pattern's annotations to the broadcast bound.

    Peers are ranked exact-match first (an exact advertisement is the
    most likely to answer in full), then by estimated result size
    descending (bigger expected contributions first — favouring
    completeness per contacted peer), then by id for determinism.
    """
    bound = constraints.max_peers_per_pattern
    if bound is None:
        return annotated
    trimmed = AnnotatedQueryPattern(annotated.query_pattern)
    for pattern in annotated.query_pattern:
        candidates = list(annotated.annotations(pattern))

        def rank(annotation):
            rows = 0.0
            if statistics is not None:
                rows = statistics.cardinality(
                    annotation.peer_id, pattern.schema_path.property
                )
            return (not annotation.exact, -rows, annotation.peer_id)

        for annotation in sorted(candidates, key=rank)[:bound]:
            trimmed.annotate(pattern, annotation)
    return trimmed
