"""The SQPeer Query-Processing Algorithm (paper Section 2.4).

Pseudocode from the paper::

    Input:  an annotated query pattern AQ and current path pattern PP
            (initially the root)
    Output: a query plan QP
    1. QP := ∅
    2. P  := peers annotating PP in AQ
    3. if P = ∅:  QP := PP@?
       else:      QP := union over P_x of PP@P_x   -- horizontal
    4. for all PP_i in children(PP):
         TP_i := recurse(PP_i, AQ)
       QP := ⋈(QP, TP_1, ..., TP_n)                -- vertical
    5. return QP

Horizontal distribution (the unions) favours completeness — several
peers contribute valid answers; vertical distribution (the joins)
ensures correctness — every path pattern of the query is covered.
"""

from __future__ import annotations

from typing import Optional

from ..rql.pattern import PathPattern
from .algebra import Hole, PlanNode, Scan, join_of, union_of
from .annotations import AnnotatedQueryPattern


def build_plan(
    annotated: AnnotatedQueryPattern, pattern: Optional[PathPattern] = None
) -> PlanNode:
    """Generate the query plan for an annotated query pattern.

    Follows the paper's recursion over the pattern tree: at each path
    pattern, union the scans of its annotated peers (or emit a hole),
    then join with the plans of its children.

    Args:
        annotated: The routing algorithm's output.
        pattern: The current path pattern; defaults to the root.

    Returns:
        The (unoptimised) plan — e.g. Figure 3's
        ``⋈(∪(Q1@P1, Q1@P2, Q1@P4), ∪(Q2@P1, Q2@P3, Q2@P4))``.
    """
    query_pattern = annotated.query_pattern
    pattern = pattern or query_pattern.root
    peers = annotated.peers_for(pattern)
    node: PlanNode
    if not peers:
        node = Hole(pattern)
    else:
        # each scan carries the subquery *rewritten for its peer* —
        # identical to the original for exact matches, class-narrowed
        # for subsumption matches, and in the remote vocabulary for
        # peers reached through a schema articulation (mediation)
        scans = []
        for peer_id in peers:
            rewritten = annotated.rewritten_for(pattern, peer_id) or pattern
            scans.append(Scan((rewritten,), peer_id))
        node = union_of(scans)
    subplans = [build_plan(annotated, child) for child in query_pattern.children(pattern)]
    if subplans:
        return join_of([node] + subplans)
    return node


def plan_is_executable(plan: PlanNode) -> bool:
    """True when every leaf names a concrete peer (no holes)."""
    return plan.is_complete()
