"""The SQPeer Query-Routing Algorithm (paper Section 2.3).

Pseudocode from the paper::

    Input:  a query pattern AQ
    Output: an annotated query pattern AQ'
    1. AQ' := empty annotations for AQ
    2. for all query path patterns AQ_i in AQ:
         for all active-schemas AS_j:
           for all active-schema path patterns AS_jk in AS_j:
             if isSubsumed(AS_jk, AQ_i):
               annotate AQ'_i with peer P_j
    3. return AQ'

The implementation additionally records, per annotation, the subquery
rewritten for that peer (the "rewrite accordingly the query sent to a
peer" step the paper delegates to SWIM).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..errors import RoutingError
from ..rdf.schema import Schema
from ..rql.pattern import QueryPattern
from ..rvl.active_schema import ActiveSchema
from ..subsumption.checker import is_subsumed
from ..subsumption.rewriter import rewrite_for_peer
from .annotations import AnnotatedQueryPattern, PeerAnnotation


def route_query(
    query_pattern: QueryPattern,
    advertisements: Iterable[ActiveSchema],
    schema: Optional[Schema] = None,
) -> AnnotatedQueryPattern:
    """Annotate each path pattern with the peers able to answer it.

    Args:
        query_pattern: The semantic pattern of the query.
        advertisements: The active-schemas known to the routing peer
            (all of a SON's at a super-peer; the neighbourhood's at an
            ad-hoc peer).  Each must carry a ``peer_id``.
        schema: The community schema; defaults to the query pattern's.

    Returns:
        The annotated query pattern.  Patterns no advertisement can
        answer stay unannotated and later become plan holes.

    Raises:
        RoutingError: If an advertisement lacks a peer id or commits to
            a different community schema.
    """
    schema = schema or query_pattern.schema
    annotated = AnnotatedQueryPattern(query_pattern)
    advertisements = list(advertisements)
    if not advertisements:
        # nothing to annotate: skip the subsumption loop entirely (the
        # common churn/negative case; callers cache the empty answer)
        return annotated
    for pattern in query_pattern:
        for advertisement in advertisements:
            if advertisement.peer_id is None:
                raise RoutingError("advertisement without peer id cannot be routed to")
            if advertisement.schema_uri != schema.namespace.uri:
                # different SON: irrelevant by construction
                continue
            if not any(
                is_subsumed(path, pattern.schema_path, schema) for path in advertisement
            ):
                continue
            rewritten = rewrite_for_peer(pattern, advertisement, schema)
            if rewritten is None:
                continue
            annotated.annotate(
                pattern,
                PeerAnnotation(
                    peer_id=advertisement.peer_id,
                    rewritten=rewritten,
                    exact=rewritten.schema_path == pattern.schema_path,
                ),
            )
    return annotated
