"""SQPeer's core: routing, planning, optimisation, shipping, adaptivity."""

from .algebra import (
    Hole,
    Join,
    PlanNode,
    Scan,
    Union,
    count_scans,
    depth,
    flatten,
    join_of,
    substitute_hole,
    union_of,
)
from .annotations import AnnotatedQueryPattern, PeerAnnotation
from .adaptivity import ChannelMonitor, ReplanResult, replan
from .constraints import QueryConstraints, UNCONSTRAINED, apply_peer_bound
from .cost import CostEstimate, CostModel, Statistics
from .optimizer import (
    OptimizationTrace,
    distribute_joins_over_unions,
    merge_same_peer_scans,
    optimize,
)
from .planning import build_plan, plan_is_executable
from .routing import route_query
from .shipping import (
    ShippingPolicy,
    SiteAssignment,
    assign_sites,
    compare_policies,
)

__all__ = [
    "AnnotatedQueryPattern",
    "ChannelMonitor",
    "CostEstimate",
    "CostModel",
    "Hole",
    "Join",
    "OptimizationTrace",
    "PeerAnnotation",
    "PlanNode",
    "QueryConstraints",
    "UNCONSTRAINED",
    "apply_peer_bound",
    "ReplanResult",
    "Scan",
    "ShippingPolicy",
    "SiteAssignment",
    "Statistics",
    "Union",
    "assign_sites",
    "build_plan",
    "compare_policies",
    "count_scans",
    "depth",
    "distribute_joins_over_unions",
    "flatten",
    "join_of",
    "merge_same_peer_scans",
    "optimize",
    "plan_is_executable",
    "replan",
    "route_query",
    "substitute_hole",
    "union_of",
]
