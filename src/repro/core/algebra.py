"""The distributed query plan algebra (paper Sections 2.4–2.5).

Plans are immutable trees over four node kinds:

* :class:`Scan` — ``Q1@P2``: one or more path patterns evaluated at a
  single peer (a composite scan ``(Q1∪Q2)@P1`` is what Transformation
  Rules 1/2 produce);
* :class:`Hole` — ``Q1@?``: a path pattern with no known relevant peer,
  to be filled by another peer (ad-hoc architecture, Section 3.2);
* :class:`Union` — horizontal distribution (several peers answer the
  same pattern);
* :class:`Join` — vertical distribution (successive patterns joined on
  shared variables).

The pretty-printer reproduces the paper's notation so bench output can
be compared against Figures 3, 4 and 7 textually.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Set, Tuple

from ..errors import PlanningError
from ..rql.pattern import PathPattern

JOIN_SYMBOL = "⋈"
UNION_SYMBOL = "∪"
HOLE_MARK = "?"


class PlanNode:
    """Abstract base of plan tree nodes."""

    __slots__ = ()

    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def patterns(self) -> Tuple[PathPattern, ...]:
        """Every path pattern referenced below this node."""
        out = []
        for child in self.children():
            out.extend(child.patterns())
        return tuple(out)

    def peers(self) -> Set[str]:
        """Every peer id referenced below this node."""
        out: Set[str] = set()
        for child in self.children():
            out |= child.peers()
        return out

    def holes(self) -> Tuple["Hole", ...]:
        """Every hole below this node, in left-to-right order."""
        out = []
        for child in self.children():
            out.extend(child.holes())
        return tuple(out)

    def is_complete(self) -> bool:
        """True when the plan contains no holes (Section 3.1's notion of
        a complete query plan)."""
        return not self.holes()

    def variables(self) -> Tuple[str, ...]:
        seen = []
        for pattern in self.patterns():
            for var in pattern.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()

    def render(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.render()})"


class Scan(PlanNode):
    """One or more path patterns evaluated at one peer: ``(Q1∪Q2)@P1``.

    A multi-pattern scan is executed as a single subquery at the peer —
    the peer joins the patterns locally — which is exactly the effect
    of the paper's Transformation Rules 1 and 2.
    """

    __slots__ = ("_patterns", "peer_id")

    def __init__(self, patterns: Sequence[PathPattern], peer_id: str):
        if not patterns:
            raise PlanningError("a scan needs at least one path pattern")
        if not peer_id:
            raise PlanningError("a scan needs a peer id (use Hole for unknown peers)")
        object.__setattr__(self, "_patterns", tuple(patterns))
        object.__setattr__(self, "peer_id", peer_id)

    def __setattr__(self, name, val):
        raise AttributeError("Scan is immutable")

    def patterns(self) -> Tuple[PathPattern, ...]:
        return self._patterns

    def peers(self) -> Set[str]:
        return {self.peer_id}

    def labels(self) -> str:
        return UNION_SYMBOL.join(p.label for p in self._patterns)

    def render(self) -> str:
        if len(self._patterns) == 1:
            return f"{self._patterns[0].label}@{self.peer_id}"
        return f"({self.labels()})@{self.peer_id}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Scan)
            and self._patterns == other._patterns
            and self.peer_id == other.peer_id
        )

    def __hash__(self) -> int:
        return hash(("Scan", self._patterns, self.peer_id))


class Hole(PlanNode):
    """A path pattern with no known relevant peer: ``Q2@?``."""

    __slots__ = ("pattern",)

    def __init__(self, pattern: PathPattern):
        object.__setattr__(self, "pattern", pattern)

    def __setattr__(self, name, val):
        raise AttributeError("Hole is immutable")

    def patterns(self) -> Tuple[PathPattern, ...]:
        return (self.pattern,)

    def holes(self) -> Tuple["Hole", ...]:
        return (self,)

    def render(self) -> str:
        return f"{self.pattern.label}@{HOLE_MARK}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Hole) and self.pattern == other.pattern

    def __hash__(self) -> int:
        return hash(("Hole", self.pattern))


class _Inner(PlanNode):
    """Shared implementation of the two n-ary inner node kinds."""

    __slots__ = ("_children",)

    _symbol = "?"

    def __init__(self, children: Sequence[PlanNode]):
        if len(children) < 1:
            raise PlanningError(f"{type(self).__name__} needs at least one input")
        for child in children:
            if not isinstance(child, PlanNode):
                raise PlanningError(f"not a plan node: {child!r}")
        object.__setattr__(self, "_children", tuple(children))

    def __setattr__(self, name, val):
        raise AttributeError("plan nodes are immutable")

    def children(self) -> Tuple[PlanNode, ...]:
        return self._children

    def render(self) -> str:
        inner = ", ".join(c.render() for c in self._children)
        return f"{self._symbol}({inner})"

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self._children == other._children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._children))


class Union(_Inner):
    """Horizontal distribution: bag union of sub-results (∪)."""

    __slots__ = ()
    _symbol = UNION_SYMBOL


class Join(_Inner):
    """Vertical distribution: natural join of sub-results (⋈)."""

    __slots__ = ()
    _symbol = JOIN_SYMBOL


def union_of(children: Sequence[PlanNode]) -> PlanNode:
    """A union, collapsed when there is a single input."""
    if len(children) == 1:
        return children[0]
    return Union(children)


def join_of(children: Sequence[PlanNode]) -> PlanNode:
    """A join, collapsed when there is a single input."""
    if len(children) == 1:
        return children[0]
    return Join(children)


def flatten(plan: PlanNode) -> PlanNode:
    """Flatten nested joins-under-joins and unions-under-unions.

    ``⋈(⋈(a, b), c)`` becomes ``⋈(a, b, c)``; likewise for unions.
    This normal form is what the transformation rules pattern-match on.
    """
    if isinstance(plan, (Scan, Hole)):
        return plan
    flat_children = []
    for child in plan.children():
        flat_child = flatten(child)
        if type(flat_child) is type(plan):
            flat_children.extend(flat_child.children())
        else:
            flat_children.append(flat_child)
    if isinstance(plan, Join):
        return join_of(flat_children)
    if isinstance(plan, Union):
        return union_of(flat_children)
    raise PlanningError(f"unknown plan node type {type(plan).__name__}")


def substitute_hole(plan: PlanNode, hole: Hole, replacement: PlanNode) -> PlanNode:
    """A copy of ``plan`` with one hole replaced (ad-hoc hole filling)."""
    if plan == hole:
        return replacement
    if isinstance(plan, (Scan, Hole)):
        return plan
    new_children = tuple(substitute_hole(c, hole, replacement) for c in plan.children())
    if isinstance(plan, Join):
        return Join(new_children)
    if isinstance(plan, Union):
        return Union(new_children)
    raise PlanningError(f"unknown plan node type {type(plan).__name__}")


def count_scans(plan: PlanNode) -> int:
    """The number of scan leaves = subqueries shipped to peers."""
    return sum(1 for node in plan.walk() if isinstance(node, Scan))


def depth(plan: PlanNode) -> int:
    """Height of the plan tree."""
    kids: Tuple[PlanNode, ...] = plan.children()
    if not kids:
        return 1
    return 1 + max(depth(c) for c in kids)
