"""The discrete-event transport: the simulator's original engine.

This is the event queue and virtual clock extracted verbatim from
``Network`` — same ``(time, seq, action)`` heap ordering, same
monotonic sequence counter — so every same-seed run is bit-identical to
the pre-seam behaviour: message order, metrics and traces do not move.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..errors import EventBudgetExhausted, NetworkError
from .base import Transport


class SimTransport(Transport):
    """Single-threaded heapq event loop on a virtual clock."""

    kind = "sim"

    def __init__(self):
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self.network = None

    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), action))

    def routes(self, dst: str) -> bool:
        return False  # everything in-sim lives in one process

    def transmit_remote(self, message) -> None:
        raise NetworkError(f"unknown destination {message.dst}")

    def run(self, max_events: int = 1_000_000, until: Optional[float] = None) -> int:
        """Process events in time order; returns the number processed.

        Raises:
            EventBudgetExhausted: If ``max_events`` is exhausted (a
                protocol loop that never quiesces is a bug, not a
                workload).  The exception's message and ``diagnostics``
                attribute describe what was still in flight.
        """
        processed = 0
        while self._queue:
            time, _, action = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self._now = time
            action()
            processed += 1
            if processed >= max_events:
                diagnostics = self._diagnostics()
                # late import: net.simulator imports this module
                from ..net.simulator import format_diagnostics

                raise EventBudgetExhausted(
                    f"event budget exhausted ({max_events} events)\n"
                    + format_diagnostics(diagnostics),
                    diagnostics,
                )
        return processed

    def _diagnostics(self) -> dict:
        if self.network is not None:
            return self.network.diagnostics()
        return {
            "now": self._now,
            "pending_events": len(self._queue),
            "oldest_pending_event_at": self._queue[0][0] if self._queue else None,
            "inflight_queries": [],
            "peers": {},
            "down_peers": [],
            "transport": self.kind,
        }

    def pending_events(self) -> int:
        return len(self._queue)

    def oldest_pending_at(self) -> Optional[float]:
        return self._queue[0][0] if self._queue else None
