"""Wire codec: every :class:`~repro.net.message.Message` payload kind
round-trips through tagged JSON.

The encoding is a small recursive scheme over JSON values:

* primitives (``str``/``int``/``float``/``bool``/``None``) pass through;
* tuples become ``{"$t": [...]}`` so they decode back as tuples (the
  protocol dataclasses are tuple-typed throughout);
* dicts with plain string keys encode as JSON objects, dicts with
  structured keys (e.g. a subplan's tree-path site map) become
  ``{"$d": [[key, value], ...]}``;
* registered protocol objects become ``{"$k": "ClassName", "f": {...}}``.

Decoding is forward-compatible: unknown keys inside an object's ``"f"``
field dict are ignored, so an old peer can read frames from a newer one
that added fields.  An unknown ``"$k"`` class tag, by contrast, is a
hard :class:`~repro.errors.CodecError` — there is no safe way to invent
a payload type.

Message envelopes encode ``src``/``dst``/``size``/``trace``/``payload``
but deliberately *not* the local monotonic ``id`` — like trace metadata
it is process-local bookkeeping, and dropping it makes the encoding
canonical (re-encoding a decoded message is byte-identical).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Callable, Dict, Tuple, Type

from ..channels.packets import (
    ChangePlanPacket,
    DataPacket,
    DictionaryPacket,
    StatsPacket,
    SubPlanPacket,
)
from ..core.algebra import Hole, Join, Scan, Union
from ..core.annotations import AnnotatedQueryPattern, PeerAnnotation
from ..core.cost import StatSummary
from ..execution.encoded import EncodedTable
from ..errors import CodecError
from ..livedata.updates import (
    AdvertiseDelta,
    ContinuousCancel,
    ContinuousSubscribe,
    ContinuousUpdate,
    DeleteTriple,
    InsertTriple,
    RedefineViews,
    RefreshStanding,
    UpdateAck,
    UpdateBatch,
)
from ..net.message import DeliveryFailure, Message
from ..obs.span import TraceContext
from ..peers.churn import Goodbye
from ..peers.protocol import (
    Advertise,
    AdvertisementReply,
    AdvertisementRequest,
    DelegatedResult,
    PartialPlan,
    QueryResult,
    QueryShed,
    QuerySubmit,
    RouteBusy,
    RouteReply,
    RouteRequest,
)
from ..rdf.schema import Schema
from ..rdf.terms import BNode, Literal, Namespace, URI, Variable
from ..rdf.triple import Triple
from ..resilience.detector import Heartbeat
from ..resilience.partial import Coverage
from ..rql.bindings import BindingTable
from ..rql.pattern import PathPattern, QueryPattern, SchemaPath
from ..rvl.active_schema import ActiveSchema

_ENCODERS: Dict[Type, Tuple[str, Callable[[Any], dict]]] = {}
_DECODERS: Dict[str, Callable[[dict], Any]] = {}


def _register(cls: Type, encode: Callable[[Any], dict], decode: Callable[[dict], Any]):
    _ENCODERS[cls] = (cls.__name__, encode)
    _DECODERS[cls.__name__] = decode


def _register_dataclass(cls: Type) -> None:
    names = [f.name for f in dataclasses.fields(cls)]

    def encode(obj) -> dict:
        return {name: _encode(getattr(obj, name)) for name in names}

    def decode(fields: dict):
        return cls(**{name: _decode(fields[name]) for name in names if name in fields})

    _register(cls, encode, decode)


# ----------------------------------------------------------------------
# generic value encoding
# ----------------------------------------------------------------------
def _encode(value: Any) -> Any:
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    registered = _ENCODERS.get(type(value))
    if registered is not None:
        name, encode = registered
        return {"$k": name, "f": encode(value)}
    if isinstance(value, tuple):  # after the registry: TraceContext is a tuple
        return {"$t": [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) and not k.startswith("$") for k in value):
            return {k: _encode(v) for k, v in value.items()}
        return {"$d": [[_encode(k), _encode(v)] for k, v in value.items()]}
    raise CodecError(f"cannot encode {type(value).__name__}: {value!r}")


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if "$k" in value:
            decoder = _DECODERS.get(value["$k"])
            if decoder is None:
                raise CodecError(f"unknown payload class {value['$k']!r}")
            return decoder(value.get("f", {}))
        if "$t" in value:
            return tuple(_decode(v) for v in value["$t"])
        if "$d" in value:
            return {_decode(k): _decode(v) for k, v in value["$d"]}
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


def encode_payload(payload: Any) -> dict:
    """Encode one protocol payload object to a JSON-compatible value."""
    encoded = _encode(payload)
    if not (isinstance(encoded, dict) and "$k" in encoded):
        raise CodecError(f"not a registered payload type: {type(payload).__name__}")
    return encoded


def decode_payload(value: dict) -> Any:
    """Rebuild a payload object from :func:`encode_payload` output."""
    return _decode(value)


# ----------------------------------------------------------------------
# message envelopes and frames
# ----------------------------------------------------------------------
def encode_message(message: Message) -> dict:
    """Encode a message envelope (payload, addressing, size, trace).

    The local ``id`` is not encoded; the decoded message draws a fresh
    one from the receiving process's counter.
    """
    return {
        "src": message.src,
        "dst": message.dst,
        "size": message.size,
        "trace": _encode(message.trace),
        "payload": encode_payload(message.payload),
    }


def decode_message(fields: dict) -> Message:
    """Rebuild a :class:`Message` (unknown envelope keys are ignored)."""
    return Message(
        fields["src"],
        fields["dst"],
        decode_payload(fields["payload"]),
        size=fields.get("size"),
        trace=_decode(fields.get("trace")),
    )


def encode_frame(kind: str, body: dict) -> bytes:
    """Serialise one wire frame body (sans length prefix) as JSON."""
    return json.dumps({"kind": kind, "body": body}, separators=(",", ":")).encode()


def decode_frame(data: bytes) -> Tuple[str, dict]:
    """Parse a frame; returns ``(kind, body)``, ignoring unknown keys."""
    try:
        parsed = json.loads(data.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise CodecError(f"malformed frame: {exc}") from None
    if not isinstance(parsed, dict) or "kind" not in parsed:
        raise CodecError("frame missing 'kind'")
    return parsed["kind"], parsed.get("body", {})


# ----------------------------------------------------------------------
# registry: RDF terms
# ----------------------------------------------------------------------
_register(URI, lambda u: {"value": u.value}, lambda f: URI(f["value"]))
_register(BNode, lambda b: {"id": b.id}, lambda f: BNode(f["id"]))
_register(Variable, lambda v: {"name": v.name}, lambda f: Variable(f["name"]))
_register(
    Triple,
    lambda t: {
        "subject": _encode(t.subject),
        "predicate": _encode(t.predicate),
        "object": _encode(t.object),
    },
    lambda f: Triple(_decode(f["subject"]), _decode(f["predicate"]), _decode(f["object"])),
)
_register(
    Literal,
    lambda l: {
        "lexical": l.lexical,
        "datatype": _encode(l.datatype),
        "language": l.language,
    },
    lambda f: Literal(
        f["lexical"],
        datatype=_decode(f.get("datatype")),
        language=f.get("language"),
    ),
)


# ----------------------------------------------------------------------
# registry: schema and query patterns
# ----------------------------------------------------------------------
def _encode_schema(schema: Schema) -> dict:
    return {
        "uri": schema.namespace.uri,
        "name": schema.name,
        "classes": sorted(c.value for c in schema.classes),
        "properties": sorted(
            [p.uri.value, p.domain.value, p.range.value] for p in schema
        ),
        "subclass": sorted(
            [child.value, parent.value]
            for child in schema.classes
            for parent in schema._super_classes.get(child, ())
        ),
        "subproperty": sorted(
            [child.value, parent.value]
            for child in schema.properties
            for parent in schema._super_properties.get(child, ())
        ),
    }


def _decode_schema(fields: dict) -> Schema:
    schema = Schema(Namespace(fields["uri"]), fields.get("name", ""))
    for cls in fields.get("classes", []):
        schema.add_class(URI(cls))
    for prop, domain, range_ in fields.get("properties", []):
        schema.add_property(URI(prop), URI(domain), URI(range_))
    for child, parent in fields.get("subclass", []):
        schema.add_subclass(URI(child), URI(parent))
    for child, parent in fields.get("subproperty", []):
        schema.add_subproperty(URI(child), URI(parent))
    return schema


_register(Schema, _encode_schema, _decode_schema)
_register(
    SchemaPath,
    lambda p: {
        "domain": _encode(p.domain),
        "property": _encode(p.property),
        "range": _encode(p.range),
    },
    lambda f: SchemaPath(_decode(f["domain"]), _decode(f["property"]), _decode(f["range"])),
)
_register(
    PathPattern,
    lambda p: {
        "label": p.label,
        "schema_path": _encode(p.schema_path),
        "subject_var": p.subject_var,
        "object_var": p.object_var,
        "projected": _encode(p.projected),
    },
    lambda f: PathPattern(
        f["label"],
        _decode(f["schema_path"]),
        f.get("subject_var"),
        f.get("object_var"),
        _decode(f.get("projected", {"$t": []})),
    ),
)
_register(
    QueryPattern,
    lambda q: {
        "patterns": [_encode(p) for p in q.patterns],
        "projections": _encode(q.projections),
        "schema": _encode(q.schema),
    },
    lambda f: QueryPattern(
        [_decode(p) for p in f["patterns"]],
        _decode(f["projections"]),
        _decode(f["schema"]),
    ),
)


# ----------------------------------------------------------------------
# registry: annotations, advertisements, plans, bindings
# ----------------------------------------------------------------------
_register(
    PeerAnnotation,
    lambda a: {
        "peer_id": a.peer_id,
        "rewritten": _encode(a.rewritten),
        "exact": a.exact,
    },
    lambda f: PeerAnnotation(f["peer_id"], _decode(f["rewritten"]), f["exact"]),
)


def _encode_annotated(annotated: AnnotatedQueryPattern) -> dict:
    entries = []
    for index, pattern in enumerate(annotated.query_pattern.patterns):
        annotations = annotated.annotations(pattern)
        if annotations:
            entries.append([index, [_encode(a) for a in annotations]])
    return {"query_pattern": _encode(annotated.query_pattern), "annotated": entries}


def _decode_annotated(fields: dict) -> AnnotatedQueryPattern:
    pattern = _decode(fields["query_pattern"])
    annotated = AnnotatedQueryPattern(pattern)
    for index, annotations in fields.get("annotated", []):
        annotated.extend_trusted(
            pattern.patterns[index], [_decode(a) for a in annotations]
        )
    return annotated


_register(AnnotatedQueryPattern, _encode_annotated, _decode_annotated)
_register(
    ActiveSchema,
    lambda s: s.to_dict(),
    lambda f: ActiveSchema.from_dict(f),
)
_register(
    BindingTable,
    lambda t: {
        "columns": list(t.columns),
        "rows": [[_encode(term) for term in row] for row in t.rows],
    },
    lambda f: BindingTable(
        f["columns"], [tuple(_decode(t) for t in row) for row in f.get("rows", [])]
    ),
)
_register(
    Scan,
    lambda s: {"patterns": [_encode(p) for p in s.patterns()], "peer_id": s.peer_id},
    lambda f: Scan([_decode(p) for p in f["patterns"]], f["peer_id"]),
)
_register(
    Hole,
    lambda h: {"pattern": _encode(h.pattern)},
    lambda f: Hole(_decode(f["pattern"])),
)
_register(
    Union,
    lambda u: {"children": [_encode(c) for c in u.children()]},
    lambda f: Union([_decode(c) for c in f["children"]]),
)
_register(
    Join,
    lambda j: {"children": [_encode(c) for c in j.children()]},
    lambda f: Join([_decode(c) for c in f["children"]]),
)


# ----------------------------------------------------------------------
# registry: control / resilience payloads
# ----------------------------------------------------------------------
_register(
    TraceContext,
    lambda t: {"trace_id": t.trace_id, "span_id": t.span_id},
    lambda f: TraceContext(f["trace_id"], f["span_id"]),
)
_register(
    Heartbeat,
    lambda h: {"sender": h.sender},
    lambda f: Heartbeat(f["sender"]),
)
_register(
    DeliveryFailure,
    lambda d: {"original": encode_message(d.original)},
    lambda f: DeliveryFailure(decode_message(f["original"])),
)

for _cls in (
    QuerySubmit,
    QueryResult,
    QueryShed,
    RouteBusy,
    RouteRequest,
    RouteReply,
    Advertise,
    AdvertisementRequest,
    AdvertisementReply,
    DelegatedResult,
    PartialPlan,
    SubPlanPacket,
    DataPacket,
    DictionaryPacket,
    EncodedTable,
    StatSummary,
    ChangePlanPacket,
    StatsPacket,
    Coverage,
    Goodbye,
    InsertTriple,
    DeleteTriple,
    RedefineViews,
    UpdateBatch,
    UpdateAck,
    AdvertiseDelta,
    ContinuousSubscribe,
    ContinuousUpdate,
    ContinuousCancel,
    RefreshStanding,
):
    _register_dataclass(_cls)
del _cls
