"""The transport seam under :class:`~repro.net.simulator.Network`.

A transport owns the two things a network substrate must provide — a
clock and a way to move a message toward a destination the local
process does not host — and nothing else.  Link modelling, metering,
fault injection and peer liveness stay in ``Network``; protocol code
above it is transport-agnostic.
"""

from __future__ import annotations

from typing import Callable, Optional


class Transport:
    """Abstract transport under a :class:`~repro.net.simulator.Network`.

    Attributes:
        kind: Short identifier surfaced in diagnostics and metrics
            labels (``"sim"``, ``"asyncio"``).
    """

    kind: str = "abstract"

    def bind(self, network) -> None:
        """Attach the owning network (called once, from ``Network``)."""
        self.network = network

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        """The transport's clock, in virtual-time units."""
        raise NotImplementedError

    # -- scheduling ----------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay`` virtual-time units."""
        raise NotImplementedError

    # -- remote addressing ---------------------------------------------
    def routes(self, dst: str) -> bool:
        """True when ``dst`` is reachable beyond the local process."""
        return False

    def transmit_remote(self, message) -> None:
        """Hand a message addressed beyond the local process to the
        wire.  Delivery failures must come back through
        ``network.bounce_remote(message)`` — the live analogue of the
        simulator's omniscient :class:`~repro.net.message.DeliveryFailure`
        bounces."""
        raise NotImplementedError

    # -- event loop ----------------------------------------------------
    def run(self, max_events: int, until: Optional[float]) -> int:
        """Drive the transport's event loop (semantics per transport)."""
        raise NotImplementedError

    def pending_events(self) -> int:
        return 0

    def on_register(self, node) -> None:
        """A node joined the local network (live transports announce it
        to the address book)."""

    def diagnostics_extra(self) -> dict:
        """Transport-specific keys merged into
        :meth:`~repro.net.simulator.Network.diagnostics` — e.g. open
        socket counts for live runs."""
        return {}
