"""Length-prefixed framing for the TCP transport.

Every frame on the wire is a 4-byte big-endian unsigned length followed
by that many bytes of UTF-8 JSON.  :class:`FrameReader` is a sans-io
incremental parser: feed it whatever chunk the socket produced and it
yields the complete frames buffered so far, keeping any partial frame
for the next feed.
"""

from __future__ import annotations

import struct
from typing import List

from ..errors import CodecError

_HEADER = struct.Struct(">I")

#: Frames larger than this are rejected — a corrupt length prefix must
#: not make the reader buffer gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def pack_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its 4-byte big-endian length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(payload)) + payload


class FrameReader:
    """Incremental decoder for length-prefixed frames."""

    def __init__(self):
        self._buffer = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                break
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise CodecError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                break
            frames.append(bytes(self._buffer[_HEADER.size : end]))
            del self._buffer[:end]
        return frames

    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)
