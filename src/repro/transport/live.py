"""The real-network transport: asyncio TCP with length-prefixed JSON.

One :class:`AsyncioTransport` serves one OS process.  It hosts that
process's local peers (registered on the owning
:class:`~repro.net.simulator.Network` exactly as in-sim), listens on a
TCP port, and moves messages addressed beyond the process over duplex
socket connections carrying :mod:`repro.transport.framing` frames.

Bootstrap follows the seed pattern: the first process (normally the
launcher) *is* the seed and owns the authoritative address book
(``node_id -> (host, port)``); every other process dials the seed on
startup, announces its local nodes with a ``hello`` frame, and receives
``book`` broadcasts as the membership changes.  Data connections are
then opened peer-process to peer-process on demand.

Time: protocol code above the seam thinks in virtual-time units
(latencies around tens of units).  The live transport maps one unit to
``time_scale`` real seconds, so retry policies, heartbeat intervals and
deadlines written for the simulator behave proportionally on the wire.

Failure semantics mirror the simulator's omniscient bounces: when a
destination process is unreachable (connect retries exhausted, governed
by a :class:`~repro.resilience.retry.RetryPolicy`) or unknown after a
grace period, every queued message is handed back through
``network.bounce_remote`` as a
:class:`~repro.net.message.DeliveryFailure` — the same signal a chaos
run produces in-sim, so channels replan and queries degrade to
coverage-annotated partial answers identically.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..errors import CodecError, NetworkError
from ..resilience.retry import RetryPolicy
from .base import Transport
from .codec import decode_frame, decode_message, encode_frame, encode_message
from .framing import FrameReader, pack_frame

Address = Tuple[str, int]

#: Default mapping of one virtual-time unit to real seconds.
DEFAULT_TIME_SCALE = 0.02

#: Default dial policy: ~4 quick attempts before messages bounce.
DEFAULT_DIAL_POLICY = RetryPolicy(
    max_attempts=4, base_timeout=8.0, backoff=2.0, max_timeout=64.0
)


class _Conn:
    """One outbound connection to a process address, with reconnect."""

    def __init__(self, transport: "AsyncioTransport", addr: Address):
        self.transport = transport
        self.addr = addr
        self.outbox: Deque[Tuple[bytes, Optional[object]]] = deque()
        self.kick = asyncio.Event()
        self.closed = False
        self.connected = False
        self.task = transport.loop.create_task(self._pump())

    def enqueue(self, frame: bytes, message=None) -> None:
        self.outbox.append((frame, message))
        self.kick.set()

    def close(self) -> None:
        self.closed = True
        self.kick.set()
        self.task.cancel()

    async def _pump(self) -> None:
        policy = self.transport.dial_policy.for_peer(f"{self.addr[0]}:{self.addr[1]}")
        attempt = 0
        while not self.closed:
            attempt += 1
            try:
                reader, writer = await asyncio.open_connection(*self.addr)
            except OSError:
                if not policy.attempts_left(attempt + 1):
                    self._give_up()
                    return
                await asyncio.sleep(policy.timeout(attempt) * self.transport.time_scale)
                continue
            attempt = 0
            self.connected = True
            writer.write(pack_frame(self.transport._hello_frame()))
            reader_task = self.transport.loop.create_task(
                self.transport._read_frames(reader, writer)
            )
            reader_task.add_done_callback(lambda _: self.kick.set())
            try:
                while not self.closed and not reader_task.done():
                    while self.outbox:
                        frame, _ = self.outbox[0]
                        writer.write(pack_frame(frame))
                        await writer.drain()
                        self.outbox.popleft()
                    self.kick.clear()
                    if self.outbox or reader_task.done():
                        continue
                    await self.kick.wait()
            except (ConnectionError, OSError):
                pass  # reconnect with the partially drained outbox
            finally:
                self.connected = False
                reader_task.cancel()
                writer.close()

    def _give_up(self) -> None:
        """Dial budget exhausted: bounce queued messages, forget the conn."""
        self.connected = False
        network = self.transport.network
        while self.outbox:
            _, message = self.outbox.popleft()
            if message is not None and network is not None:
                network.bounce_remote(message)
        self.transport._drop_conn(self)


class AsyncioTransport(Transport):
    """TCP transport for one process of a live deployment.

    Args:
        host: Interface to listen on.
        port: Listening port (0 picks a free one; see :attr:`address`
            after :meth:`start`).
        seed: ``(host, port)`` of the seed process, or ``None`` when
            this process *is* the seed and owns the address book.
        time_scale: Real seconds per virtual-time unit.
        dial_policy: Retry policy for dialing a process address before
            queued messages bounce.
        hold_unroutable: Virtual-time grace for messages to a node not
            yet in the address book (covers bootstrap races).
    """

    kind = "asyncio"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        seed: Optional[Address] = None,
        time_scale: float = DEFAULT_TIME_SCALE,
        dial_policy: Optional[RetryPolicy] = None,
        hold_unroutable: float = 50.0,
    ):
        self.host = host
        self.port = port
        self.seed = tuple(seed) if seed else None
        self.time_scale = time_scale
        self.dial_policy = dial_policy or DEFAULT_DIAL_POLICY
        self.hold_unroutable = hold_unroutable
        self.loop = asyncio.new_event_loop()
        self._epoch = self.loop.time()
        self.network = None
        self.book: Dict[str, Address] = {}
        self._conns: Dict[Address, _Conn] = {}
        self._inbound: List[asyncio.StreamWriter] = []
        self._held: Dict[str, List[object]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._local_nodes: List[str] = []
        self._started = False

    # ------------------------------------------------------------------
    # Transport surface
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return (self.loop.time() - self._epoch) / self.time_scale

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        self.loop.call_later(max(0.0, delay) * self.time_scale, action)

    def routes(self, dst: str) -> bool:
        return True  # optimistic: unknown nodes get the hold-then-bounce path

    def on_register(self, node) -> None:
        self._local_nodes.append(node.peer_id)
        if self.seed is None:
            self.book[node.peer_id] = self.address
            if self._started:
                self._broadcast_book()
        elif self._started:
            self._conn_for(self.seed).enqueue(self._hello_frame())

    def transmit_remote(self, message) -> None:
        addr = self.book.get(message.dst)
        if addr is None:
            self._held.setdefault(message.dst, []).append(message)
            self.schedule(self.hold_unroutable, lambda: self._expire_held(message))
            return
        frame = encode_frame("msg", encode_message(message))
        self._conn_for(addr).enqueue(frame, message)

    def run(self, max_events: int = 1_000_000, until: Optional[float] = None) -> int:
        """Drive the asyncio loop until the ``until`` virtual-time mark.

        Unlike the simulator there is no event budget to exhaust — real
        time, not an event count, bounds the run — so ``max_events`` is
        accepted for interface compatibility and ignored.
        """
        if until is None:
            raise NetworkError("the live transport needs a deadline (until=...)")
        self.start()
        remaining = (until - self.now) * self.time_scale
        if remaining > 0:
            self.loop.run_until_complete(asyncio.sleep(remaining))
        return 0

    def run_until(
        self, predicate: Callable[[], bool], timeout: float, poll: float = 5.0
    ) -> bool:
        """Run until ``predicate()`` holds or ``timeout`` virtual units pass."""
        deadline = self.now + timeout
        while not predicate():
            if self.now >= deadline:
                return predicate()
            self.run(until=min(self.now + poll, deadline))
        return True

    def pending_events(self) -> int:
        queued = sum(len(c.outbox) for c in self._conns.values())
        return queued + sum(len(held) for held in self._held.values())

    def diagnostics_extra(self) -> dict:
        open_sockets = sum(1 for c in self._conns.values() if c.connected)
        open_sockets += sum(1 for w in self._inbound if not w.is_closing())
        return {"open_sockets": open_sockets, "address_book_size": len(self.book)}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> Address:
        return (self.host, self.port)

    def start(self) -> Address:
        """Bind the server, join the seed; returns the bound address."""
        if self._started:
            return self.address
        self.loop.run_until_complete(self._start())
        self._started = True
        return self.address

    async def _start(self) -> None:
        self._server = await asyncio.start_server(
            self._accept, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        for node_id in self._local_nodes:
            if self.seed is None:
                self.book[node_id] = self.address
        if self.seed is not None:
            self._conn_for(self.seed).enqueue(self._hello_frame())

    def close(self) -> None:
        """Graceful leave: say bye, flush, tear everything down."""
        if not self._started:
            self.loop.close()
            return
        self.loop.run_until_complete(self._shutdown())
        self._started = False
        self.loop.close()

    async def _shutdown(self) -> None:
        bye = encode_frame("bye", {"nodes": list(self._local_nodes)})
        for conn in list(self._conns.values()):
            if conn.connected:
                conn.enqueue(bye)
        await asyncio.sleep(0.05)  # let writers drain the byes
        for conn in list(self._conns.values()):
            conn.close()
        for writer in self._inbound:
            writer.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.sleep(0)

    # ------------------------------------------------------------------
    # connections and frames
    # ------------------------------------------------------------------
    def _conn_for(self, addr: Address) -> _Conn:
        addr = tuple(addr)
        conn = self._conns.get(addr)
        if conn is None:
            conn = _Conn(self, addr)
            self._conns[addr] = conn
        return conn

    def _drop_conn(self, conn: _Conn) -> None:
        if self._conns.get(conn.addr) is conn:
            del self._conns[conn.addr]

    def _hello_frame(self) -> bytes:
        return encode_frame(
            "hello", {"nodes": list(self._local_nodes), "addr": list(self.address)}
        )

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._inbound.append(writer)
        try:
            await self._read_frames(reader, writer)
        finally:
            if writer in self._inbound:
                self._inbound.remove(writer)
            writer.close()

    async def _read_frames(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        frames = FrameReader()
        while True:
            try:
                chunk = await reader.read(64 * 1024)
            except (ConnectionError, OSError):
                return
            if not chunk:
                return
            try:
                for frame in frames.feed(chunk):
                    self._dispatch(*decode_frame(frame), writer=writer)
            except CodecError:
                return  # a corrupt stream is unrecoverable: drop the conn

    def _dispatch(self, kind: str, body: dict, writer: asyncio.StreamWriter) -> None:
        if kind == "msg":
            if self.network is not None:
                self.network.deliver_remote(decode_message(body))
        elif kind == "hello":
            addr = tuple(body.get("addr", ()))
            if len(addr) == 2:
                for node_id in body.get("nodes", []):
                    self.book[node_id] = addr
            self._flush_held()
            if self.seed is None:
                self._broadcast_book()
        elif kind == "book":
            for node_id, addr in body.get("book", {}).items():
                if node_id not in self._local_nodes:
                    self.book[node_id] = tuple(addr)
            self._flush_held()
        elif kind == "bye":
            for node_id in body.get("nodes", []):
                self.book.pop(node_id, None)
            if self.seed is None:
                self._broadcast_book()
        # unknown frame kinds are ignored: newer peers may send more

    def _broadcast_book(self) -> None:
        frame = pack_frame(
            encode_frame("book", {"book": {n: list(a) for n, a in self.book.items()}})
        )
        for writer in self._inbound:
            if not writer.is_closing():
                writer.write(frame)

    # ------------------------------------------------------------------
    # unroutable handling
    # ------------------------------------------------------------------
    def _flush_held(self) -> None:
        for dst in list(self._held):
            if dst in self.book:
                for message in self._held.pop(dst):
                    self.transmit_remote(message)

    def _expire_held(self, message) -> None:
        held = self._held.get(message.dst, [])
        if message in held:
            held.remove(message)
            if self.network is not None:
                self.network.bounce_remote(message)
