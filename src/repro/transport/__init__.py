"""Pluggable network transports.

Every layer above :class:`~repro.net.simulator.Network` — peers,
channels, resilience, the workload engine — talks to the network
through the same narrow surface: ``register``, ``send``, ``call_later``,
``now`` and ``run``.  This package extracts the part of that surface
that actually moves bytes and time into a :class:`Transport` seam, so
the exact same protocol code runs over either

* :class:`SimTransport` — the discrete-event engine the simulator has
  always used (virtual clock, heapq event loop, bit-identical to the
  pre-seam behaviour), or
* :class:`AsyncioTransport` — real length-prefixed JSON frames over
  localhost/LAN TCP sockets, one OS process per peer, with a seed-based
  address book, reconnect/backoff reusing
  :class:`~repro.resilience.retry.RetryPolicy`, and graceful
  join/leave.

The wire codec (:mod:`repro.transport.codec`) round-trips every
:class:`~repro.net.message.Message` payload kind — routing, channel
packets with binding batches, trace contexts, failure bounces — through
tagged JSON, ignoring unknown fields on decode so old peers interop
with newer ones.
"""

from __future__ import annotations

from .base import Transport
from .framing import FrameReader, pack_frame
from .sim import SimTransport

# The codec and live transport import the protocol modules (peers,
# channels, resilience) which themselves import the network layer —
# and ``net.simulator`` imports this package for the seam.  Loading
# them lazily keeps the package import cycle-free.
_LAZY = {
    "AsyncioTransport": ("live", "AsyncioTransport"),
    "encode_payload": ("codec", "encode_payload"),
    "decode_payload": ("codec", "decode_payload"),
    "encode_message": ("codec", "encode_message"),
    "decode_message": ("codec", "decode_message"),
    "encode_frame": ("codec", "encode_frame"),
    "decode_frame": ("codec", "decode_frame"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), attr)


__all__ = [
    "Transport",
    "SimTransport",
    "AsyncioTransport",
    "FrameReader",
    "pack_frame",
    "encode_payload",
    "decode_payload",
    "encode_message",
    "decode_message",
    "encode_frame",
    "decode_frame",
]
