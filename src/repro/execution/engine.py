"""Distributed plan execution over channels.

A :class:`PlanExecutor` runs one plan subtree *at one peer* (its
executor site).  Nodes sited at this peer are evaluated locally —
scans against the local base, joins/unions over gathered inputs —
while any subtree sited elsewhere is shipped over a channel as a
:class:`~repro.channels.packets.SubPlanPacket`; the destination peer
spins up its own executor recursively (that is how query shipping
pushes operators down, Figure 5 right).

Execution is event-driven and continuation-based: every child produces
its table asynchronously; a gather counter fires the combine step when
the last child arrives.  A peer failure anywhere below aborts the
executor once, reporting the failed peer so the query root can replan
(Section 2.5's run-time adaptation with ubQL discard semantics).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol

if TYPE_CHECKING:  # annotation only — imported lazily to avoid a cycle
    # (channels.manager uses execution.batch for stream assembly)
    from ..channels.manager import ChannelManager

from ..channels.packets import TreePath
from ..core.algebra import Hole, Join, PlanNode, Scan, Union
from ..errors import PlanningError
from ..net.simulator import Network
from ..obs.tracer import NULL_SPAN
from ..rql.bindings import BindingTable
from .batch import concat_tables
from .operators import (
    join_all,
    union_all,
    vjoin_all,
    vjoin_all_distinct,
    vunion_all,
    vunion_all_distinct,
)

#: Completion continuation: (result table or None, failed peer or None).
Completion = Callable[[Optional[BindingTable], Optional[str]], None]


class ExecutorHost(Protocol):
    """What a peer must provide to host plan executors."""

    peer_id: str
    channels: ChannelManager

    def local_scan(self, scan: Scan) -> BindingTable:
        """Evaluate a scan against the local base."""


class PlanExecutor:
    """Executes one plan subtree at one peer.

    Args:
        host: The hosting peer.
        network: The network for shipping remote subtrees.
        plan: The subtree to execute.
        sites: Execution sites keyed by tree path relative to ``plan``
            (missing inner paths default to this peer; missing scan
            paths default to the scan's own peer).
        query_id: The query this execution belongs to (tracing).
        on_complete: Called exactly once with the result or a failure.
        scan_cache: Optional scan-result cache shared across execution
            phases.  With the ubQL discard policy each attempt gets a
            fresh cache; the *phased* policy of [Ives02] passes the same
            mapping to the replanned execution so completed subresults
            are reused instead of re-shipped (the "cleanup phase"
            combines sub-results from earlier phases).
        retry: Ack/retransmit policy applied to every channel this
            executor opens (``None`` keeps fire-and-forget channels).
        trace: Parent :class:`~repro.obs.span.TraceContext`; the
            executor opens an ``execute`` span underneath it covering
            its whole lifetime, and every channel it ships stitches
            under that span.
    """

    def __init__(
        self,
        host: ExecutorHost,
        network: Network,
        plan: PlanNode,
        sites: Optional[Dict[TreePath, str]] = None,
        query_id: str = "",
        on_complete: Optional[Completion] = None,
        scan_cache: Optional[Dict[Scan, BindingTable]] = None,
        pipelined: bool = False,
        retry=None,
        trace=None,
        keep_variables: Optional[set] = None,
        early_stop: Optional[Callable[[BindingTable], bool]] = None,
    ):
        self.host = host
        self.network = network
        self.plan = plan
        self.sites = dict(sites or {})
        self.query_id = query_id
        self.on_complete = on_complete or (lambda table, failed: None)
        self.scan_cache = scan_cache
        self.pipelined = pipelined
        self.retry = retry
        self.trace = trace
        #: vectorized (batched, column-wise) operator evaluation; the
        #: hosting peer's ``--no-vectorize`` escape hatch flips this
        #: back to the seed's binding-at-a-time path
        self.vectorize = bool(getattr(host, "vectorize", True))
        #: dictionary-encoded pipeline: intermediates are id tables and
        #: the final answer is a distinct projection, so combines can
        #: de-duplicate eagerly (never on the seed-identical default)
        self.encoded = bool(getattr(host, "encode", False))
        #: the variables the plan's *consumer* needs (projections plus
        #: condition variables), set only by a coordinator that owns the
        #: whole query: encoded combines then prune dead columns, which
        #: is what keeps chain-join intermediates from exploding.  A
        #: serving peer never sets it — a shipped subplan's raw width is
        #: part of its contract with the root.
        self.keep_variables = keep_variables
        #: top-k early termination (pipelined mode only): called with
        #: the accumulated table after each emitted chunk; returning
        #: True completes with what arrived so far and discards the
        #: remaining channels through the ubQL change-plan path.  Only
        #: sound for monotone plans with order-insensitive consumers —
        #: the coordinator gates it on ``limit`` without ``order_by``.
        self.early_stop = early_stop
        self.span = NULL_SPAN
        #: virtual time of the first output rows (pipelined mode)
        self.first_output_at: Optional[float] = None
        self.reused_rows = 0
        self._finished = False
        self._open_channel_ids: List[str] = []

    def _defer(self, unit: Callable[[], None]) -> None:
        """Run a local work unit through the host's fair scheduler when
        one is installed (concurrent serving interleaves per-query CPU);
        immediately otherwise (the seed's synchronous path)."""
        schedule = getattr(self.host, "_schedule_work", None)
        if schedule is None:
            unit()
        else:
            schedule(self.query_id, unit)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin execution; completion arrives via ``on_complete``."""
        self.span = self.network.tracer.start_span(
            "execute",
            peer=self.host.peer_id,
            parent=self.trace,
            query=self.query_id,
            pipelined=self.pipelined,
        )
        if self.pipelined:
            self._start_pipelined()
        else:
            needed = (
                self.keep_variables
                if self.vectorize and self.encoded and self.keep_variables is not None
                else None
            )
            self._execute(self.plan, (), self._finish_ok, needed)

    def _start_pipelined(self) -> None:
        """Pipelined evaluation (Section 2.5's 'pipeline way'): stream
        remote chunks through incremental operators, recording the time
        the first output rows materialise."""
        accumulated: List[BindingTable] = []

        def emit(chunk: BindingTable) -> None:
            if chunk and self.first_output_at is None:
                self.first_output_at = self.network.now
            accumulated.append(chunk)
            if self.early_stop is not None and chunk and not self._finished:
                merged = concat_tables(accumulated)
                if self.early_stop(merged):
                    self.network.metrics.record_topk_cancel()
                    self.network.emit_event(
                        "topk_cancel",
                        peer=self.host.peer_id,
                        query_id=self.query_id,
                        channels=len(self._open_channel_ids),
                    )
                    self.span.set(topk_cancelled=True)
                    self._release_channels()
                    self._finish_ok(merged)

        def done() -> None:
            if self._finished:
                return
            if accumulated:
                # one column-aligned concatenation over all chunks —
                # linear in total rows, not quadratic per-chunk unions
                merged = concat_tables(accumulated)
            else:
                merged = BindingTable(self.plan.variables())
            self._finish_ok(merged)

        self._execute_pipelined(self.plan, (), emit, done)

    def abort(self) -> None:
        """Stop without completing.  Under the ubQL discard policy all
        in-flight channels are dropped; under the phased policy their
        late results are salvaged into the scan cache."""
        self._finished = True
        self.span.finish("aborted")
        self._release_channels()

    def _release_channels(self) -> None:
        from ..channels.channel import ChannelState
        from ..channels.packets import ChangePlanPacket
        from ..net.message import Message

        for channel_id in self._open_channel_ids:
            channel = self.host.channels.channel(channel_id)
            if self.scan_cache is not None and isinstance(channel.plan, Scan):
                # phased policy: keep collecting into the cache
                self.host.channels.redirect(
                    channel_id, self._cache_filler(channel.plan)
                )
                continue
            unfinished = channel.state is not ChannelState.CLOSED
            self.host.channels.discard(channel_id)
            if unfinished:
                # ubQL "changing plan" packet: tell the destination —
                # open or stalled alike — to terminate its on-going
                # computation for this channel
                self.network.send(
                    Message(
                        self.host.peer_id,
                        channel.destination,
                        ChangePlanPacket(channel_id, reason="plan changed"),
                    )
                )

    def _cache_filler(self, scan: Scan):
        def fill(table: Optional[BindingTable], failed: Optional[str]) -> None:
            if table is not None and self.scan_cache is not None:
                self.scan_cache[scan] = table

        return fill

    def _finish_ok(self, table: BindingTable) -> None:
        if not self._finished:
            self._finished = True
            self.span.set(rows=len(table), reused_rows=self.reused_rows)
            self.span.finish()
            self.on_complete(table, None)

    def _fail(self, failed_peer: str) -> None:
        if not self._finished:
            self._finished = True
            self.span.set(failed_peer=failed_peer)
            self.span.finish("failed")
            self._release_channels()
            self.on_complete(None, failed_peer)

    # ------------------------------------------------------------------
    # recursive execution
    # ------------------------------------------------------------------
    def _site_of(self, node: PlanNode, path: TreePath) -> str:
        site = self.sites.get(path)
        if site is not None and site != "?":
            return site
        if isinstance(node, Scan):
            return node.peer_id
        return self.host.peer_id

    def _execute(
        self,
        node: PlanNode,
        path: TreePath,
        k: Callable[[BindingTable], None],
        needed: Optional[set] = None,
    ) -> None:
        if isinstance(node, Hole):
            raise PlanningError(
                f"cannot execute a plan with hole {node.render()}; fill it first"
            )
        site = self._site_of(node, path)
        if site != self.host.peer_id:
            self._ship(node, path, site, k)
            return
        if isinstance(node, Scan):
            if node.peer_id == self.host.peer_id:

                def run_scan() -> None:
                    if not self._finished:
                        k(self.host.local_scan(node))

                self._defer(run_scan)
            else:
                self._ship(node, path, node.peer_id, k)
            return
        children = node.children()
        if self.vectorize and self.encoded:
            if isinstance(node, Union):
                combine = lambda tables: vunion_all_distinct(tables, needed)
            else:
                combine = lambda tables: vjoin_all_distinct(tables, needed)
        elif self.vectorize:
            combine = vunion_all if isinstance(node, Union) else vjoin_all
        else:
            combine = union_all if isinstance(node, Union) else join_all
        gather = _Gather(len(children), combine, k)
        child_vars = [set(child.variables()) for child in children]
        for index, child in enumerate(children):
            child_needed: Optional[set] = None
            if needed is not None:
                # what the rest of the query references: the consumer's
                # variables plus every sibling's (join keys included)
                child_needed = set(needed)
                for j, variables in enumerate(child_vars):
                    if j != index:
                        child_needed |= variables
            self._execute(child, path + (index,), gather.collector(index), child_needed)

    # ------------------------------------------------------------------
    # pipelined execution (Section 2.5's "pipeline way")
    # ------------------------------------------------------------------
    def _execute_pipelined(
        self,
        node: PlanNode,
        path: TreePath,
        emit: Callable[[BindingTable], None],
        done: Callable[[], None],
    ) -> None:
        from .pipeline import IncrementalUnion, JoinCascade

        if isinstance(node, Hole):
            raise PlanningError(
                f"cannot execute a plan with hole {node.render()}; fill it first"
            )
        if isinstance(node, Scan):
            if node.peer_id == self.host.peer_id:

                def run_scan() -> None:
                    if not self._finished:
                        emit(self.host.local_scan(node))
                        done()

                self._defer(run_scan)
            else:
                self._ship_pipelined(node, path, emit, done)
            return
        children = node.children()
        if isinstance(node, Union):
            union = IncrementalUnion(
                tuple(children[0].variables()), len(children), emit
            )

            def child_done() -> None:
                union.finish_one()
                if union.done:
                    done()

            for index, child in enumerate(children):
                self._execute_pipelined(child, path + (index,), union.feed, child_done)
            return
        if isinstance(node, Join):
            if len(children) == 1:
                self._execute_pipelined(children[0], path + (0,), emit, done)
                return
            cascade = JoinCascade(
                [tuple(child.variables()) for child in children], emit
            )

            def cascade_child_done(index: int) -> Callable[[], None]:
                def mark() -> None:
                    cascade.finish(index)
                    if cascade.done:
                        done()

                return mark

            for index, child in enumerate(children):
                self._execute_pipelined(
                    child,
                    path + (index,),
                    lambda chunk, i=index: cascade.feed(i, chunk),
                    cascade_child_done(index),
                )
            return
        raise PlanningError(f"unknown plan node {type(node).__name__}")

    def _ship_pipelined(
        self,
        node: PlanNode,
        path: TreePath,
        emit: Callable[[BindingTable], None],
        done: Callable[[], None],
    ) -> None:
        """Open a pipelined channel: chunks flow straight into ``emit``."""

        def on_channel(table: Optional[BindingTable], failed: Optional[str]) -> None:
            if self._finished:
                return
            if failed is not None:
                self._fail(failed)
            else:
                done()

        def on_progress(chunk: BindingTable) -> None:
            if not self._finished:
                emit(chunk)

        channel = self.host.channels.open(
            self.network,
            node.peer_id if isinstance(node, Scan) else self._site_of(node, path),
            node,
            on_channel,
            query_id=self.query_id,
            progress=on_progress,
            retry=self.retry,
            trace=self.span.context(),
        )
        self._open_channel_ids.append(channel.channel_id)

    def _ship(
        self,
        node: PlanNode,
        path: TreePath,
        site: str,
        k: Callable[[BindingTable], None],
    ) -> None:
        """Ship a subtree to its execution site over a fresh channel.

        Cached scan results from an earlier phase short-circuit the
        shipment entirely (phased execution policy).
        """
        if (
            self.scan_cache is not None
            and isinstance(node, Scan)
            and node in self.scan_cache
        ):
            cached = self.scan_cache[node]
            self.reused_rows += len(cached)
            k(cached)
            return
        sub_sites = {
            p[len(path):]: s
            for p, s in self.sites.items()
            if p[: len(path)] == path and p != path
        }

        def on_channel(table: Optional[BindingTable], failed: Optional[str]) -> None:
            if self._finished:
                return
            if failed is not None:
                self._fail(failed)
            else:
                assert table is not None
                if self.scan_cache is not None and isinstance(node, Scan):
                    self.scan_cache[node] = table
                k(table)

        channel = self.host.channels.open(
            self.network,
            site,
            node,
            on_channel,
            sites=sub_sites,
            query_id=self.query_id,
            retry=self.retry,
            trace=self.span.context(),
        )
        self._open_channel_ids.append(channel.channel_id)


class _Gather:
    """Counts down child completions, then combines their tables."""

    def __init__(
        self,
        count: int,
        combine: Callable[[List[BindingTable]], BindingTable],
        k: Callable[[BindingTable], None],
    ):
        self._pending = count
        self._results: List[Optional[BindingTable]] = [None] * count
        self._combine = combine
        self._k = k

    def collector(self, index: int) -> Callable[[BindingTable], None]:
        def collect(table: BindingTable) -> None:
            self._results[index] = table
            self._pending -= 1
            if self._pending == 0:
                tables = [t for t in self._results if t is not None]
                self._k(self._combine(tables))

        return collect
