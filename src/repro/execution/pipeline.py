"""Incremental (pipelined) operators over streamed binding chunks.

Section 2.5 credits the distributed plan shape with "the ability to
evaluate this plan in a pipeline way": with peers streaming result
chunks (``DataPacket(final=False)``), joins and unions can emit output
as soon as matching inputs meet, instead of blocking on complete
inputs.  The observable win is **time to first result**.

:class:`IncrementalHashJoin` is a symmetric hash join: every arriving
chunk probes the opposite side's hash table (emitting matches
immediately) and is then inserted into its own side.  N-ary joins
cascade binary stages; unions re-emit chunks aligned to canonical
column order.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import EvaluationError
from ..rql.bindings import BindingTable
from .batch import BindingBatch

#: Downstream consumer of emitted output chunks.
Emit = Callable[[BindingTable], None]


class IncrementalHashJoin:
    """A symmetric hash join over two chunk streams.

    Args:
        left_columns: Column names of the left input.
        right_columns: Column names of the right input.
        emit: Called with each non-empty output chunk.

    The output columns are ``left_columns`` followed by the right-only
    columns (same convention as :meth:`BindingTable.join`), so batch and
    pipelined evaluation produce identical tables.
    """

    def __init__(
        self,
        left_columns: Sequence[str],
        right_columns: Sequence[str],
        emit: Emit,
    ):
        self.left_columns = tuple(left_columns)
        self.right_columns = tuple(right_columns)
        self.shared = [c for c in self.left_columns if c in self.right_columns]
        right_only = [c for c in self.right_columns if c not in self.left_columns]
        self.out_columns: Tuple[str, ...] = self.left_columns + tuple(right_only)
        self._emit = emit
        self._left_rows: Dict[tuple, List[dict]] = defaultdict(list)
        self._right_rows: Dict[tuple, List[dict]] = defaultdict(list)
        self._left_done = False
        self._right_done = False
        self.rows_emitted = 0

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def _key(self, binding: dict) -> tuple:
        return tuple(binding[c] for c in self.shared)

    def feed_left(self, chunk: BindingTable) -> None:
        """Probe the right side with a left-input chunk, then build."""
        self._feed(chunk, self._left_rows, self._right_rows, left_side=True)

    def feed_right(self, chunk: BindingTable) -> None:
        """Probe the left side with a right-input chunk, then build."""
        self._feed(chunk, self._right_rows, self._left_rows, left_side=False)

    def _feed(self, chunk, own_store, other_store, left_side: bool) -> None:
        out = BindingTable(self.out_columns)
        for binding in chunk.bindings():
            key = self._key(binding) if self.shared else ()
            matches = (
                other_store.get(key, ())
                if self.shared
                else [b for bucket in other_store.values() for b in bucket]
            )
            for other in matches:
                merged = dict(other)
                merged.update(binding)
                out.append_binding(merged)
            own_store[key if self.shared else ()].append(binding)
        if out:
            self.rows_emitted += len(out)
            self._emit(out)

    # ------------------------------------------------------------------
    # termination
    # ------------------------------------------------------------------
    def finish_left(self) -> None:
        self._left_done = True

    def finish_right(self) -> None:
        self._right_done = True

    @property
    def done(self) -> bool:
        return self._left_done and self._right_done


class IncrementalUnion:
    """Re-emits chunks from several inputs, aligned to fixed columns."""

    def __init__(self, columns: Sequence[str], inputs: int, emit: Emit):
        if inputs < 1:
            raise EvaluationError("union needs at least one input")
        self.columns = tuple(columns)
        self._emit = emit
        self._remaining = inputs
        self.rows_emitted = 0

    def feed(self, chunk: BindingTable) -> None:
        if set(chunk.columns) != set(self.columns):
            raise EvaluationError(
                f"union chunk columns {chunk.columns} != {self.columns}"
            )
        if chunk.columns == self.columns:
            aligned = chunk
        else:
            # column-wise header reorder, no per-row work
            aligned = BindingBatch.from_table(chunk).align(self.columns).to_table()
        if aligned:
            self.rows_emitted += len(aligned)
            self._emit(aligned)

    def finish_one(self) -> None:
        self._remaining -= 1

    @property
    def done(self) -> bool:
        return self._remaining == 0


class JoinCascade:
    """An n-ary pipelined join as a chain of binary stages.

    Input ``i``'s chunks enter stage ``max(0, i-1)``; each stage's
    output feeds the next; the last stage's output is the cascade's.

    Args:
        input_columns: Column tuples of the n inputs, in plan order.
        emit: Consumer of final output chunks.
    """

    def __init__(self, input_columns: Sequence[Sequence[str]], emit: Emit):
        if len(input_columns) < 2:
            raise EvaluationError("a join cascade needs at least two inputs")
        self._stages: List[IncrementalHashJoin] = []
        self._inputs_done = [False] * len(input_columns)
        left = tuple(input_columns[0])
        for index in range(1, len(input_columns)):
            stage_index = index - 1
            is_last = index == len(input_columns) - 1
            stage_emit = emit if is_last else self._feeder(stage_index + 1)
            stage = IncrementalHashJoin(left, tuple(input_columns[index]), stage_emit)
            self._stages.append(stage)
            left = stage.out_columns

    def _feeder(self, next_stage: int) -> Emit:
        def feed(chunk: BindingTable) -> None:
            self._stages[next_stage].feed_left(chunk)

        return feed

    @property
    def out_columns(self) -> Tuple[str, ...]:
        return self._stages[-1].out_columns

    def feed(self, input_index: int, chunk: BindingTable) -> None:
        """Route a chunk from input ``input_index`` into its stage."""
        if input_index == 0:
            self._stages[0].feed_left(chunk)
        else:
            self._stages[input_index - 1].feed_right(chunk)

    def finish(self, input_index: int) -> None:
        self._inputs_done[input_index] = True

    @property
    def done(self) -> bool:
        return all(self._inputs_done)
