"""Distributed query execution over channels."""

from .engine import Completion, ExecutorHost, PlanExecutor
from .local import evaluate_scan
from .operators import apply_conditions, finalize, join_all, union_all

__all__ = [
    "Completion",
    "ExecutorHost",
    "PlanExecutor",
    "apply_conditions",
    "evaluate_scan",
    "finalize",
    "join_all",
    "union_all",
]
