"""Distributed query execution over channels."""

from .batch import BindingBatch, concat_tables, split_table
from .engine import Completion, ExecutorHost, PlanExecutor
from .local import evaluate_scan
from .operators import (
    apply_conditions,
    finalize,
    join_all,
    union_all,
    vjoin_all,
    vunion_all,
)

__all__ = [
    "BindingBatch",
    "Completion",
    "ExecutorHost",
    "PlanExecutor",
    "apply_conditions",
    "concat_tables",
    "evaluate_scan",
    "finalize",
    "join_all",
    "split_table",
    "union_all",
    "vjoin_all",
    "vunion_all",
]
