"""Local evaluation of plan leaves against a peer base.

A scan's patterns are evaluated with RDFS entailment and joined
locally; a composite scan ``(Q1∪Q2)@P`` therefore executes the pushed
join at the peer — the behaviour Transformation Rules 1/2 rely on.
Executing the *original* (unrewritten) pattern at a peer is sound:
class filters are enforced during evaluation, so a peer advertising a
broader class only contributes bindings that satisfy the query's
classes.

With ``vectorize`` on (the default) the per-pattern tables are joined
through the columnar build/probe hash-join; off reproduces the seed's
binding-at-a-time join exactly.
"""

from __future__ import annotations

from ..core.algebra import Scan
from ..rdf.graph import Graph
from ..rdf.inference import InferredView
from ..rdf.schema import Schema
from ..rql.bindings import BindingTable
from ..rql.evaluator import evaluate_path_pattern
from .encoded import EncodedBase, evaluate_scan_encoded
from .operators import join_all, vjoin_all


def evaluate_scan(
    scan: Scan,
    base: Graph,
    schema: Schema,
    vectorize: bool = True,
    encoded: "EncodedBase" = None,
    decode: bool = True,
) -> BindingTable:
    """Evaluate a (possibly composite) scan against a local base.

    With an :class:`~repro.execution.encoded.EncodedBase` supplied the
    scan runs on its cached dictionary-encoded columns instead of
    re-matching triples (same entailment semantics, shared matcher);
    ``decode=False`` additionally keeps the result as an id table in
    that base's dictionary space.
    """
    if encoded is not None:
        return evaluate_scan_encoded(scan, encoded, decode=decode)
    view = InferredView(base, schema)
    tables = [evaluate_path_pattern(pattern, view) for pattern in scan.patterns()]
    return vjoin_all(tables) if vectorize else join_all(tables)
