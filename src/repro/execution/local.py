"""Local evaluation of plan leaves against a peer base.

A scan's patterns are evaluated with RDFS entailment and joined
locally; a composite scan ``(Q1∪Q2)@P`` therefore executes the pushed
join at the peer — the behaviour Transformation Rules 1/2 rely on.
Executing the *original* (unrewritten) pattern at a peer is sound:
class filters are enforced during evaluation, so a peer advertising a
broader class only contributes bindings that satisfy the query's
classes.
"""

from __future__ import annotations

from ..core.algebra import Scan
from ..rdf.graph import Graph
from ..rdf.inference import InferredView
from ..rdf.schema import Schema
from ..rql.bindings import BindingTable
from ..rql.evaluator import evaluate_path_pattern
from .operators import join_all


def evaluate_scan(scan: Scan, base: Graph, schema: Schema) -> BindingTable:
    """Evaluate a (possibly composite) scan against a local base."""
    view = InferredView(base, schema)
    tables = [evaluate_path_pattern(pattern, view) for pattern in scan.patterns()]
    return join_all(tables)
