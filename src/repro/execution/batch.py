"""Column-oriented binding batches: the vectorized operator kernel.

A :class:`BindingBatch` holds the same bag of variable bindings as a
:class:`~repro.rql.bindings.BindingTable`, but column-major: a schema
header (ordered variable names) plus one value list per column.  The
vectorized execution engine materialises operator inputs as batches and
runs joins, unions, filters and projections column-wise — no per-row
``dict`` is ever built on the hot path, which is where the
binding-at-a-time evaluator spends most of its cycles.

The two representations convert losslessly (:meth:`from_table` /
:meth:`to_table`), row order included, so vectorized and scalar
evaluation are differential-testable against each other
(``tests/difftest``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import EvaluationError
from ..rdf.terms import Term
from ..rql.bindings import BindingTable


class BindingBatch:
    """A bag of variable bindings, stored column-major.

    Args:
        columns: The schema header — variable names in order.
        data: One value list per column (all the same length).  Omitted
            columns start empty.
        length: Row count; required only for zero-column batches (the
            join identity has no columns but one row), inferred from
            ``data`` otherwise.
    """

    __slots__ = ("columns", "data", "length")

    def __init__(
        self,
        columns: Sequence[str],
        data: Optional[Dict[str, List[Term]]] = None,
        length: Optional[int] = None,
    ):
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise EvaluationError(f"duplicate columns in {self.columns}")
        if data is None:
            self.data: Dict[str, List[Term]] = {c: [] for c in self.columns}
            self.length = length or 0
        else:
            self.data = data
            widths = {len(data[c]) for c in self.columns}
            if len(widths) > 1:
                raise EvaluationError(f"ragged columns: widths {sorted(widths)}")
            inferred = widths.pop() if widths else 0
            if self.columns:
                if length is not None and length != inferred:
                    raise EvaluationError(
                        f"length {length} does not match column width {inferred}"
                    )
                self.length = inferred
            else:
                self.length = length or 0

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_table(cls, table: BindingTable) -> "BindingBatch":
        """Pivot a row-major table into a batch (order preserved)."""
        if not table.columns:
            return cls((), length=len(table.rows))
        if not table.rows:
            return cls(table.columns)
        pivoted = list(zip(*table.rows))
        data = {c: list(pivoted[i]) for i, c in enumerate(table.columns)}
        return cls(table.columns, data)

    def to_table(self) -> BindingTable:
        """Pivot back to a row-major table (order preserved)."""
        table = BindingTable(self.columns)
        if not self.columns:
            table.rows.extend(() for _ in range(self.length))
            return table
        table.rows.extend(zip(*(self.data[c] for c in self.columns)))
        return table

    @classmethod
    def unit(cls) -> "BindingBatch":
        """The join identity: zero columns, one row."""
        return cls((), length=1)

    # ------------------------------------------------------------------
    # vectorized relational operators
    # ------------------------------------------------------------------
    def hash_join(self, other: "BindingBatch") -> "BindingBatch":
        """Natural hash join (build on the smaller side, probe with the
        larger), producing ``self.columns`` + other-only columns — the
        same output convention as :meth:`BindingTable.join`.
        """
        shared = [c for c in self.columns if c in other.columns]
        other_only = [c for c in other.columns if c not in self.columns]
        out_columns = self.columns + tuple(other_only)
        if not shared:
            # cartesian product, self-major (matches the scalar path)
            self_idx = [i for i in range(self.length) for _ in range(other.length)]
            other_idx = list(range(other.length)) * self.length
            return self._gather(other, other_only, out_columns, self_idx, other_idx)
        build, probe, build_is_self = (self, other, True)
        if other.length < self.length:
            build, probe, build_is_self = (other, self, False)
        if len(shared) == 1:
            # single-key fast path: hash the values directly instead of
            # boxing every key into a 1-tuple (the common case for both
            # chain joins and dictionary-encoded int columns)
            build_keys: Sequence = build.data[shared[0]]
            probe_keys: Iterable = probe.data[shared[0]]
        else:
            build_keys = list(zip(*(build.data[c] for c in shared)))
            probe_keys = zip(*(probe.data[c] for c in shared))
        buckets: Dict[object, List[int]] = {}
        for index, key in enumerate(build_keys):
            bucket = buckets.get(key)
            if bucket is None:
                buckets[key] = [index]
            else:
                bucket.append(index)
        build_idx: List[int] = []
        probe_idx: List[int] = []
        get = buckets.get
        for index, key in enumerate(probe_keys):
            bucket = get(key)
            if bucket is not None:
                build_idx.extend(bucket)
                probe_idx.extend([index] * len(bucket))
        if build_is_self:
            return self._gather(other, other_only, out_columns, build_idx, probe_idx)
        return self._gather(other, other_only, out_columns, probe_idx, build_idx)

    def _gather(
        self,
        other: "BindingBatch",
        other_only: Sequence[str],
        out_columns: Tuple[str, ...],
        self_idx: List[int],
        other_idx: List[int],
    ) -> "BindingBatch":
        """Materialise join output columns by index selection."""
        data: Dict[str, List[Term]] = {}
        for column in self.columns:
            source = self.data[column]
            data[column] = [source[i] for i in self_idx]
        for column in other_only:
            source = other.data[column]
            data[column] = [source[i] for i in other_idx]
        return BindingBatch(out_columns, data, length=len(self_idx))

    @classmethod
    def concat(cls, batches: Sequence["BindingBatch"]) -> "BindingBatch":
        """Bag union: concatenate batches column-wise.

        The first batch fixes the column order; the others must cover
        the same column set (any permutation), as in
        :meth:`BindingTable.union`.
        """
        if not batches:
            raise EvaluationError("concat of zero batches")
        first = batches[0]
        columns = first.columns
        column_set = set(columns)
        data = {c: list(first.data[c]) for c in columns}
        length = first.length
        for batch in batches[1:]:
            if set(batch.columns) != column_set:
                raise EvaluationError(
                    f"union over different columns: {columns} vs {batch.columns}"
                )
            for column in columns:
                data[column].extend(batch.data[column])
            length += batch.length
        return cls(columns, data, length=length)

    def project(self, columns: Sequence[str]) -> "BindingBatch":
        """Keep only the named columns (column lists are copied)."""
        missing = [c for c in columns if c not in self.data]
        if missing:
            raise EvaluationError(f"no column {missing[0]!r} in {self.columns}")
        return BindingBatch(
            tuple(columns),
            {c: list(self.data[c]) for c in columns},
            length=self.length,
        )

    def compress(self, mask: Sequence[bool]) -> "BindingBatch":
        """Keep the rows whose mask entry is true (column-wise filter)."""
        if len(mask) != self.length:
            raise EvaluationError(
                f"mask length {len(mask)} does not match {self.length} rows"
            )
        keep = [i for i, flag in enumerate(mask) if flag]
        data = {
            column: [values[i] for i in keep]
            for column, values in self.data.items()
        }
        return BindingBatch(self.columns, data, length=len(keep))

    def distinct(self) -> "BindingBatch":
        """Drop duplicate rows, keeping first occurrences."""
        if not self.columns:
            return BindingBatch((), length=min(self.length, 1))
        seen = set()
        keep: List[int] = []
        for index, row in enumerate(zip(*(self.data[c] for c in self.columns))):
            if row not in seen:
                seen.add(row)
                keep.append(index)
        data = {c: [self.data[c][i] for i in keep] for c in self.columns}
        return BindingBatch(self.columns, data, length=len(keep))

    def align(self, columns: Sequence[str]) -> "BindingBatch":
        """Reorder the header to ``columns`` (same column set)."""
        if set(columns) != set(self.columns):
            raise EvaluationError(
                f"cannot align {self.columns} to {tuple(columns)}"
            )
        return BindingBatch(
            tuple(columns), {c: self.data[c] for c in columns}, length=self.length
        )

    # ------------------------------------------------------------------
    # batching
    # ------------------------------------------------------------------
    def split(self, batch_size: int) -> List["BindingBatch"]:
        """Partition into batches of at most ``batch_size`` rows (at
        least one batch, possibly empty, so a final marker always has a
        carrier)."""
        if batch_size < 1:
            raise EvaluationError("batch_size must be >= 1")
        if self.length <= batch_size:
            return [self]
        out = []
        for start in range(0, self.length, batch_size):
            stop = start + batch_size
            data = {c: self.data[c][start:stop] for c in self.columns}
            out.append(
                BindingBatch(
                    self.columns, data, length=min(stop, self.length) - start
                )
            )
        return out

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def column(self, name: str) -> List[Term]:
        try:
            return self.data[name]
        except KeyError:
            raise EvaluationError(f"no column {name!r} in {self.columns}") from None

    def __len__(self) -> int:
        return self.length

    def __bool__(self) -> bool:
        return self.length > 0

    def __repr__(self) -> str:
        return f"BindingBatch(columns={self.columns}, rows={self.length})"


def concat_tables(tables: Sequence[BindingTable]) -> BindingTable:
    """Column-aligned bag union of streamed chunks, done batch-wise.

    Equivalent to folding :meth:`BindingTable.union` over the chunks but
    linear in total rows instead of quadratic — this is what the channel
    manager uses to assemble a multi-batch stream.
    """
    if not tables:
        raise EvaluationError("concat of zero tables")
    if len(tables) == 1:
        return tables[0]
    return BindingBatch.concat(
        [BindingBatch.from_table(t) for t in tables]
    ).to_table()


def split_table(table: BindingTable, batch_size: int) -> List[BindingTable]:
    """Cut a table into row slices of at most ``batch_size`` rows."""
    if batch_size < 1:
        raise EvaluationError("batch_size must be >= 1")
    if len(table.rows) <= batch_size:
        return [table]
    return [
        BindingTable(table.columns, table.rows[start : start + batch_size])
        for start in range(0, len(table.rows), batch_size)
    ]
