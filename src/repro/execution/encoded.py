"""Dictionary-encoded columnar execution: the scan/build/probe fast path.

The scalar evaluator matches every asserted triple of a property
against the pattern's domain/range constraints on *every* scan — the
dominant cost of query evaluation.  An :class:`EncodedBase` does that
entailment work once per ``(domain, property, range)`` schema path and
caches the result as a pair of **encoded ID columns** (subject ids,
object ids) interned through the peer's
:class:`~repro.rdf.dictionary.TermDictionary`.  Scans then become cache
lookups; joins run over small integers via the value-agnostic
:class:`~repro.execution.batch.BindingBatch` kernels; terms are decoded
only when the final table is materialised.

Matching semantics are shared by construction:
:func:`~repro.rql.evaluator.path_triple_matches` is the single matcher
both the scalar evaluator and the column builder call, so the two paths
cannot drift apart.

Cached column lists are handed to batches *without copying*: no batch
kernel mutates its input columns in place (``_gather``/``concat``/
``project`` all allocate fresh lists), an invariant the property suite
pins down.  Cache validity keys on ``Graph.version``, so base mutations
invalidate stale columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.algebra import Scan
from ..rdf.dictionary import TermDictionary
from ..rdf.graph import Graph
from ..rdf.inference import InferredView
from ..rdf.schema import Schema
from ..rdf.terms import Term, URI
from ..rql.bindings import BindingTable
from ..rql.evaluator import path_triple_matches
from ..rql.pattern import SchemaPath
from .batch import BindingBatch

#: Flat per-cell width of an encoded column on the wire (int32) plus
#: framing; an arithmetic size, unlike the scalar table's per-term
#: ``n3()`` rendering — not rendering terms is itself a hot-path win.
_CELL_BYTES = 4
_HEADER_BYTES = 16


@dataclass(frozen=True)
class EncodedTable:
    """A binding table whose cells are dictionary ids, column-major.

    The wire twin of :class:`~repro.rql.bindings.BindingTable` for
    encoded channels: only ids travel; the receiver decodes them with
    the per-channel dictionary entries shipped once.
    """

    columns: Tuple[str, ...]
    ids: Tuple[Tuple[int, ...], ...]  # one tuple per column
    length: int

    def size_bytes(self) -> int:
        header = _HEADER_BYTES + sum(len(c) + 2 for c in self.columns)
        return header + _CELL_BYTES * len(self.columns) * self.length

    def used_ids(self) -> List[int]:
        seen = set()
        for column in self.ids:
            seen.update(column)
        return sorted(seen)

    def __len__(self) -> int:
        return self.length


def encode_table(table: BindingTable, dictionary: TermDictionary) -> EncodedTable:
    """Encode a scalar table's cells through ``dictionary`` (interning)."""
    if not table.columns:
        return EncodedTable((), (), len(table.rows))
    pivoted = list(zip(*table.rows)) if table.rows else [()] * len(table.columns)
    encode = dictionary.encode
    ids = tuple(tuple(encode(term) for term in column) for column in pivoted)
    return EncodedTable(tuple(table.columns), ids, len(table.rows))


def decode_table(encoded: EncodedTable, mapping: Dict[int, Term]) -> BindingTable:
    """Materialise an encoded table back into terms.

    Args:
        mapping: id → term, from the channel's dictionary entries.

    Raises:
        KeyError: An id the mapping does not cover (a protocol bug —
            dictionaries ship before the data referencing them).
    """
    table = BindingTable(encoded.columns)
    if not encoded.columns:
        table.rows.extend(() for _ in range(encoded.length))
        return table
    decoded = [[mapping[i] for i in column] for column in encoded.ids]
    table.rows.extend(zip(*decoded))
    return table


def split_encoded(encoded: EncodedTable, batch_size: int) -> List[EncodedTable]:
    """Cut an encoded table into row slices of at most ``batch_size``
    rows (the encoded twin of :func:`~repro.execution.batch.split_table`)."""
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if encoded.length <= batch_size:
        return [encoded]
    return [
        EncodedTable(
            encoded.columns,
            tuple(column[start : start + batch_size] for column in encoded.ids),
            min(start + batch_size, encoded.length) - start,
        )
        for start in range(0, encoded.length, batch_size)
    ]


class EncodedBase:
    """Per-peer columnar store: entailed pattern columns, cached.

    Args:
        graph: The peer's asserted base.
        schema: The community schema entailment runs under.
    """

    def __init__(self, graph: Graph, schema: Schema):
        self.graph = graph
        self.schema = schema
        self.dictionary = TermDictionary()
        #: (domain, property, range) → (subject id column, object id column)
        self._columns: Dict[Tuple[URI, URI, URI], Tuple[List[int], List[int]]] = {}
        #: property → entailed asserted-triple count (cardinality feedback)
        self._counts: Dict[URI, int] = {}
        self._version = graph.version

    def _fresh(self) -> None:
        if self.graph.version != self._version:
            self._columns.clear()
            self._counts.clear()
            self._version = self.graph.version

    def warm(self) -> None:
        """Precompute the column pair for every schema property's
        declared path — the columnar ingest step, done once at
        advertise time so query-time scans are cache hits."""
        for prop in sorted(self.schema.properties, key=lambda p: p.value):
            definition = self.schema.property_def(prop)
            self.pattern_columns(
                SchemaPath(definition.domain, prop, definition.range)
            )

    def pattern_columns(self, path: SchemaPath) -> Tuple[List[int], List[int]]:
        """The encoded (subject, object) columns of one schema path,
        built on first use and cached until the graph changes."""
        self._fresh()
        key = (path.domain, path.property, path.range)
        cached = self._columns.get(key)
        if cached is not None:
            return cached
        view = InferredView(self.graph, self.schema)
        schema = self.schema
        encode = self.dictionary.encode
        subjects: List[int] = []
        objects: List[int] = []
        for triple in view.triples(None, path.property, None):
            if not path_triple_matches(triple, path, schema, view):
                continue
            subjects.append(encode(triple.subject))
            objects.append(encode(triple.object))
        self._columns[key] = (subjects, objects)
        return subjects, objects

    def _schema_decided(self, path: SchemaPath) -> bool:
        """Whether :func:`path_triple_matches` for this path is decided
        per-triple by the schema alone — no ``is_instance_of`` fallback
        that could depend on *other* statements of the base.

        Only then can a column be patched in place on updates: its
        content is a pure function of the statements asserting the
        path's subproperty closure.
        """
        from ..rdf.vocabulary import LITERAL_CLASS

        schema = self.schema
        if not schema.has_property(path.property):
            return False
        for sub in schema.subproperties(path.property):
            definition = schema.property_def(sub)
            if not schema.is_subclass(definition.domain, path.domain):
                return False
            if path.range == LITERAL_CLASS:
                continue  # match reduces to isinstance(obj, Literal)
            if definition.range == LITERAL_CLASS or not schema.is_subclass(
                definition.range, path.range
            ):
                return False
        return True

    def _accepts(self, path: SchemaPath, triple) -> bool:
        """Per-triple acceptance for a schema-decided path (the residue
        of :func:`path_triple_matches` once the class checks are known
        to hold by schema): only the literal-shape check on the object
        remains."""
        from ..rdf.terms import Literal
        from ..rdf.vocabulary import LITERAL_CLASS

        if path.range == LITERAL_CLASS:
            return isinstance(triple.object, Literal)
        return not isinstance(triple.object, Literal)

    def apply_delta(self, inserted, deleted) -> None:
        """Patch the cached id columns for one applied update batch —
        the incremental alternative to the ``_fresh()`` wipe.

        The term dictionary is never rebuilt (ids are stable), columns
        of schema-decided paths are appended to / spliced in place, and
        only columns whose matching depends on instance membership —
        which *any* statement can flip under RDFS domain/range
        entailment — are dropped for lazy re-derivation.  Must be
        called immediately after the graph mutations it describes;
        content is multiset-identical to a from-scratch rebuild (the
        property suite pins this).
        """
        touched: set = set()
        for triple in list(inserted) + list(deleted):
            predicate = triple.predicate
            if self.schema.has_property(predicate):
                touched.update(self.schema.superproperties(predicate))
            else:
                touched.add(predicate)
        encode = self.dictionary.encode
        for key in list(self._columns):
            path = SchemaPath(*key)
            if not self._schema_decided(path):
                del self._columns[key]
                continue
            if path.property not in touched:
                continue
            subjects, objects = self._columns[key]
            closure = set(self.schema.subproperties(path.property))
            for triple in inserted:
                if triple.predicate in closure and self._accepts(path, triple):
                    subjects.append(encode(triple.subject))
                    objects.append(encode(triple.object))
            for triple in deleted:
                if triple.predicate in closure and self._accepts(path, triple):
                    sid, oid = encode(triple.subject), encode(triple.object)
                    for index in range(len(subjects) - 1, -1, -1):
                        if subjects[index] == sid and objects[index] == oid:
                            del subjects[index]
                            del objects[index]
                            break
        for prop in list(self._counts):
            if self.schema.has_property(prop):
                closure = set(self.schema.subproperties(prop))
            else:
                closure = {prop}
            self._counts[prop] += sum(
                1 for t in inserted if t.predicate in closure
            ) - sum(1 for t in deleted if t.predicate in closure)
        self._version = self.graph.version

    def property_count(self, prop: URI) -> int:
        """Entailed asserted-triple count for a property (the number
        the scalar path derives by iterating ``view.triples``)."""
        self._fresh()
        count = self._counts.get(prop)
        if count is None:
            view = InferredView(self.graph, self.schema)
            count = sum(1 for _ in view.triples(None, prop, None))
            self._counts[prop] = count
        return count


def evaluate_scan_encoded(
    scan: Scan, base: EncodedBase, decode: bool = True
) -> BindingTable:
    """Evaluate a (possibly composite) scan on the encoded columns.

    Per-pattern id columns come straight from the cache (shared, not
    copied — see the module invariant); the join cascade runs the
    vectorized hash-join over ints.  With ``decode`` on, terms
    materialise once at the end; with it off the table keeps its
    dictionary-id cells (an *id table*) so the coordinator's whole
    join/union pipeline stays in int space and terms materialise only
    at the final answer.
    """
    result: Optional[BindingBatch] = None
    for pattern in scan.patterns():
        subjects, objects = base.pattern_columns(pattern.schema_path)
        columns = pattern.variables()
        data: Dict[str, List[int]] = {}
        if pattern.subject_var:
            data[pattern.subject_var] = subjects
        if pattern.object_var:
            data[pattern.object_var] = objects
        if columns:
            batch = BindingBatch(columns, data)
        else:
            batch = BindingBatch((), length=len(subjects))
        result = batch if result is None else result.hash_join(batch)
    if result is None:
        return BindingTable(())
    table = BindingTable(result.columns)
    if not result.columns:
        table.rows.extend(() for _ in range(result.length))
        return table
    if not decode:
        table.rows.extend(zip(*(result.data[c] for c in result.columns)))
        return table
    decoder = base.dictionary.decode
    decoded = [
        [decoder(i) for i in result.data[column]] for column in result.columns
    ]
    table.rows.extend(zip(*decoded))
    return table


def is_id_table(table: BindingTable) -> bool:
    """Whether a table's cells are dictionary ids rather than terms.

    Id tables are ordinary :class:`BindingTable` values whose cells are
    ints — the batch kernels are value-agnostic, so joins/unions/splits
    all work unchanged.  An empty table is (vacuously) not an id table;
    both finalisation paths agree on it.
    """
    return bool(table.columns) and bool(table.rows) and isinstance(
        table.rows[0][0], int
    )


def encode_cells(table: BindingTable, dictionary: TermDictionary) -> BindingTable:
    """Intern a term table's cells into an id table (same shape)."""
    out = BindingTable(table.columns)
    if not table.columns:
        out.rows.extend(table.rows)
        return out
    encode = dictionary.encode
    out.rows.extend(tuple(encode(term) for term in row) for row in table.rows)
    return out


def decode_cells(table: BindingTable, dictionary: TermDictionary) -> BindingTable:
    """Materialise an id table's cells back into terms (same shape)."""
    out = BindingTable(table.columns)
    if not table.columns:
        out.rows.extend(table.rows)
        return out
    decode = dictionary.decode
    out.rows.extend(tuple(decode(tid) for tid in row) for row in table.rows)
    return out
