"""Relational operators over binding tables.

Thin, well-tested wrappers the execution engine composes: n-ary union
and join, condition filtering and final projection — each in two
flavours sharing one semantics:

* the **scalar** path (``join_all`` / ``union_all`` / ``finalize``
  with ``vectorize=False``) evaluates binding-at-a-time over per-row
  dictionaries, exactly as the seed engine did — kept as the
  ``--no-vectorize`` escape hatch and as the differential-testing
  reference;
* the **vectorized** path (``vjoin_all`` / ``vunion_all`` /
  ``finalize`` with ``vectorize=True``) pivots the operands into
  column-oriented :class:`~repro.execution.batch.BindingBatch` values
  and runs build/probe hash-joins, column-wise concatenation, masks and
  projections without building a single per-row dict.

Both produce identical binding multisets (asserted by
``tests/difftest`` and the metamorphic property tests).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence

from ..errors import EvaluationError
from ..rdf.terms import Literal
from ..rql.ast import Condition
from ..rql.bindings import BindingTable
from ..rql.evaluator import _COMPARATORS, _condition_predicate
from .batch import BindingBatch


def union_all(tables: Sequence[BindingTable]) -> BindingTable:
    """Bag union of one or more tables (columns must match as sets)."""
    if not tables:
        raise EvaluationError("union of zero tables")
    result = tables[0]
    for table in tables[1:]:
        result = result.union(table)
    return result


def join_all(tables: Sequence[BindingTable]) -> BindingTable:
    """Natural join of one or more tables."""
    if not tables:
        raise EvaluationError("join of zero tables")
    result = tables[0]
    for table in tables[1:]:
        result = result.join(table)
    return result


def vunion_all(tables: Sequence[BindingTable]) -> BindingTable:
    """Vectorized bag union: one column-wise concatenation."""
    if not tables:
        raise EvaluationError("union of zero tables")
    if len(tables) == 1:
        return tables[0]
    return BindingBatch.concat(
        [BindingBatch.from_table(t) for t in tables]
    ).to_table()


def vjoin_all(tables: Sequence[BindingTable]) -> BindingTable:
    """Vectorized natural join: a cascade of build/probe hash-joins."""
    if not tables:
        raise EvaluationError("join of zero tables")
    if len(tables) == 1:
        return tables[0]
    result = BindingBatch.from_table(tables[0])
    for table in tables[1:]:
        result = result.hash_join(BindingBatch.from_table(table))
    return result.to_table()


def _condition_mask(batch: BindingBatch, condition: Condition) -> List[bool]:
    """Evaluate one WHERE condition column-wise into a row mask.

    Semantics mirror the scalar predicate exactly: literals compare by
    their Python value, incomparable types reject the row.
    """
    compare = _COMPARATORS.get(condition.operator)
    if compare is None:
        raise EvaluationError(f"unsupported operator {condition.operator!r}")
    left = [
        term.to_python() if isinstance(term, Literal) else term
        for term in batch.column(condition.variable)
    ]
    if condition.value_is_variable:
        right: Iterable = [
            term.to_python() if isinstance(term, Literal) else term
            for term in batch.column(str(condition.value))
        ]
    else:
        value = condition.value
        constant = value.to_python() if isinstance(value, Literal) else value
        right = [constant] * len(batch)
    mask = []
    for a, b in zip(left, right):
        try:
            mask.append(bool(compare(a, b)))
        except TypeError:
            mask.append(False)
    return mask


def _referenced_columns(condition: Condition) -> set:
    referenced = {condition.variable}
    if condition.value_is_variable:
        referenced.add(str(condition.value))
    return referenced


def apply_conditions(
    table: BindingTable,
    conditions: Iterable[Condition],
    vectorize: bool = False,
) -> BindingTable:
    """Apply WHERE-clause filters; conditions referencing columns the
    table lacks reject nothing (they were pushed elsewhere)."""
    if vectorize:
        batch = BindingBatch.from_table(table)
        columns = set(batch.columns)
        filtered = False
        for condition in conditions:
            if not _referenced_columns(condition).issubset(columns):
                continue
            batch = batch.compress(_condition_mask(batch, condition))
            filtered = True
        return batch.to_table() if filtered else table
    result = table
    for condition in conditions:
        if not _referenced_columns(condition).issubset(set(result.columns)):
            continue
        result = result.select(_condition_predicate(condition))
    return result


def finalize(
    table: BindingTable,
    projections: Sequence[str],
    conditions: Iterable[Condition] = (),
    vectorize: bool = False,
) -> BindingTable:
    """Coordinator post-processing: filter, project, de-duplicate."""
    if vectorize:
        batch = BindingBatch.from_table(table)
        columns = set(batch.columns)
        for condition in conditions:
            if not _referenced_columns(condition).issubset(columns):
                continue
            batch = batch.compress(_condition_mask(batch, condition))
        available = [c for c in projections if c in columns]
        return batch.project(available).distinct().to_table()
    filtered = apply_conditions(table, conditions)
    available = [c for c in projections if c in filtered.columns]
    return filtered.project(available).distinct()
