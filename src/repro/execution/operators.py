"""Relational operators over binding tables.

Thin, well-tested wrappers the execution engine composes: n-ary union
and join, condition filtering and final projection — each in two
flavours sharing one semantics:

* the **scalar** path (``join_all`` / ``union_all`` / ``finalize``
  with ``vectorize=False``) evaluates binding-at-a-time over per-row
  dictionaries, exactly as the seed engine did — kept as the
  ``--no-vectorize`` escape hatch and as the differential-testing
  reference;
* the **vectorized** path (``vjoin_all`` / ``vunion_all`` /
  ``finalize`` with ``vectorize=True``) pivots the operands into
  column-oriented :class:`~repro.execution.batch.BindingBatch` values
  and runs build/probe hash-joins, column-wise concatenation, masks and
  projections without building a single per-row dict.

Both produce identical binding multisets (asserted by
``tests/difftest`` and the metamorphic property tests).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from ..errors import EvaluationError
from ..rdf.terms import Literal
from ..rql.ast import Condition
from ..rql.bindings import BindingTable
from ..rql.evaluator import _COMPARATORS, _condition_predicate
from .batch import BindingBatch


def union_all(tables: Sequence[BindingTable]) -> BindingTable:
    """Bag union of one or more tables (columns must match as sets)."""
    if not tables:
        raise EvaluationError("union of zero tables")
    result = tables[0]
    for table in tables[1:]:
        result = result.union(table)
    return result


def join_all(tables: Sequence[BindingTable]) -> BindingTable:
    """Natural join of one or more tables."""
    if not tables:
        raise EvaluationError("join of zero tables")
    result = tables[0]
    for table in tables[1:]:
        result = result.join(table)
    return result


def vunion_all(tables: Sequence[BindingTable]) -> BindingTable:
    """Vectorized bag union: one column-wise concatenation."""
    if not tables:
        raise EvaluationError("union of zero tables")
    if len(tables) == 1:
        return tables[0]
    return BindingBatch.concat(
        [BindingBatch.from_table(t) for t in tables]
    ).to_table()


def vjoin_all(tables: Sequence[BindingTable]) -> BindingTable:
    """Vectorized natural join: a cascade of build/probe hash-joins."""
    if not tables:
        raise EvaluationError("join of zero tables")
    if len(tables) == 1:
        return tables[0]
    result = BindingBatch.from_table(tables[0])
    for table in tables[1:]:
        result = result.hash_join(BindingBatch.from_table(table))
    return result.to_table()


def vunion_all_distinct(
    tables: Sequence[BindingTable], needed: Optional[set] = None
) -> BindingTable:
    """Vectorized union with duplicate elimination after the concat.

    The encoded pipeline's combine: the coordinator's final step is
    always a distinct projection, so dropping duplicates early changes
    no answer while keeping id-space intermediates from carrying the
    multiplicities a later join would multiply.  With ``needed`` set,
    columns nothing above the union references are pruned first (every
    operand covers the same column set, so pruning is uniform).
    """
    if not tables:
        raise EvaluationError("union of zero tables")
    batches = [BindingBatch.from_table(t) for t in tables]
    if needed is not None:
        keep = [c for c in batches[0].columns if c in needed]
        if len(keep) < len(batches[0].columns):
            batches = [b.project(keep) for b in batches]
    if len(batches) == 1:
        return batches[0].distinct().to_table()
    return BindingBatch.concat(batches).distinct().to_table()


def vjoin_all_distinct(
    tables: Sequence[BindingTable], needed: Optional[set] = None
) -> BindingTable:
    """Vectorized join cascade with per-step duplicate elimination and
    (optionally) dead-column pruning.

    Sound for the same reason as :func:`vunion_all_distinct`: the set
    of distinct rows of ``distinct(A) ⋈ distinct(B)`` equals that of
    ``A ⋈ B``, and only the distinct set survives finalisation.

    With ``needed`` set (the coordinator knows the query's projection
    and condition variables plus every variable the rest of the plan
    still references), columns outside ``needed`` and outside every
    yet-unjoined operand are projected away after each step *before*
    the distinct — chain-interior variables stop keeping rows distinct,
    which is what collapses the multiplicative intermediate blowup.
    """
    if not tables:
        raise EvaluationError("join of zero tables")
    remaining = [set(t.columns) for t in tables]
    result = BindingBatch.from_table(tables[0]).distinct()
    for index, table in enumerate(tables[1:], start=1):
        result = result.hash_join(BindingBatch.from_table(table).distinct())
        if needed is not None:
            later: set = set()
            for columns in remaining[index + 1 :]:
                later |= columns
            keep = [c for c in result.columns if c in needed or c in later]
            if len(keep) < len(result.columns):
                result = result.project(keep)
        result = result.distinct()
    if needed is not None and len(tables) == 1:
        keep = [c for c in result.columns if c in needed]
        if len(keep) < len(result.columns):
            result = result.project(keep).distinct()
    return result.to_table()


def _condition_mask(batch: BindingBatch, condition: Condition) -> List[bool]:
    """Evaluate one WHERE condition column-wise into a row mask.

    Semantics mirror the scalar predicate exactly: literals compare by
    their Python value, incomparable types reject the row.
    """
    compare = _COMPARATORS.get(condition.operator)
    if compare is None:
        raise EvaluationError(f"unsupported operator {condition.operator!r}")
    left = [
        term.to_python() if isinstance(term, Literal) else term
        for term in batch.column(condition.variable)
    ]
    if condition.value_is_variable:
        right: Iterable = [
            term.to_python() if isinstance(term, Literal) else term
            for term in batch.column(str(condition.value))
        ]
    else:
        value = condition.value
        constant = value.to_python() if isinstance(value, Literal) else value
        right = [constant] * len(batch)
    mask = []
    for a, b in zip(left, right):
        try:
            mask.append(bool(compare(a, b)))
        except TypeError:
            mask.append(False)
    return mask


def _referenced_columns(condition: Condition) -> set:
    referenced = {condition.variable}
    if condition.value_is_variable:
        referenced.add(str(condition.value))
    return referenced


def apply_conditions(
    table: BindingTable,
    conditions: Iterable[Condition],
    vectorize: bool = False,
) -> BindingTable:
    """Apply WHERE-clause filters; conditions referencing columns the
    table lacks reject nothing (they were pushed elsewhere)."""
    if vectorize:
        batch = BindingBatch.from_table(table)
        columns = set(batch.columns)
        filtered = False
        for condition in conditions:
            if not _referenced_columns(condition).issubset(columns):
                continue
            batch = batch.compress(_condition_mask(batch, condition))
            filtered = True
        return batch.to_table() if filtered else table
    result = table
    for condition in conditions:
        if not _referenced_columns(condition).issubset(set(result.columns)):
            continue
        result = result.select(_condition_predicate(condition))
    return result


def _decoded_comparables(ids: Sequence[int], dictionary) -> List[object]:
    """Decode an id column into condition-comparable values, decoding
    each *distinct* id exactly once (columnar predicate-over-dictionary:
    the duplicate-heavy column shares the per-term work)."""
    cache: dict = {}
    out: List[object] = []
    for tid in ids:
        if tid in cache:
            out.append(cache[tid])
        else:
            term = dictionary.decode(tid)
            value = term.to_python() if isinstance(term, Literal) else term
            cache[tid] = value
            out.append(value)
    return out


def _encoded_condition_mask(
    batch: BindingBatch, condition: Condition, dictionary
) -> List[bool]:
    """The encoded twin of :func:`_condition_mask`: same comparator
    semantics, operating on dictionary ids."""
    compare = _COMPARATORS.get(condition.operator)
    if compare is None:
        raise EvaluationError(f"unsupported operator {condition.operator!r}")
    left = _decoded_comparables(batch.column(condition.variable), dictionary)
    if condition.value_is_variable:
        right: Iterable = _decoded_comparables(
            batch.column(str(condition.value)), dictionary
        )
    else:
        value = condition.value
        constant = value.to_python() if isinstance(value, Literal) else value
        right = [constant] * len(batch)
    mask = []
    for a, b in zip(left, right):
        try:
            mask.append(bool(compare(a, b)))
        except TypeError:
            mask.append(False)
    return mask


def finalize_encoded(
    table: BindingTable,
    dictionary,
    projections: Sequence[str],
    conditions: Iterable[Condition] = (),
) -> BindingTable:
    """Coordinator post-processing of an *id table*: filter (decoding
    per distinct id), project, de-duplicate on ints, and only then
    materialise the final — already small — table into terms."""
    batch = BindingBatch.from_table(table)
    columns = set(batch.columns)
    for condition in conditions:
        if not _referenced_columns(condition).issubset(columns):
            continue
        batch = batch.compress(_encoded_condition_mask(batch, condition, dictionary))
    available = [c for c in projections if c in columns]
    batch = batch.project(available).distinct()
    decoded = {
        column: dictionary.decode_many(batch.data[column])
        for column in batch.columns
    }
    return BindingBatch(batch.columns, decoded, length=batch.length).to_table()


def finalize(
    table: BindingTable,
    projections: Sequence[str],
    conditions: Iterable[Condition] = (),
    vectorize: bool = False,
) -> BindingTable:
    """Coordinator post-processing: filter, project, de-duplicate."""
    if vectorize:
        batch = BindingBatch.from_table(table)
        columns = set(batch.columns)
        for condition in conditions:
            if not _referenced_columns(condition).issubset(columns):
                continue
            batch = batch.compress(_condition_mask(batch, condition))
        available = [c for c in projections if c in columns]
        return batch.project(available).distinct().to_table()
    filtered = apply_conditions(table, conditions)
    available = [c for c in projections if c in filtered.columns]
    return filtered.project(available).distinct()
