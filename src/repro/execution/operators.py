"""Relational operators over binding tables.

Thin, well-tested wrappers the execution engine composes: n-ary union
and join, condition filtering and final projection.  The heavy lifting
(hash join, column alignment) lives in
:class:`~repro.rql.bindings.BindingTable`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import EvaluationError
from ..rql.ast import Condition
from ..rql.bindings import BindingTable
from ..rql.evaluator import _condition_predicate


def union_all(tables: Sequence[BindingTable]) -> BindingTable:
    """Bag union of one or more tables (columns must match as sets)."""
    if not tables:
        raise EvaluationError("union of zero tables")
    result = tables[0]
    for table in tables[1:]:
        result = result.union(table)
    return result


def join_all(tables: Sequence[BindingTable]) -> BindingTable:
    """Natural join of one or more tables."""
    if not tables:
        raise EvaluationError("join of zero tables")
    result = tables[0]
    for table in tables[1:]:
        result = result.join(table)
    return result


def apply_conditions(table: BindingTable, conditions: Iterable[Condition]) -> BindingTable:
    """Apply WHERE-clause filters; conditions referencing columns the
    table lacks reject nothing (they were pushed elsewhere)."""
    result = table
    for condition in conditions:
        referenced = {condition.variable}
        if condition.value_is_variable:
            referenced.add(str(condition.value))
        if not referenced.issubset(set(result.columns)):
            continue
        result = result.select(_condition_predicate(condition))
    return result


def finalize(
    table: BindingTable,
    projections: Sequence[str],
    conditions: Iterable[Condition] = (),
) -> BindingTable:
    """Coordinator post-processing: filter, project, de-duplicate."""
    filtered = apply_conditions(table, conditions)
    available = [c for c in projections if c in filtered.columns]
    return filtered.project(available).distinct()
