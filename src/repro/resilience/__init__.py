"""Resilience layer: fault injection, failure detection, retries,
graceful degradation.

The seed stack assumed a friendly network — no loss, no duplication,
omniscient failure bounces.  This package supplies the machinery for a
realistic regime:

- :mod:`~repro.resilience.faults` — seeded deterministic fault
  injection (:class:`FaultPlan` / :class:`FaultInjector`).
- :mod:`~repro.resilience.detector` — heartbeat failure detection
  (:class:`FailureDetector`) and quarantine (:class:`PeerQuarantine`).
- :mod:`~repro.resilience.retry` — per-request deadlines with
  exponential backoff (:class:`RetryPolicy`).
- :mod:`~repro.resilience.partial` — coverage-annotated partial
  answers (:class:`Coverage`) when replanning cannot repair a plan.

:class:`ResilienceConfig` bundles the knobs a system turns on at once;
``systems.hybrid`` / ``systems.adhoc`` accept it via
``enable_resilience``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .detector import FailureDetector, Heartbeat, HeartbeatEmitter, PeerQuarantine
from .faults import CrashEvent, FaultInjector, FaultPlan, LinkPartition
from .harness import ChaosReport, QueryOutcome, heartbeat_round, run_chaos
from .partial import Coverage, full_coverage, restrict_to_answerable
from .retry import RetryPolicy, stable_seed


@dataclass
class ResilienceConfig:
    """One switchboard for a system's resilience features.

    Attributes:
        channel_retry: Ack/retransmit policy for channel sub-plans
            (``None`` leaves channels fire-and-forget as in the seed).
        routing_retry: Resend policy for hybrid RouteRequests.
        client_retry: Resubmit policy for client QuerySubmits.
        quarantine_enabled: Exclude suspected peers from routing.
        partial_results: Degrade to coverage-annotated partial answers
            instead of erroring when replanning cannot repair a plan.
        heartbeat_interval: Virtual-time spacing of heartbeat rounds.
        suspicion_timeout: Silence before a watched peer is suspected.
        delegation_timeout: Ad-hoc forwarding deadline (``None`` keeps
            the seed's wait-forever behaviour).
        max_replans: Bounded-replan budget at the query root.
        replan_delay: Base delay before a replanned re-execution.
        replan_backoff: Multiplier on the replan delay per round.
        seed: Base seed for per-peer retry jitter streams.
    """

    channel_retry: Optional[RetryPolicy] = None
    routing_retry: Optional[RetryPolicy] = None
    client_retry: Optional[RetryPolicy] = None
    quarantine_enabled: bool = True
    partial_results: bool = True
    heartbeat_interval: float = 10.0
    suspicion_timeout: float = 30.0
    delegation_timeout: Optional[float] = None
    max_replans: int = 3
    replan_delay: float = 0.0
    replan_backoff: float = 2.0
    seed: int = 0

    @classmethod
    def default(cls, seed: int = 0) -> "ResilienceConfig":
        """A sensible full-featured config for chaos experiments."""
        return cls(
            channel_retry=RetryPolicy(max_attempts=3, base_timeout=40.0, seed=seed),
            routing_retry=RetryPolicy(max_attempts=3, base_timeout=30.0, seed=seed),
            # generous deadline: a resubmit is idempotent (the
            # coordinator remembers pending and completed queries), so
            # this only has to outlast a healthy query round-trip
            client_retry=RetryPolicy(max_attempts=4, base_timeout=250.0, seed=seed),
            delegation_timeout=80.0,
            seed=seed,
        )


__all__ = [
    "ChaosReport",
    "CrashEvent",
    "Coverage",
    "FailureDetector",
    "FaultInjector",
    "FaultPlan",
    "Heartbeat",
    "HeartbeatEmitter",
    "LinkPartition",
    "PeerQuarantine",
    "QueryOutcome",
    "ResilienceConfig",
    "RetryPolicy",
    "full_coverage",
    "heartbeat_round",
    "restrict_to_answerable",
    "run_chaos",
    "stable_seed",
]
