"""Fault injection: a seeded, deterministic model of network misbehaviour.

The seed simulator knows exactly one fault — a binary ``fail_peer``
flag whose delivery failures bounce back to the sender omnisciently.
Real deployments lose, duplicate and delay messages, partition links
and crash (then restart) whole peers.  A :class:`FaultPlan` describes
such a regime declaratively; a :class:`FaultInjector` draws every
decision from its own seeded RNG, so a chaos experiment replays
bit-for-bit under the same seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled peer crash (and optional recovery).

    Attributes:
        at: Virtual time the peer goes dark.
        peer_id: The crashing peer.
        recover_at: Virtual time the peer comes back, or ``None`` for a
            permanent crash.
    """

    at: float
    peer_id: str
    recover_at: Optional[float] = None


@dataclass(frozen=True)
class LinkPartition:
    """A symmetric partition between two peer groups for a time window.

    While active, messages between the groups vanish (no bounce — the
    sender only learns through its own timeouts).
    """

    left: FrozenSet[str]
    right: FrozenSet[str]
    start: float = 0.0
    end: float = float("inf")

    def cuts(self, src: str, dst: str, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        return (src in self.left and dst in self.right) or (
            src in self.right and dst in self.left
        )


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of one chaos regime.

    Attributes:
        seed: RNG seed for every probabilistic decision.
        drop_rate: Probability a message vanishes in flight.
        duplicate_rate: Probability a message is delivered twice.
        jitter: Uniform extra latency in ``[0, jitter]`` added per
            message (reorders messages of similar latency).
        spike_rate: Probability of a latency spike.
        spike_latency: Extra latency charged on a spike.
        crashes: Scheduled :class:`CrashEvent` entries.
        partitions: Scheduled :class:`LinkPartition` windows.
        omniscient: Keep the seed simulator's legacy behaviour —
            messages to down peers bounce back as ``DeliveryFailure``
            and ``fail_peer`` broadcasts liveness to every peer.  The
            realistic default makes peers learn failures from
            observation (timeouts and missed heartbeats) only.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    jitter: float = 0.0
    spike_rate: float = 0.0
    spike_latency: float = 0.0
    crashes: Tuple[CrashEvent, ...] = ()
    partitions: Tuple[LinkPartition, ...] = field(default=())
    omniscient: bool = False

    def validate(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "spike_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.jitter < 0 or self.spike_latency < 0:
            raise ValueError("jitter and spike_latency must be non-negative")


class FaultInjector:
    """Draws per-message fault decisions for one :class:`FaultPlan`.

    The injector owns a dedicated ``random.Random(plan.seed)`` —
    independent of the network's RNG, so installing faults never
    perturbs topology generation or protocol randomness, and the
    decision sequence is a pure function of the (deterministic)
    message sequence.
    """

    def __init__(self, plan: FaultPlan):
        plan.validate()
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def partitioned(self, src: str, dst: str, now: float) -> bool:
        """True when an active partition separates ``src`` and ``dst``."""
        return any(p.cuts(src, dst, now) for p in self.plan.partitions)

    def drops(self, message) -> bool:
        """Decide whether this message vanishes in flight."""
        if self.plan.drop_rate and self.rng.random() < self.plan.drop_rate:
            self.dropped += 1
            return True
        return False

    def duplicates(self, message) -> bool:
        """Decide whether this message is delivered a second time."""
        if self.plan.duplicate_rate and self.rng.random() < self.plan.duplicate_rate:
            self.duplicated += 1
            return True
        return False

    def extra_delay(self) -> float:
        """Jitter plus (probabilistically) a latency spike."""
        delay = 0.0
        if self.plan.jitter:
            delay += self.rng.random() * self.plan.jitter
        if self.plan.spike_rate and self.rng.random() < self.plan.spike_rate:
            delay += self.plan.spike_latency
        if delay:
            self.delayed += 1
        return delay

    def __repr__(self) -> str:
        return (
            f"FaultInjector(dropped={self.dropped}, duplicated={self.duplicated}, "
            f"delayed={self.delayed})"
        )
