"""Failure detection: heartbeats, suspicion timeouts, quarantine.

The paper's run-time adaptation (Section 2.5) assumes the channel root
*learns* that a destination became obsolete; the seed simulator told it
omnisciently.  This module supplies the observational machinery: peers
emit :class:`Heartbeat` beacons, a :class:`FailureDetector` tracks the
last time each watched peer was heard from and raises a *suspicion*
when the silence exceeds a timeout, and a :class:`PeerQuarantine`
(a small circuit breaker) keeps suspected peers out of routing until
they are heard from again.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Set


class Heartbeat:
    """Liveness beacon payload (peer → its advertisement holders)."""

    __slots__ = ("sender",)

    def __init__(self, sender: str):
        self.sender = sender

    def size_bytes(self) -> int:
        return 32

    def __repr__(self) -> str:
        return f"Heartbeat({self.sender})"


class PeerQuarantine:
    """A per-peer circuit breaker over suspicion reports.

    A peer trips open after ``trip_threshold`` failure reports and is
    excluded from routing until :meth:`restore` closes it again (a
    heartbeat or successful delivery is the half-open probe).
    """

    def __init__(self, trip_threshold: int = 1):
        if trip_threshold < 1:
            raise ValueError("trip_threshold must be at least 1")
        self.trip_threshold = trip_threshold
        self._failures: Dict[str, int] = {}
        self._open: Set[str] = set()

    @property
    def peers(self) -> Set[str]:
        """The currently quarantined peers (a live view copy)."""
        return set(self._open)

    def record_failure(self, peer_id: str) -> bool:
        """Report one failure; returns True when the breaker trips now."""
        if peer_id in self._open:
            return False
        count = self._failures.get(peer_id, 0) + 1
        self._failures[peer_id] = count
        if count >= self.trip_threshold:
            self._open.add(peer_id)
            return True
        return False

    def restore(self, peer_id: str) -> bool:
        """Close the breaker (peer observed alive); True when it was open."""
        self._failures.pop(peer_id, None)
        if peer_id in self._open:
            self._open.discard(peer_id)
            return True
        return False

    def is_quarantined(self, peer_id: str) -> bool:
        return peer_id in self._open

    def __len__(self) -> int:
        return len(self._open)

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self._open

    def __repr__(self) -> str:
        return f"PeerQuarantine(open={sorted(self._open)})"


class FailureDetector:
    """Suspicion-timeout failure detector over heartbeat observations.

    Args:
        owner: The observing peer's id (tracing only).
        network: The simulator (supplies the clock and ``call_later``).
        suspicion_timeout: How far (virtual time) a watched peer may
            lag behind the *freshest* observation of any watched peer
            before it is suspected.  Relative to the watermark rather
            than the wall clock, so the detector is robust to bursty
            heartbeat cadences: when beats arrive in synchronised
            rounds, live peers track the watermark closely and only a
            genuinely silent peer falls behind it.
        interval: Check period for the self-scheduling mode.
        on_suspect: Called once per transition alive → suspected.
        on_restore: Called once per transition suspected → alive.

    The detector works in two modes: **polled** (the harness calls
    :meth:`poll` at whatever cadence it drives heartbeats — keeps the
    discrete-event queue quiescent between rounds) or **self-scheduled**
    (:meth:`start` arms ``rounds`` periodic checks over ``call_later``).
    """

    def __init__(
        self,
        owner: str,
        network,
        suspicion_timeout: float = 30.0,
        interval: float = 10.0,
        on_suspect: Optional[Callable[[str], None]] = None,
        on_restore: Optional[Callable[[str], None]] = None,
    ):
        if suspicion_timeout <= 0 or interval <= 0:
            raise ValueError("timeout and interval must be positive")
        self.owner = owner
        self.network = network
        self.suspicion_timeout = suspicion_timeout
        self.interval = interval
        self.on_suspect = on_suspect
        self.on_restore = on_restore
        self._last_seen: Dict[str, float] = {}
        self.suspected: Set[str] = set()
        self._rounds_left = 0

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def watch(self, peer_id: str) -> None:
        """Track a peer, counting from the current virtual time."""
        self._last_seen.setdefault(peer_id, self.network.now)

    def unwatch(self, peer_id: str) -> None:
        self._last_seen.pop(peer_id, None)
        self.suspected.discard(peer_id)

    def watched(self) -> Set[str]:
        return set(self._last_seen)

    def beat(self, peer_id: str) -> None:
        """A heartbeat (or any message) arrived from ``peer_id``."""
        self._last_seen[peer_id] = self.network.now
        if peer_id in self.suspected:
            self.suspected.discard(peer_id)
            if self.on_restore is not None:
                self.on_restore(peer_id)

    # ------------------------------------------------------------------
    # suspicion checks
    # ------------------------------------------------------------------
    def poll(self) -> Set[str]:
        """Check every watched peer now; returns newly suspected peers.

        A peer is suspected when it lags the watermark (the freshest
        observation across all watched peers) by more than the
        suspicion timeout.  Limitation: if *every* watched peer goes
        silent at once the watermark goes stale and nobody is suspected
        until somebody beats again — acceptable for an observer that is
        itself part of the deployment (it would be partitioned too).
        """
        fresh: Set[str] = set()
        if not self._last_seen:
            return fresh
        watermark = max(self._last_seen.values())
        for peer_id in sorted(self._last_seen):
            if peer_id in self.suspected:
                continue
            if watermark - self._last_seen[peer_id] > self.suspicion_timeout:
                self.suspected.add(peer_id)
                fresh.add(peer_id)
                if self.on_suspect is not None:
                    self.on_suspect(peer_id)
        return fresh

    def start(self, rounds: int) -> None:
        """Self-schedule ``rounds`` periodic checks (bounded so the
        event loop still quiesces)."""
        if rounds <= 0:
            return
        self._rounds_left = rounds
        self.network.call_later(self.interval, self._tick)

    def stop(self) -> None:
        self._rounds_left = 0

    def _tick(self) -> None:
        if self._rounds_left <= 0:
            return
        self._rounds_left -= 1
        self.poll()
        if self._rounds_left > 0:
            self.network.call_later(self.interval, self._tick)

    def __repr__(self) -> str:
        return (
            f"FailureDetector({self.owner}, watched={len(self._last_seen)}, "
            f"suspected={sorted(self.suspected)})"
        )


class HeartbeatEmitter:
    """Periodic heartbeat sender for one peer.

    Like the detector it supports both an explicit :meth:`emit_once`
    (harness-driven rounds) and a bounded self-scheduling :meth:`start`.
    """

    def __init__(self, peer, targets: Iterable[str], interval: float = 10.0):
        self.peer = peer
        self.targets = tuple(targets)
        self.interval = interval
        self._rounds_left = 0

    def emit_once(self) -> int:
        """Send one heartbeat to every target; returns how many went out."""
        network = self.peer.network
        if network is None or network.is_down(self.peer.peer_id):
            return 0
        sent = 0
        for target in self.targets:
            self.peer.send(target, Heartbeat(self.peer.peer_id))
            sent += 1
        return sent

    def start(self, rounds: int) -> None:
        if rounds <= 0 or self.peer.network is None:
            return
        self._rounds_left = rounds
        self.peer.network.call_later(self.interval, self._tick)

    def stop(self) -> None:
        self._rounds_left = 0

    def _tick(self) -> None:
        if self._rounds_left <= 0:
            return
        self._rounds_left -= 1
        self.emit_once()
        if self._rounds_left > 0:
            self.peer.network.call_later(self.interval, self._tick)
