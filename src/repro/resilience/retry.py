"""Retry policies: per-request deadlines with exponential backoff.

A :class:`RetryPolicy` answers two questions for a requester that got
no reply: *how long do I wait before this attempt times out* and *do I
get another attempt*.  Timeouts grow exponentially and carry optional
deterministic jitter (drawn from the policy's own seeded RNG) so that
synchronised retransmit storms de-correlate without breaking replay.
"""

from __future__ import annotations

import random
import zlib
from typing import Optional


def stable_seed(*parts) -> int:
    """A deterministic seed from arbitrary string/int parts (used to
    give each peer its own jitter stream without sharing RNG state)."""
    text = "|".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


class RetryPolicy:
    """Exponential backoff + jitter over a bounded attempt budget.

    Args:
        max_attempts: Total tries, including the first send.
        base_timeout: Deadline of the first attempt (virtual time).
        backoff: Multiplier applied per further attempt.
        max_timeout: Cap on any single attempt's deadline.
        jitter: Fraction of the deadline added uniformly at random
            (``0.2`` means up to +20%); drawn from the policy's RNG.
        seed: RNG seed for the jitter stream.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_timeout: float = 25.0,
        backoff: float = 2.0,
        max_timeout: float = 240.0,
        jitter: float = 0.0,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if base_timeout <= 0:
            raise ValueError("base_timeout must be positive")
        self.max_attempts = max_attempts
        self.base_timeout = base_timeout
        self.backoff = backoff
        self.max_timeout = max_timeout
        self.jitter = jitter
        self.rng = random.Random(seed)

    def timeout(self, attempt: int) -> float:
        """The deadline for attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempts are 1-based")
        deadline = min(
            self.base_timeout * (self.backoff ** (attempt - 1)), self.max_timeout
        )
        if self.jitter:
            deadline += deadline * self.jitter * self.rng.random()
        return deadline

    def attempts_left(self, attempt: int) -> bool:
        """True when attempt number ``attempt`` is within budget."""
        return attempt <= self.max_attempts

    def for_peer(self, peer_id: str, seed: int = 0) -> "RetryPolicy":
        """A copy with a peer-specific jitter stream (deterministic)."""
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_timeout=self.base_timeout,
            backoff=self.backoff,
            max_timeout=self.max_timeout,
            jitter=self.jitter,
            seed=stable_seed(peer_id, seed),
        )

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(attempts={self.max_attempts}, base={self.base_timeout}, "
            f"backoff={self.backoff})"
        )
