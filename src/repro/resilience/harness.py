"""Chaos harness: drive a deployed system through a faulty network.

:func:`run_chaos` submits a query workload against a
:class:`~repro.systems.hybrid.HybridSystem` or
:class:`~repro.systems.adhoc.AdhocSystem` whose network runs under a
:class:`~repro.resilience.faults.FaultPlan`, interleaving heartbeat /
failure-detector rounds with the queries, and classifies every answer
(full, coverage-annotated partial, error, no reply).  The resulting
:class:`ChaosReport` carries the metric snapshot and a :meth:`digest
<ChaosReport.digest>` — two runs with the same seeds must produce
bit-identical digests, which is the replay invariant the chaos-smoke
CI job asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .faults import FaultPlan

#: (via_peer, rql_text) pairs.
Workload = Sequence[Tuple[str, str]]


@dataclass(frozen=True)
class QueryOutcome:
    """One workload query's fate under chaos."""

    query_id: str
    via_peer: str
    status: str  # "full" | "partial" | "error" | "no-reply"
    rows: Optional[int] = None
    error: Optional[str] = None
    coverage: Optional[str] = None

    @property
    def answered(self) -> bool:
        """Full answer or an honest coverage-annotated partial one."""
        return self.status in ("full", "partial")


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    outcomes: List[QueryOutcome]
    snapshot: tuple  # MetricSnapshot at the end of the run
    events: int  # simulator events processed

    def count(self, status: str) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == status)

    @property
    def answered(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.answered)

    @property
    def answer_ratio(self) -> float:
        return self.answered / len(self.outcomes) if self.outcomes else 1.0

    def digest(self) -> str:
        """A replay fingerprint: per-query fates plus every metric
        counter.  Purely a function of the seeds — identical across
        same-seed runs, or the simulation lost determinism."""
        lines = [
            f"{o.query_id} {o.status} rows={o.rows} cov={o.coverage or '-'}"
            for o in self.outcomes
        ]
        lines.append("metrics " + " ".join(repr(v) for v in self.snapshot))
        lines.append(f"events {self.events}")
        return "\n".join(lines)

    def summary(self) -> str:
        return (
            f"{len(self.outcomes)} queries: {self.count('full')} full, "
            f"{self.count('partial')} partial, {self.count('error')} error, "
            f"{self.count('no-reply')} no-reply "
            f"({self.answer_ratio:.0%} answered)"
        )


def heartbeat_round(system) -> None:
    """Drive one round of liveness traffic: every live peer's emitter
    beats, every super-peer failure detector polls.  A no-op for
    systems without either (plain ad-hoc deployments)."""
    for emitter in getattr(system, "heartbeat_emitters", {}).values():
        emitter.emit_once()
    for super_peer in getattr(system, "super_peers", {}).values():
        detector = getattr(super_peer, "failure_detector", None)
        if detector is not None:
            detector.poll()


def classify(result, via_peer: str, query_id: str) -> QueryOutcome:
    """Map a client-side :class:`~repro.peers.protocol.QueryResult`
    (or its absence) to a :class:`QueryOutcome`."""
    if result is None:
        return QueryOutcome(query_id, via_peer, "no-reply")
    if result.error is not None:
        return QueryOutcome(query_id, via_peer, "error", error=result.error)
    coverage = getattr(result, "coverage", None)
    if coverage is not None and not coverage.is_complete:
        return QueryOutcome(
            query_id,
            via_peer,
            "partial",
            rows=len(result.table),
            coverage=coverage.describe(),
        )
    return QueryOutcome(query_id, via_peer, "full", rows=len(result.table))


def run_chaos(
    system,
    workload: Workload,
    plan: Optional[FaultPlan] = None,
    heartbeats_per_query: int = 2,
    max_events: int = 1_000_000,
) -> ChaosReport:
    """Run ``workload`` under ``plan`` and classify every answer.

    The caller configures resilience first (``system.enable_resilience``)
    — the harness only installs the fault plan, drives the event loop
    and liveness rounds, and reads the client's results back.  Queries
    are submitted sequentially (each runs to quiescence before the
    next), so crash/recovery schedules in the plan interleave with the
    stream at their virtual times.
    """
    network = system.network
    if plan is not None:
        network.install_faults(plan)
    client = system.add_client("chaos-client")
    events = 0
    submitted: List[Tuple[str, str]] = []
    for via_peer, text in workload:
        for _ in range(heartbeats_per_query):
            heartbeat_round(system)
        query_id = client.submit(via_peer, text)
        submitted.append((query_id, via_peer))
        events += network.run(max_events=max_events)
    # settle stragglers (late retransmits, recovery events)
    for _ in range(heartbeats_per_query):
        heartbeat_round(system)
    events += network.run(max_events=max_events)
    outcomes = [
        classify(client.result(query_id), via_peer, query_id)
        for query_id, via_peer in submitted
    ]
    return ChaosReport(outcomes, system.network.metrics.snapshot(), events)
