"""Graceful degradation: coverage-annotated partial answers.

When run-time adaptation cannot repair a plan — every provider of some
path pattern is dead, quarantined or out of replan budget — aborting
the whole query throws away the answerable part.  Following the
semantic-loss line of work ("Managing Semantic Loss during Query
Reformulation in PDMS"), the query root instead *restricts* the query
to its answerable path patterns, executes that sub-plan, and returns
the bindings together with a :class:`Coverage` record stating exactly
which patterns were answered, which were dropped and which peers were
excluded — an annotated partial answer rather than a failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.annotations import AnnotatedQueryPattern
from ..rql.pattern import QueryPattern


@dataclass(frozen=True)
class Coverage:
    """Which parts of a query a (possibly partial) answer covers.

    Attributes:
        answered: Labels of the path patterns the answer covers.
        unanswered: Labels of the path patterns dropped from the plan.
        excluded_peers: Peers excluded as failed/suspected.
        attempts: Execution attempts spent before degrading.
    """

    answered: Tuple[str, ...]
    unanswered: Tuple[str, ...] = ()
    excluded_peers: Tuple[str, ...] = ()
    attempts: int = 1

    @property
    def is_complete(self) -> bool:
        return not self.unanswered

    @property
    def ratio(self) -> float:
        total = len(self.answered) + len(self.unanswered)
        return len(self.answered) / total if total else 0.0

    def size_bytes(self) -> int:
        return 16 + 8 * (
            len(self.answered) + len(self.unanswered) + len(self.excluded_peers)
        )

    def describe(self) -> str:
        if self.is_complete:
            return f"complete ({len(self.answered)} patterns)"
        return (
            f"partial {len(self.answered)}/{len(self.answered) + len(self.unanswered)} "
            f"patterns; missing {', '.join(self.unanswered)}; "
            f"excluded {', '.join(self.excluded_peers) or '-'}"
        )


def full_coverage(annotated: AnnotatedQueryPattern, attempts: int = 1) -> Coverage:
    """A coverage record for a fully answered query."""
    return Coverage(
        answered=tuple(p.label for p in annotated.query_pattern),
        attempts=attempts,
    )


def restrict_to_answerable(
    annotated: AnnotatedQueryPattern,
) -> Optional[AnnotatedQueryPattern]:
    """The sub-query restricted to annotated path patterns.

    Returns a new :class:`AnnotatedQueryPattern` over a new
    :class:`QueryPattern` keeping only the patterns that still have at
    least one relevant peer (in original FROM order, so the spanning
    tree is rebuilt over the survivors), or ``None`` when no pattern is
    answerable at all.
    """
    kept = [p for p in annotated.query_pattern if annotated.annotations(p)]
    if not kept:
        return None
    if len(kept) == len(annotated.query_pattern.patterns):
        return annotated
    source = annotated.query_pattern
    restricted_pattern = QueryPattern(kept, source.projections, source.schema)
    restricted = AnnotatedQueryPattern(restricted_pattern)
    for pattern in kept:
        restricted.extend_trusted(pattern, annotated.annotations(pattern))
    return restricted
