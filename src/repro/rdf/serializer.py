"""N-Triples-style serialisation and parsing for graphs.

The format is the plain line-oriented N-Triples subset: one triple per
line, terminated by `` .``, with ``<uri>``, ``_:bnode`` and quoted
literals (optional ``@lang`` / ``^^<datatype>``).  Used for persisting
peer bases and for shipping graph fragments across simulated channels.
"""

from __future__ import annotations

from typing import List

from ..errors import ParseError
from .graph import Graph
from .terms import BNode, Literal, URI
from .triple import Triple


def serialize(graph: Graph) -> str:
    """Serialise a graph as sorted N-Triples text."""
    return "\n".join(sorted(t.n3() for t in graph)) + ("\n" if len(graph) else "")


def deserialize(text: str) -> Graph:
    """Parse N-Triples text into a :class:`Graph`."""
    graph = Graph()
    # split strictly on '\n': escaped literals never contain a raw one,
    # while exotic Unicode line separators (U+2028...) may legitimately
    # appear inside literal text and must not break statements apart
    for line_no, line in enumerate(text.split("\n"), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        graph.add_triple(_parse_line(stripped, line_no))
    return graph


def _parse_line(line: str, line_no: int) -> Triple:
    terms, pos = [], 0
    while pos < len(line) and len(terms) < 3:
        pos = _skip_ws(line, pos)
        term, pos = _parse_term(line, pos, line_no)
        terms.append(term)
    pos = _skip_ws(line, pos)
    if len(terms) != 3 or pos >= len(line) or line[pos] != ".":
        raise ParseError(f"line {line_no}: malformed N-Triples statement", line, pos)
    subject, predicate, obj = terms
    if not isinstance(predicate, URI):
        raise ParseError(f"line {line_no}: predicate must be a URI", line, 0)
    return Triple(subject, predicate, obj)


def _skip_ws(line: str, pos: int) -> int:
    while pos < len(line) and line[pos] in " \t":
        pos += 1
    return pos


def _parse_term(line: str, pos: int, line_no: int):
    if pos >= len(line):
        raise ParseError(f"line {line_no}: unexpected end of line", line, pos)
    char = line[pos]
    if char == "<":
        end = line.find(">", pos)
        if end == -1:
            raise ParseError(f"line {line_no}: unterminated URI", line, pos)
        return URI(line[pos + 1 : end]), end + 1
    if char == "_" and line[pos : pos + 2] == "_:":
        end = pos + 2
        while end < len(line) and (line[end].isalnum() or line[end] in "-_"):
            end += 1
        return BNode(line[pos + 2 : end]), end
    if char == '"':
        return _parse_literal(line, pos, line_no)
    raise ParseError(f"line {line_no}: unexpected character {char!r}", line, pos)


def _parse_literal(line: str, pos: int, line_no: int):
    chars: List[str] = []
    i = pos + 1
    while i < len(line):
        c = line[i]
        if c == "\\" and i + 1 < len(line):
            escape = line[i + 1]
            chars.append(
                {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}.get(
                    escape, escape
                )
            )
            i += 2
            continue
        if c == '"':
            break
        chars.append(c)
        i += 1
    else:
        raise ParseError(f"line {line_no}: unterminated literal", line, pos)
    lexical = "".join(chars)
    i += 1
    if line[i : i + 1] == "@":
        end = i + 1
        while end < len(line) and (line[end].isalnum() or line[end] == "-"):
            end += 1
        return Literal(lexical, language=line[i + 1 : end]), end
    if line[i : i + 2] == "^^":
        if line[i + 2 : i + 3] != "<":
            raise ParseError(f"line {line_no}: datatype must be a URI", line, i)
        end = line.find(">", i + 2)
        if end == -1:
            raise ParseError(f"line {line_no}: unterminated datatype URI", line, i)
        return Literal(lexical, datatype=URI(line[i + 3 : end])), end + 1
    return Literal(lexical), i


def graph_size_bytes(graph: Graph) -> int:
    """Approximate wire size of a graph: length of its serialisation.

    The network simulator uses this to charge bandwidth for shipped
    RDF fragments.
    """
    return sum(len(t.n3()) + 1 for t in graph)
