"""The RDF and RDFS vocabulary terms the library depends on."""

from __future__ import annotations

from .terms import Namespace

#: The RDF namespace.
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
#: The RDF Schema namespace.
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
#: XML Schema datatypes namespace.
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")

#: ``rdf:type`` — instance-of link between a resource and a class.
TYPE = RDF.type
#: ``rdf:Property`` — the class of properties.
PROPERTY = RDF.Property
#: ``rdfs:Class`` — the class of classes.
CLASS = RDFS.Class
#: ``rdfs:subClassOf`` — class specialisation.
SUBCLASSOF = RDFS.subClassOf
#: ``rdfs:subPropertyOf`` — property specialisation.
SUBPROPERTYOF = RDFS.subPropertyOf
#: ``rdfs:domain`` — the class of a property's subjects.
DOMAIN = RDFS.domain
#: ``rdfs:range`` — the class of a property's objects.
RANGE = RDFS.range
#: ``rdfs:Resource`` — the universal class.
RESOURCE = RDFS.Resource
#: ``rdfs:Literal`` — the class of literal values.
LITERAL_CLASS = RDFS.Literal
