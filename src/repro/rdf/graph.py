"""An indexed in-memory RDF triple store.

The store maintains three hash indexes (subject, predicate, object) so
the single-slot lookups the RQL evaluator performs are O(matches).
Pattern matching with any combination of bound/unbound slots is
supported through :meth:`Graph.triples`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set

from .terms import ObjectTerm, SubjectTerm, Term, URI
from .triple import Triple
from .vocabulary import TYPE


class Graph:
    """A set of RDF triples with per-slot hash indexes.

    Example:
        >>> from repro.rdf import Graph, Namespace
        >>> ex = Namespace("http://example.org/")
        >>> g = Graph()
        >>> _ = g.add(ex.alice, ex.knows, ex.bob)
        >>> len(g)
        1
    """

    def __init__(self, triples: Optional[Iterable[Triple]] = None):
        self._triples: Set[Triple] = set()
        self._by_subject: Dict[Term, Set[Triple]] = defaultdict(set)
        self._by_predicate: Dict[URI, Set[Triple]] = defaultdict(set)
        self._by_object: Dict[Term, Set[Triple]] = defaultdict(set)
        #: bumped on every effective mutation — derived structures
        #: (encoded column caches, statistics) key their validity on it
        self.version = 0
        if triples:
            for t in triples:
                self.add_triple(t)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, subject: SubjectTerm, predicate: URI, obj: ObjectTerm) -> Triple:
        """Add the statement ``(subject, predicate, obj)`` and return it."""
        triple = Triple(subject, predicate, obj)
        self.add_triple(triple)
        return triple

    def add_triple(self, triple: Triple) -> bool:
        """Add an already-constructed :class:`Triple` (idempotent);
        return True when the statement was not already asserted."""
        if triple in self._triples:
            return False
        self._triples.add(triple)
        self._by_subject[triple.subject].add(triple)
        self._by_predicate[triple.predicate].add(triple)
        self._by_object[triple.object].add(triple)
        self.version += 1
        return True

    def remove_triple(self, triple: Triple) -> bool:
        """Remove a triple; return True if it was present."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._discard_index(self._by_subject, triple.subject, triple)
        self._discard_index(self._by_predicate, triple.predicate, triple)
        self._discard_index(self._by_object, triple.object, triple)
        self.version += 1
        return True

    @staticmethod
    def _discard_index(index: Dict, key: Term, triple: Triple) -> None:
        bucket = index.get(key)
        if bucket is None:
            return
        bucket.discard(triple)
        if not bucket:
            del index[key]

    def update(self, triples: Iterable[Triple]) -> None:
        """Add every triple from an iterable."""
        for t in triples:
            self.add_triple(t)

    def clear(self) -> None:
        """Remove all triples."""
        if self._triples:
            self.version += 1
        self._triples.clear()
        self._by_subject.clear()
        self._by_predicate.clear()
        self._by_object.clear()

    # ------------------------------------------------------------------
    # pattern matching
    # ------------------------------------------------------------------
    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the pattern; ``None`` means wildcard.

        The smallest applicable index is scanned, and remaining bound
        slots are checked per candidate.
        """
        candidates = self._candidate_set(subject, predicate, obj)
        if candidates is None:
            candidates = self._triples
        for triple in candidates:
            if triple.matches(subject, predicate, obj):
                yield triple

    def _candidate_set(
        self,
        subject: Optional[Term],
        predicate: Optional[URI],
        obj: Optional[Term],
    ) -> Optional[Set[Triple]]:
        """Pick the smallest index bucket covering the bound slots."""
        buckets = []
        if subject is not None:
            buckets.append(self._by_subject.get(subject, set()))
        if predicate is not None:
            buckets.append(self._by_predicate.get(predicate, set()))
        if obj is not None:
            buckets.append(self._by_object.get(obj, set()))
        if not buckets:
            return None
        return min(buckets, key=len)

    def subjects(self, predicate: Optional[URI] = None, obj: Optional[Term] = None) -> Iterator[Term]:
        """Yield distinct subjects of triples matching ``(?, predicate, obj)``."""
        seen = set()
        for t in self.triples(None, predicate, obj):
            if t.subject not in seen:
                seen.add(t.subject)
                yield t.subject

    def objects(self, subject: Optional[Term] = None, predicate: Optional[URI] = None) -> Iterator[Term]:
        """Yield distinct objects of triples matching ``(subject, predicate, ?)``."""
        seen = set()
        for t in self.triples(subject, predicate, None):
            if t.object not in seen:
                seen.add(t.object)
                yield t.object

    def predicates(self) -> Iterator[URI]:
        """Yield the distinct predicates present in the graph."""
        return iter(set(self._by_predicate))

    def instances_of(self, cls: URI) -> Iterator[Term]:
        """Yield resources directly typed ``rdf:type cls`` (no inference)."""
        return self.subjects(TYPE, cls)

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> int:
        """Number of triples matching the pattern."""
        return sum(1 for _ in self.triples(subject, predicate, obj))

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __bool__(self) -> bool:
        return bool(self._triples)

    def copy(self) -> "Graph":
        """A shallow copy (triples are immutable, so this is safe)."""
        return Graph(self._triples)

    def __or__(self, other: "Graph") -> "Graph":
        merged = self.copy()
        merged.update(other)
        return merged

    def __repr__(self) -> str:
        return f"Graph(<{len(self)} triples>)"
