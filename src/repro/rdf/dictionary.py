"""Dictionary encoding: interned RDF terms ↔ dense int32 IDs.

Columnar engines dictionary-encode values so the hot join/filter paths
work on small integers instead of boxed terms; the dictionary maps the
integers back only when results are materialised.  A
:class:`TermDictionary` assigns each distinct :class:`Term` a dense id
in first-seen order, so a peer's dictionary is append-only and stable:
ids already shipped to a channel stay valid for the peer's lifetime.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .terms import Term

#: Encoded ids are conceptually int32 (the wire/width budget a real
#: columnar store would use); interning past this is a bug.
MAX_TERM_ID = 2**31 - 1


class TermDictionary:
    """A bidirectional Term ↔ dense-int mapping (append-only).

    Example:
        >>> from repro.rdf import Namespace
        >>> ex = Namespace("http://example.org/")
        >>> d = TermDictionary()
        >>> d.encode(ex.alice)
        0
        >>> d.encode(ex.alice)  # interned: same id
        0
        >>> d.decode(0) == ex.alice
        True
    """

    def __init__(self) -> None:
        self._terms: List[Term] = []
        self._ids: Dict[Term, int] = {}

    def encode(self, term: Term) -> int:
        """The term's id, interning it on first sight."""
        tid = self._ids.get(term)
        if tid is None:
            tid = len(self._terms)
            if tid > MAX_TERM_ID:
                raise OverflowError("term dictionary exceeded int32 id space")
            self._terms.append(term)
            self._ids[term] = tid
        return tid

    def encode_many(self, terms: Iterable[Term]) -> List[int]:
        return [self.encode(term) for term in terms]

    def decode(self, tid: int) -> Term:
        """The term behind an id; raises ``IndexError`` for unknown ids."""
        if tid < 0:
            raise IndexError(f"negative term id {tid}")
        return self._terms[tid]

    def decode_many(self, ids: Iterable[int]) -> List[Term]:
        terms = self._terms
        return [terms[tid] for tid in ids]

    def lookup(self, term: Term):
        """The term's id if interned, else ``None`` (no interning)."""
        return self._ids.get(term)

    def entries(self, ids: Iterable[int]) -> Tuple[Tuple[int, Term], ...]:
        """``(id, term)`` pairs for a subset of ids — the wire payload
        that lets a receiver decode columns referencing them."""
        terms = self._terms
        return tuple((tid, terms[tid]) for tid in sorted(set(ids)))

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def __repr__(self) -> str:
        return f"TermDictionary(<{len(self)} terms>)"


def used_ids(columns: Sequence[Sequence[int]]) -> List[int]:
    """The distinct ids referenced by a set of encoded columns."""
    seen = set()
    for column in columns:
        seen.update(column)
    return sorted(seen)
