"""The RDF triple value object."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .terms import ObjectTerm, SubjectTerm, Term, URI


class Triple:
    """An RDF statement ``(subject, predicate, object)``.

    Immutable and hashable so triples can live in sets and index maps.
    """

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject: SubjectTerm, predicate: URI, obj: ObjectTerm):
        if not isinstance(predicate, URI):
            raise TypeError(f"triple predicate must be a URI, got {predicate!r}")
        object.__setattr__(self, "subject", subject)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "object", obj)

    def __setattr__(self, name, val):
        raise AttributeError("Triple is immutable")

    def __iter__(self) -> Iterator[Term]:
        return iter((self.subject, self.predicate, self.object))

    def as_tuple(self) -> Tuple[Term, URI, Term]:
        """Return the ``(s, p, o)`` tuple."""
        return (self.subject, self.predicate, self.object)

    def n3(self) -> str:
        """Serialise in N-Triples syntax (without trailing newline)."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    def matches(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> bool:
        """True when every non-``None`` slot equals this triple's slot."""
        if subject is not None and subject != self.subject:
            return False
        if predicate is not None and predicate != self.predicate:
            return False
        if obj is not None and obj != self.object:
            return False
        return True

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Triple)
            and self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self) -> int:
        return hash((self.subject, self.predicate, self.object))
