"""RDFS inference over instance data.

SQPeer's query semantics are *schema-aware*: asking for instances of a
class also returns instances of its subclasses, and asking for a
property also returns statements of its subproperties (that is how peer
P4, which only holds ``prop4`` data, answers a ``prop1`` query in the
paper's Figure 2).  :class:`InferredView` provides that semantics lazily
over a base :class:`~repro.rdf.graph.Graph` without materialising the
closure; :func:`materialize_closure` computes the full RDFS closure when
an application wants a static graph.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from .graph import Graph
from .schema import Schema
from .terms import Term, URI
from .triple import Triple
from .vocabulary import TYPE


class InferredView:
    """A read-only, RDFS-entailed view over a base graph.

    Args:
        base: The asserted triples.
        schema: The schema supplying class/property hierarchies.
    """

    def __init__(self, base: Graph, schema: Schema):
        self._base = base
        self._schema = schema

    @property
    def base(self) -> Graph:
        """The underlying asserted graph."""
        return self._base

    @property
    def schema(self) -> Schema:
        return self._schema

    def triples(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[URI] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield entailed triples matching the pattern.

        Entailment applied:

        * a query on property ``p`` also scans every ``p' ⊑ p``
          (results are reported with the *asserted* predicate);
        * a query on ``rdf:type C`` also scans every ``C' ⊑ C`` and
          derives types from property domain/range declarations.
        """
        if predicate is None:
            yield from self._base.triples(subject, None, obj)
            return
        if predicate == TYPE:
            yield from self._type_triples(subject, obj)
            return
        if self._schema.has_property(predicate):
            seen: Set[Triple] = set()
            for sub_prop in self._schema.subproperties(predicate):
                for t in self._base.triples(subject, sub_prop, obj):
                    if t not in seen:
                        seen.add(t)
                        yield t
            return
        yield from self._base.triples(subject, predicate, obj)

    def _type_triples(self, subject: Optional[Term], obj: Optional[Term]) -> Iterator[Triple]:
        """Entailed ``rdf:type`` statements.

        A resource is an instance of class ``C`` when it is asserted to
        be an instance of any ``C' ⊑ C``, or when it occurs as the
        subject (resp. object) of a property whose domain (resp. range)
        is subsumed by ``C``.
        """
        if obj is not None and isinstance(obj, URI) and self._schema.has_class(obj):
            emitted: Set[Term] = set()
            for member in self.instances_of(obj):
                if subject is not None and member != subject:
                    continue
                if member not in emitted:
                    emitted.add(member)
                    yield Triple(member, TYPE, obj)
            return
        yield from self._base.triples(subject, TYPE, obj)

    def instances_of(self, cls: URI) -> Iterator[Term]:
        """Yield distinct resources entailed to be instances of ``cls``."""
        seen: Set[Term] = set()
        for sub_cls in self._schema.subclasses(cls):
            for member in self._base.subjects(TYPE, sub_cls):
                if member not in seen:
                    seen.add(member)
                    yield member
        for prop_def in self._schema:
            if self._schema.is_subclass(prop_def.domain, cls):
                for sub_prop in self._schema.subproperties(prop_def.uri):
                    for t in self._base.triples(None, sub_prop, None):
                        if t.subject not in seen:
                            seen.add(t.subject)
                            yield t.subject
            if self._schema.is_subclass(prop_def.range, cls):
                for sub_prop in self._schema.subproperties(prop_def.uri):
                    for t in self._base.triples(None, sub_prop, None):
                        if t.object not in seen:
                            seen.add(t.object)
                            yield t.object

    def is_instance_of(self, resource: Term, cls: URI) -> bool:
        """True when ``resource`` is an entailed instance of ``cls``."""
        for t in self._base.triples(resource, TYPE, None):
            if isinstance(t.object, URI) and self._schema.has_class(t.object):
                if self._schema.is_subclass(t.object, cls):
                    return True
        for t in self._base.triples(resource, None, None):
            if self._schema.has_property(t.predicate):
                domain = self._schema.domain_of(t.predicate)
                if self._schema.is_subclass(domain, cls):
                    return True
        for t in self._base.triples(None, None, resource):
            if self._schema.has_property(t.predicate):
                range_ = self._schema.range_of(t.predicate)
                if self._schema.is_subclass(range_, cls):
                    return True
        return False


def materialize_closure(base: Graph, schema: Schema) -> Graph:
    """Compute the RDFS closure of ``base`` under ``schema`` as a new graph.

    Adds: entailed ``rdf:type`` statements from subclass edges and from
    property domain/range, plus entailed property statements from
    subproperty edges.
    """
    closed = base.copy()
    # property entailment: p' ⊑ p and (s, p', o)  ⇒  (s, p, o)
    for prop_def in schema:
        for parent in schema.superproperties(prop_def.uri):
            if parent == prop_def.uri:
                continue
            for t in base.triples(None, prop_def.uri, None):
                closed.add(t.subject, parent, t.object)
    # domain/range entailment
    for prop_def in schema:
        for t in base.triples(None, prop_def.uri, None):
            closed.add(t.subject, TYPE, prop_def.domain)
            if schema.has_class(prop_def.range):
                closed.add(t.object, TYPE, prop_def.range)
    # subclass entailment (iterate until fixpoint over one level is enough
    # because superclasses() is already transitive)
    for t in list(closed.triples(None, TYPE, None)):
        if isinstance(t.object, URI) and schema.has_class(t.object):
            for parent in schema.superclasses(t.object):
                closed.add(t.subject, TYPE, parent)
    return closed
