"""RDF term model: URIs, literals, blank nodes, variables and namespaces.

Terms are small immutable value objects.  They hash and compare by
value, so they can be used freely as dictionary keys and set members —
which the indexed :class:`~repro.rdf.graph.Graph` relies on.
"""

from __future__ import annotations

from typing import Optional, Union


class Term:
    """Abstract base for every RDF term."""

    __slots__ = ()

    def n3(self) -> str:
        """Render the term in N-Triples-like concrete syntax."""
        raise NotImplementedError


class URI(Term):
    """An absolute URI reference identifying a resource.

    Args:
        value: The URI string, e.g. ``"http://example.org/ns#C1"``.
    """

    __slots__ = ("value",)

    def __init__(self, value: str):
        if not value:
            raise ValueError("URI value must be a non-empty string")
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, val):  # immutability guard
        raise AttributeError("URI is immutable")

    @property
    def local_name(self) -> str:
        """The fragment/last path segment, e.g. ``C1`` for ``...#C1``."""
        for sep in ("#", "/", ":"):
            if sep in self.value:
                return self.value.rsplit(sep, 1)[1]
        return self.value

    @property
    def namespace(self) -> str:
        """Everything up to and including the last ``#`` or ``/``."""
        for sep in ("#", "/"):
            if sep in self.value:
                return self.value.rsplit(sep, 1)[0] + sep
        return ""

    def n3(self) -> str:
        return f"<{self.value}>"

    def __repr__(self) -> str:
        return f"URI({self.value!r})"

    def __str__(self) -> str:
        return self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, URI) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("URI", self.value))

    def __lt__(self, other: "URI"):
        if not isinstance(other, URI):
            return NotImplemented
        return self.value < other.value


class Literal(Term):
    """An RDF literal with optional datatype or language tag.

    Args:
        lexical: The lexical form.  Non-string python values
            (int/float/bool) are accepted and stored with an inferred
            datatype so workloads can populate bases conveniently.
        datatype: Optional datatype URI.
        language: Optional BCP-47 language tag (mutually exclusive with
            ``datatype``).
    """

    __slots__ = ("lexical", "datatype", "language")

    _XSD = "http://www.w3.org/2001/XMLSchema#"

    def __init__(
        self,
        lexical: Union[str, int, float, bool],
        datatype: Optional[URI] = None,
        language: Optional[str] = None,
    ):
        if datatype is not None and language is not None:
            raise ValueError("a literal cannot have both datatype and language")
        if isinstance(lexical, bool):
            datatype = datatype or URI(self._XSD + "boolean")
            lexical = "true" if lexical else "false"
        elif isinstance(lexical, int):
            datatype = datatype or URI(self._XSD + "integer")
            lexical = str(lexical)
        elif isinstance(lexical, float):
            datatype = datatype or URI(self._XSD + "double")
            lexical = repr(lexical)
        object.__setattr__(self, "lexical", lexical)
        object.__setattr__(self, "datatype", datatype)
        object.__setattr__(self, "language", language)

    def __setattr__(self, name, val):
        raise AttributeError("Literal is immutable")

    def to_python(self) -> Union[str, int, float, bool]:
        """Convert back to a native Python value when the datatype is known."""
        if self.datatype is None:
            return self.lexical
        local = self.datatype.local_name
        if local in ("integer", "int", "long"):
            return int(self.lexical)
        if local in ("double", "float", "decimal"):
            return float(self.lexical)
        if local == "boolean":
            return self.lexical == "true"
        return self.lexical

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        out = f'"{escaped}"'
        if self.language:
            out += f"@{self.language}"
        elif self.datatype:
            out += f"^^{self.datatype.n3()}"
        return out

    def __repr__(self) -> str:
        return f"Literal({self.lexical!r})"

    def __str__(self) -> str:
        return self.lexical

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Literal)
            and self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash(("Literal", self.lexical, self.datatype, self.language))


class BNode(Term):
    """A blank node with a graph-local identifier."""

    __slots__ = ("id",)

    _counter = 0

    def __init__(self, node_id: Optional[str] = None):
        if node_id is None:
            BNode._counter += 1
            node_id = f"b{BNode._counter}"
        object.__setattr__(self, "id", node_id)

    def __setattr__(self, name, val):
        raise AttributeError("BNode is immutable")

    def n3(self) -> str:
        return f"_:{self.id}"

    def __repr__(self) -> str:
        return f"BNode({self.id!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, BNode) and self.id == other.id

    def __hash__(self) -> int:
        return hash(("BNode", self.id))


class Variable(Term):
    """A query variable (``X``, ``Y``...), used in patterns, never in data."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name:
            raise ValueError("variable name must be non-empty")
        object.__setattr__(self, "name", name)

    def __setattr__(self, name, val):
        raise AttributeError("Variable is immutable")

    def n3(self) -> str:
        return f"?{self.name}"

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))


class Namespace:
    """A URI prefix that manufactures :class:`URI` terms by attribute access.

    Example:
        >>> n1 = Namespace("http://example.org/n1#")
        >>> n1.C1
        URI('http://example.org/n1#C1')
        >>> n1["prop1"]
        URI('http://example.org/n1#prop1')
    """

    __slots__ = ("uri",)

    def __init__(self, uri: str):
        object.__setattr__(self, "uri", uri)

    def __setattr__(self, name, val):
        raise AttributeError("Namespace is immutable")

    def __getattr__(self, name: str) -> URI:
        if name.startswith("__"):
            raise AttributeError(name)
        return URI(self.uri + name)

    def __getitem__(self, name: str) -> URI:
        return URI(self.uri + name)

    def __contains__(self, term: Term) -> bool:
        return isinstance(term, URI) and term.value.startswith(self.uri)

    def __repr__(self) -> str:
        return f"Namespace({self.uri!r})"

    def __str__(self) -> str:
        return self.uri

    def __eq__(self, other) -> bool:
        return isinstance(other, Namespace) and self.uri == other.uri

    def __hash__(self) -> int:
        return hash(("Namespace", self.uri))


#: Union of the term kinds that may appear in a triple's subject slot.
SubjectTerm = Union[URI, BNode]
#: Union of the term kinds that may appear in a triple's object slot.
ObjectTerm = Union[URI, BNode, Literal]
