"""Filesystem persistence for graphs and schemas.

Peers joining "at will" need their description bases on disk between
sessions; graphs and schemas round-trip through the N-Triples
serialisation.
"""

from __future__ import annotations


from .graph import Graph
from .schema import Schema
from .serializer import deserialize, serialize
from .terms import Namespace


def save_graph(graph: Graph, path: str) -> int:
    """Write a graph as N-Triples; returns the number of triples."""
    text = serialize(graph)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return len(graph)


def load_graph(path: str) -> Graph:
    """Read an N-Triples file into a graph.

    Raises:
        FileNotFoundError: When the path does not exist.
    """
    with open(path, "r", encoding="utf-8") as handle:
        return deserialize(handle.read())


def save_schema(schema: Schema, path: str) -> int:
    """Persist a schema via its RDF serialisation."""
    return save_graph(schema.to_graph(), path)


def load_schema(path: str, namespace_uri: str, name: str = "") -> Schema:
    """Rebuild a schema from its persisted RDF serialisation."""
    graph = load_graph(path)
    return Schema.from_graph(graph, Namespace(namespace_uri), name)
