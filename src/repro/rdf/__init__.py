"""RDF/S data model substrate.

Provides terms, triples, an indexed graph store, the RDF/S schema model
with subsumption, RDFS inference, and N-Triples serialisation.
"""

from .dictionary import TermDictionary
from .graph import Graph
from .inference import InferredView, materialize_closure
from .schema import PropertyDef, Schema
from .serializer import deserialize, graph_size_bytes, serialize
from .store_io import load_graph, load_schema, save_graph, save_schema
from .terms import BNode, Literal, Namespace, Term, URI, Variable
from .triple import Triple
from .vocabulary import (
    CLASS,
    DOMAIN,
    LITERAL_CLASS,
    PROPERTY,
    RANGE,
    RDF,
    RDFS,
    RESOURCE,
    SUBCLASSOF,
    SUBPROPERTYOF,
    TYPE,
    XSD,
)

__all__ = [
    "BNode",
    "CLASS",
    "DOMAIN",
    "Graph",
    "InferredView",
    "LITERAL_CLASS",
    "Literal",
    "Namespace",
    "PROPERTY",
    "PropertyDef",
    "RANGE",
    "RDF",
    "RDFS",
    "RESOURCE",
    "SUBCLASSOF",
    "SUBPROPERTYOF",
    "Schema",
    "TYPE",
    "Term",
    "TermDictionary",
    "Triple",
    "URI",
    "Variable",
    "XSD",
    "deserialize",
    "graph_size_bytes",
    "load_graph",
    "load_schema",
    "materialize_closure",
    "save_graph",
    "save_schema",
    "serialize",
]
