"""The RDF/S schema model: class and property hierarchies.

A :class:`Schema` captures the intensional part of a community RDF/S
vocabulary — the classes, the properties with their domain and range,
and the two specialisation DAGs (``rdfs:subClassOf`` and
``rdfs:subPropertyOf``).  Subsumption queries (`is_subclass`,
`is_subproperty`) are reflexive-transitive reachability tests with
memoised ancestor sets; they are the primitive the SQPeer routing
algorithm's ``isSubsumed`` check is built on (paper Section 2.3).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set

from ..errors import SchemaError
from .graph import Graph
from .terms import Namespace, URI
from .vocabulary import CLASS, DOMAIN, PROPERTY, RANGE, SUBCLASSOF, SUBPROPERTYOF, TYPE


class PropertyDef:
    """A property declaration: name plus domain and range classes."""

    __slots__ = ("uri", "domain", "range")

    def __init__(self, uri: URI, domain: URI, range_: URI):
        object.__setattr__(self, "uri", uri)
        object.__setattr__(self, "domain", domain)
        object.__setattr__(self, "range", range_)

    def __setattr__(self, name, val):
        raise AttributeError("PropertyDef is immutable")

    def __repr__(self) -> str:
        return (
            f"PropertyDef({self.uri.local_name}: "
            f"{self.domain.local_name} -> {self.range.local_name})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PropertyDef)
            and self.uri == other.uri
            and self.domain == other.domain
            and self.range == other.range
        )

    def __hash__(self) -> int:
        return hash((self.uri, self.domain, self.range))


class Schema:
    """An RDF/S schema with subsumption reasoning.

    Args:
        namespace: The namespace that identifies this community schema
            (e.g. ``n1`` in the paper's Figure 1).
        name: Optional human-readable name.

    Example — the paper's Figure 1 schema:
        >>> from repro.rdf import Namespace, Schema
        >>> n1 = Namespace("http://example.org/n1#")
        >>> s = Schema(n1)
        >>> for c in ("C1", "C2", "C3", "C4", "C5", "C6"):
        ...     s.add_class(n1[c])
        >>> s.add_subclass(n1.C5, n1.C1)
        >>> s.add_subclass(n1.C6, n1.C2)
        >>> s.add_property(n1.prop1, n1.C1, n1.C2)
        >>> s.add_property(n1.prop4, n1.C5, n1.C6, subproperty_of=n1.prop1)
        >>> s.is_subproperty(n1.prop4, n1.prop1)
        True
    """

    def __init__(self, namespace: Namespace, name: str = ""):
        self.namespace = namespace
        self.name = name or namespace.uri
        self._classes: Set[URI] = set()
        self._properties: Dict[URI, PropertyDef] = {}
        self._super_classes: Dict[URI, Set[URI]] = {}
        self._super_properties: Dict[URI, Set[URI]] = {}
        self._class_ancestors: Dict[URI, FrozenSet[URI]] = {}
        self._property_ancestors: Dict[URI, FrozenSet[URI]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_class(self, cls: URI, subclass_of: Optional[Iterable[URI]] = None) -> URI:
        """Declare a class, optionally as a subclass of existing classes."""
        self._classes.add(cls)
        self._super_classes.setdefault(cls, set())
        if subclass_of:
            for parent in subclass_of:
                self.add_subclass(cls, parent)
        self._invalidate_caches()
        return cls

    def add_subclass(self, child: URI, parent: URI) -> None:
        """Assert ``child rdfs:subClassOf parent``; both must be declared."""
        for cls in (child, parent):
            if cls not in self._classes:
                raise SchemaError(f"undeclared class {cls}")
        if child == parent:
            raise SchemaError(f"class {child} cannot be its own subclass")
        self._super_classes.setdefault(child, set()).add(parent)
        self._assert_acyclic(child, self._super_classes, "class")
        self._invalidate_caches()

    def add_property(
        self,
        prop: URI,
        domain: URI,
        range_: URI,
        subproperty_of: Optional[URI] = None,
    ) -> PropertyDef:
        """Declare a property with its domain and range classes.

        ``range_`` may be ``rdfs:Literal`` (for attribute-like properties)
        or any declared class.
        """
        from .vocabulary import LITERAL_CLASS

        if domain not in self._classes:
            raise SchemaError(f"undeclared domain class {domain}")
        if range_ != LITERAL_CLASS and range_ not in self._classes:
            raise SchemaError(f"undeclared range class {range_}")
        definition = PropertyDef(prop, domain, range_)
        self._properties[prop] = definition
        self._super_properties.setdefault(prop, set())
        if subproperty_of is not None:
            self.add_subproperty(prop, subproperty_of)
        self._invalidate_caches()
        return definition

    def add_subproperty(self, child: URI, parent: URI) -> None:
        """Assert ``child rdfs:subPropertyOf parent``; both must be declared."""
        for prop in (child, parent):
            if prop not in self._properties:
                raise SchemaError(f"undeclared property {prop}")
        if child == parent:
            raise SchemaError(f"property {child} cannot be its own subproperty")
        self._super_properties.setdefault(child, set()).add(parent)
        self._assert_acyclic(child, self._super_properties, "property")
        self._invalidate_caches()

    def _assert_acyclic(self, start: URI, edges: Dict[URI, Set[URI]], kind: str) -> None:
        """Reject hierarchies that would introduce a cycle through *start*."""
        stack, seen = [start], set()
        while stack:
            node = stack.pop()
            for parent in edges.get(node, ()):
                if parent == start:
                    raise SchemaError(f"cyclic {kind} hierarchy through {start}")
                if parent not in seen:
                    seen.add(parent)
                    stack.append(parent)

    def _invalidate_caches(self) -> None:
        self._class_ancestors.clear()
        self._property_ancestors.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def classes(self) -> FrozenSet[URI]:
        """The declared classes."""
        return frozenset(self._classes)

    @property
    def properties(self) -> FrozenSet[URI]:
        """The declared property URIs."""
        return frozenset(self._properties)

    def property_def(self, prop: URI) -> PropertyDef:
        """The :class:`PropertyDef` for ``prop`` (raises if undeclared)."""
        try:
            return self._properties[prop]
        except KeyError:
            raise SchemaError(f"undeclared property {prop}") from None

    def has_class(self, cls: URI) -> bool:
        return cls in self._classes

    def has_property(self, prop: URI) -> bool:
        return prop in self._properties

    def domain_of(self, prop: URI) -> URI:
        return self.property_def(prop).domain

    def range_of(self, prop: URI) -> URI:
        return self.property_def(prop).range

    # ------------------------------------------------------------------
    # subsumption
    # ------------------------------------------------------------------
    def superclasses(self, cls: URI) -> FrozenSet[URI]:
        """All ancestors of ``cls`` including itself (reflexive closure)."""
        cached = self._class_ancestors.get(cls)
        if cached is None:
            cached = self._ancestors(cls, self._super_classes)
            self._class_ancestors[cls] = cached
        return cached

    def superproperties(self, prop: URI) -> FrozenSet[URI]:
        """All ancestors of ``prop`` including itself (reflexive closure)."""
        cached = self._property_ancestors.get(prop)
        if cached is None:
            cached = self._ancestors(prop, self._super_properties)
            self._property_ancestors[prop] = cached
        return cached

    @staticmethod
    def _ancestors(start: URI, edges: Dict[URI, Set[URI]]) -> FrozenSet[URI]:
        result = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for parent in edges.get(node, ()):
                if parent not in result:
                    result.add(parent)
                    stack.append(parent)
        return frozenset(result)

    def subclasses(self, cls: URI) -> FrozenSet[URI]:
        """All descendants of ``cls`` including itself."""
        return frozenset(c for c in self._classes if cls in self.superclasses(c))

    def subproperties(self, prop: URI) -> FrozenSet[URI]:
        """All descendants of ``prop`` including itself."""
        return frozenset(p for p in self._properties if prop in self.superproperties(p))

    def is_subclass(self, child: URI, parent: URI) -> bool:
        """True when ``child`` ⊑ ``parent`` in the class DAG (reflexive)."""
        from .vocabulary import RESOURCE

        if parent == RESOURCE:
            return True
        return parent in self.superclasses(child)

    def is_subproperty(self, child: URI, parent: URI) -> bool:
        """True when ``child`` ⊑ ``parent`` in the property DAG (reflexive)."""
        return parent in self.superproperties(child)

    # ------------------------------------------------------------------
    # conversion
    # ------------------------------------------------------------------
    def to_graph(self) -> Graph:
        """Serialise the schema itself as RDF triples."""
        g = Graph()
        for cls in sorted(self._classes):
            g.add(cls, TYPE, CLASS)
            for parent in sorted(self._super_classes.get(cls, ())):
                g.add(cls, SUBCLASSOF, parent)
        for prop in sorted(self._properties):
            definition = self._properties[prop]
            g.add(prop, TYPE, PROPERTY)
            g.add(prop, DOMAIN, definition.domain)
            g.add(prop, RANGE, definition.range)
            for parent in sorted(self._super_properties.get(prop, ())):
                g.add(prop, SUBPROPERTYOF, parent)
        return g

    @classmethod
    def from_graph(cls, graph: Graph, namespace: Namespace, name: str = "") -> "Schema":
        """Rebuild a schema from its RDF serialisation."""
        schema = cls(namespace, name)
        for t in graph.triples(None, TYPE, CLASS):
            if isinstance(t.subject, URI):
                schema.add_class(t.subject)
        prop_triples = list(graph.triples(None, TYPE, PROPERTY))
        for t in prop_triples:
            prop = t.subject
            if not isinstance(prop, URI):
                continue
            domains = [x.object for x in graph.triples(prop, DOMAIN, None)]
            ranges = [x.object for x in graph.triples(prop, RANGE, None)]
            if not domains or not ranges:
                raise SchemaError(f"property {prop} lacks domain or range")
            schema.add_property(prop, domains[0], ranges[0])
        for t in graph.triples(None, SUBCLASSOF, None):
            schema.add_subclass(t.subject, t.object)
        for t in graph.triples(None, SUBPROPERTYOF, None):
            schema.add_subproperty(t.subject, t.object)
        return schema

    def __repr__(self) -> str:
        return (
            f"Schema({self.name!r}, classes={len(self._classes)}, "
            f"properties={len(self._properties)})"
        )

    def __iter__(self) -> Iterator[PropertyDef]:
        return iter(self._properties.values())
