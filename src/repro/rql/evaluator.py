"""Local RQL evaluation over a peer's RDF/S base.

Evaluation is schema-aware (RDFS-entailed): a path pattern on property
``p`` also matches statements of every ``p' ⊑ p``, and class filters
accept entailed instances.  This is the semantics that lets peer P4 of
the paper's Figure 2 — which only stores ``prop4`` statements — answer
the ``prop1`` path pattern Q1.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import EvaluationError
from ..rdf.graph import Graph
from ..rdf.inference import InferredView
from ..rdf.schema import Schema
from ..rdf.terms import Literal, Term, URI
from ..rdf.vocabulary import LITERAL_CLASS
from .ast import Condition, RQLQuery
from .bindings import BindingTable
from .parser import parse_query
from .pattern import PathPattern, QueryPattern, extract_pattern


def path_triple_matches(triple, path, schema: Schema, view: InferredView) -> bool:
    """Does an asserted triple satisfy a schema path's domain/range
    constraints under RDFS entailment?  The single matcher shared by
    the scalar evaluator and the encoded column builder
    (:mod:`repro.execution.encoded`), so both paths agree by
    construction."""
    asserted = triple.predicate
    if schema.has_property(asserted):
        asserted_def = schema.property_def(asserted)
        subject_ok = schema.is_subclass(asserted_def.domain, path.domain) or (
            view.is_instance_of(triple.subject, path.domain)
        )
        object_ok = _range_matches(triple.object, asserted_def.range, path.range, schema, view)
    else:
        subject_ok = view.is_instance_of(triple.subject, path.domain)
        object_ok = _object_instance_ok(triple.object, path.range, schema, view)
    return subject_ok and object_ok


def evaluate_path_pattern(pattern: PathPattern, view: InferredView) -> BindingTable:
    """Evaluate one path pattern, returning bindings for its variables.

    Anonymous endpoints (``variable is None``) are matched but not
    bound; fully anonymous patterns return a zero-column table whose
    row count is the number of matches.
    """
    schema = view.schema
    path = pattern.schema_path
    columns = pattern.variables()
    table = BindingTable(columns)
    for triple in view.triples(None, path.property, None):
        if not path_triple_matches(triple, path, schema, view):
            continue
        row = []
        if pattern.subject_var:
            row.append(triple.subject)
        if pattern.object_var:
            row.append(triple.object)
        table.append(tuple(row))
    return table


def _range_matches(
    obj: Term,
    asserted_range: URI,
    required_range: URI,
    schema: Schema,
    view: InferredView,
) -> bool:
    if required_range == LITERAL_CLASS:
        return isinstance(obj, Literal)
    if isinstance(obj, Literal):
        return False
    if asserted_range != LITERAL_CLASS and schema.is_subclass(asserted_range, required_range):
        return True
    return view.is_instance_of(obj, required_range)


def _object_instance_ok(obj: Term, required_range: URI, schema: Schema, view: InferredView) -> bool:
    if required_range == LITERAL_CLASS:
        return isinstance(obj, Literal)
    if isinstance(obj, Literal):
        return False
    return view.is_instance_of(obj, required_range)


def evaluate_pattern(query_pattern: QueryPattern, view: InferredView) -> BindingTable:
    """Evaluate a full conjunctive pattern: join of its path patterns."""
    result = BindingTable.unit()
    for pattern in query_pattern:
        result = result.join(evaluate_path_pattern(pattern, view))
    return result


_COMPARATORS: Dict[str, Callable] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "like": lambda a, b: str(b) in str(a),
}


def _condition_predicate(condition: Condition) -> Callable[[Dict[str, Term]], bool]:
    compare = _COMPARATORS.get(condition.operator)
    if compare is None:
        raise EvaluationError(f"unsupported operator {condition.operator!r}")

    def predicate(binding: Dict[str, Term]) -> bool:
        left = binding[condition.variable]
        left_value = left.to_python() if isinstance(left, Literal) else left
        if condition.value_is_variable:
            right = binding[str(condition.value)]
            right_value = right.to_python() if isinstance(right, Literal) else right
        else:
            right = condition.value
            right_value = right.to_python() if isinstance(right, Literal) else right
        try:
            return bool(compare(left_value, right_value))
        except TypeError:
            return False

    return predicate


def evaluate_query(
    query: RQLQuery,
    base: Graph,
    schema: Schema,
    default_namespaces: Optional[Dict[str, str]] = None,
) -> BindingTable:
    """Evaluate a parsed RQL query against a local base.

    Applies pattern matching with RDFS entailment, WHERE-clause filters
    and the SELECT projection.
    """
    view = InferredView(base, schema)
    query_pattern = extract_pattern(query, schema, default_namespaces)
    result = evaluate_pattern(query_pattern, view)
    for condition in query.conditions:
        result = result.select(_condition_predicate(condition))
    return result.project(query.effective_projections())


def query(
    text: str,
    base: Graph,
    schema: Schema,
    default_namespaces: Optional[Dict[str, str]] = None,
) -> BindingTable:
    """Parse and evaluate RQL text in one call (the local fast path)."""
    return evaluate_query(parse_query(text), base, schema, default_namespaces)
