"""Lexer for the conjunctive RQL fragment used by SQPeer.

Token kinds cover the ``SELECT ... FROM ... WHERE ... USING NAMESPACE``
skeleton, path-expression punctuation (``{ } ; ,``), qualified names
(``n1:prop1``), comparison operators, string/number literals and URIs
quoted in ampersands (``&http://...&``) as in RQL's namespace clause.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

from ..errors import ParseError

KEYWORDS = frozenset(
    {"SELECT", "FROM", "WHERE", "USING", "NAMESPACE", "AND", "LIKE", "VIEW", "CREATE"}
)

PUNCTUATION = {
    "{": "LBRACE",
    "}": "RBRACE",
    ";": "SEMI",
    ",": "COMMA",
    ".": "DOT",
    "(": "LPAREN",
    ")": "RPAREN",
    "*": "STAR",
    "@": "AT",
}

OPERATORS = ("<=", ">=", "!=", "=", "<", ">")


class Token(NamedTuple):
    """A lexical token with its source position (for error messages)."""

    kind: str
    value: str
    position: int


def tokenize(text: str) -> List[Token]:
    """Tokenise RQL/RVL source text.

    Raises:
        ParseError: On any character that cannot start a token.
    """
    return list(_scan(text))


def _scan(text: str) -> Iterator[Token]:
    pos, length = 0, len(text)
    while pos < length:
        char = text[pos]
        if char in " \t\r\n":
            pos += 1
            continue
        if char == "&":
            end = text.find("&", pos + 1)
            if end == -1:
                raise ParseError("unterminated &URI&", text, pos)
            yield Token("URI", text[pos + 1 : end], pos)
            pos = end + 1
            continue
        if char == '"':
            literal, pos = _scan_string(text, pos)
            yield literal
            continue
        if char.isdigit() or (char == "-" and pos + 1 < length and text[pos + 1].isdigit()):
            number, pos = _scan_number(text, pos)
            yield number
            continue
        if char.isalpha() or char == "_":
            word, pos = _scan_word(text, pos)
            yield word
            continue
        for op in OPERATORS:
            if text.startswith(op, pos):
                yield Token("OP", op, pos)
                pos += len(op)
                break
        else:
            kind = PUNCTUATION.get(char)
            if kind is None:
                raise ParseError(f"unexpected character {char!r}", text, pos)
            yield Token(kind, char, pos)
            pos += 1


def _scan_string(text: str, pos: int):
    chars: List[str] = []
    i = pos + 1
    while i < len(text):
        c = text[i]
        if c == "\\" and i + 1 < len(text):
            chars.append(text[i + 1])
            i += 2
            continue
        if c == '"':
            return Token("STRING", "".join(chars), pos), i + 1
        chars.append(c)
        i += 1
    raise ParseError("unterminated string literal", text, pos)


def _scan_number(text: str, pos: int):
    end = pos + 1
    seen_dot = False
    while end < len(text):
        c = text[end]
        if c == "." and not seen_dot and end + 1 < len(text) and text[end + 1].isdigit():
            seen_dot = True
            end += 1
            continue
        if not c.isdigit():
            break
        end += 1
    return Token("NUMBER", text[pos:end], pos), end


def _scan_word(text: str, pos: int):
    end = pos
    while end < len(text) and (text[end].isalnum() or text[end] in "_"):
        end += 1
    word = text[pos:end]
    # Qualified name: prefix:local
    if end < len(text) and text[end] == ":" and end + 1 < len(text) and (
        text[end + 1].isalpha() or text[end + 1] == "_"
    ):
        local_end = end + 1
        while local_end < len(text) and (text[local_end].isalnum() or text[local_end] in "_"):
            local_end += 1
        return Token("QNAME", text[pos:local_end], pos), local_end
    if word.upper() in KEYWORDS:
        return Token(word.upper(), word, pos), end
    return Token("IDENT", word, pos), end
