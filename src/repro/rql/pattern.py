"""Semantic query patterns (paper Section 2.1, Figure 1).

A *query pattern* is the intensional footprint of a conjunctive RQL
query: a graph of :class:`PathPattern` nodes, one per FROM-clause path
expression, each carrying the *schema path* (domain class, property,
range class) it touches.  End-point classes not written explicitly in
the query are obtained from the property's domain/range definitions in
the community schema — exactly as the paper derives C1, C2, C3 for
query **Q** in Figure 1.

The same :class:`SchemaPath` type also underlies peer advertisements
(:class:`~repro.rvl.active_schema.ActiveSchema`), giving the uniform
logical framework Section 2.2 argues for.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import SchemaError
from ..rdf.schema import Schema
from ..rdf.terms import URI
from .ast import RQLQuery
from .parser import parse_query


class SchemaPath:
    """One schema-level hop: ``domain --property--> range``."""

    __slots__ = ("domain", "property", "range")

    def __init__(self, domain: URI, property_: URI, range_: URI):
        object.__setattr__(self, "domain", domain)
        object.__setattr__(self, "property", property_)
        object.__setattr__(self, "range", range_)

    def __setattr__(self, name, val):
        raise AttributeError("SchemaPath is immutable")

    def __repr__(self) -> str:
        return (
            f"SchemaPath({self.domain.local_name} --{self.property.local_name}--> "
            f"{self.range.local_name})"
        )

    def __str__(self) -> str:
        return f"({self.domain.local_name}){self.property.local_name}({self.range.local_name})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SchemaPath)
            and self.domain == other.domain
            and self.property == other.property
            and self.range == other.range
        )

    def __hash__(self) -> int:
        return hash((self.domain, self.property, self.range))


class PathPattern:
    """A query path pattern: a :class:`SchemaPath` plus variable bindings.

    Attributes:
        label: Position label in the query (``Q1``, ``Q2``, ...) used in
            plans and in the paper's figures.
        schema_path: The schema hop this pattern queries.
        subject_var: Variable bound at the domain end.
        object_var: Variable bound at the range end.
        projected: Variables among the two that the query projects
            (marked ``*`` in the paper's pattern drawings).
    """

    __slots__ = ("label", "schema_path", "subject_var", "object_var", "projected")

    def __init__(
        self,
        label: str,
        schema_path: SchemaPath,
        subject_var: Optional[str],
        object_var: Optional[str],
        projected: Tuple[str, ...] = (),
    ):
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "schema_path", schema_path)
        object.__setattr__(self, "subject_var", subject_var)
        object.__setattr__(self, "object_var", object_var)
        object.__setattr__(self, "projected", tuple(projected))

    def __setattr__(self, name, val):
        raise AttributeError("PathPattern is immutable")

    def variables(self) -> Tuple[str, ...]:
        out = []
        if self.subject_var:
            out.append(self.subject_var)
        if self.object_var:
            out.append(self.object_var)
        return tuple(out)

    def shares_variable_with(self, other: "PathPattern") -> bool:
        return bool(set(self.variables()) & set(other.variables()))

    def _render_var(self, var: Optional[str], cls: URI) -> str:
        name = var or "_"
        star = "*" if var in self.projected else ""
        return f"{name}{star};{cls.local_name}"

    def __str__(self) -> str:
        subject = self._render_var(self.subject_var, self.schema_path.domain)
        obj = self._render_var(self.object_var, self.schema_path.range)
        return f"{self.label}: {{{subject}}}{self.schema_path.property.local_name}{{{obj}}}"

    def __repr__(self) -> str:
        return f"PathPattern({self})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PathPattern)
            and self.label == other.label
            and self.schema_path == other.schema_path
            and self.subject_var == other.subject_var
            and self.object_var == other.object_var
            and self.projected == other.projected
        )

    def __hash__(self) -> int:
        return hash(
            (self.label, self.schema_path, self.subject_var, self.object_var, self.projected)
        )


class QueryPattern:
    """The semantic query pattern of a conjunctive RQL query.

    The pattern is organised as a tree rooted at the first path pattern
    (a spanning tree of the variable-sharing join graph); the
    Query-Processing Algorithm of Section 2.4 recurses over
    ``children(pattern)``.

    Args:
        patterns: Path patterns in FROM-clause order.
        projections: Projected variable names.
        schema: The community schema the query commits to.
    """

    def __init__(
        self,
        patterns: Sequence[PathPattern],
        projections: Tuple[str, ...],
        schema: Schema,
    ):
        if not patterns:
            raise SchemaError("a query pattern needs at least one path pattern")
        self._patterns: Tuple[PathPattern, ...] = tuple(patterns)
        self.projections = tuple(projections)
        self.schema = schema
        self._children: Dict[PathPattern, Tuple[PathPattern, ...]] = {}
        self._build_tree()

    def _build_tree(self) -> None:
        """Spanning tree over the variable-sharing graph, rooted at Q1.

        Patterns unreachable through shared variables (a cartesian
        product in the query) are attached to the root so every pattern
        is visited exactly once.
        """
        remaining: List[PathPattern] = list(self._patterns[1:])
        placed = [self._patterns[0]]
        children: Dict[PathPattern, List[PathPattern]] = {p: [] for p in self._patterns}
        while remaining:
            attached = None
            for candidate in remaining:
                parent = next(
                    (p for p in placed if candidate.shares_variable_with(p)), None
                )
                if parent is not None:
                    children[parent].append(candidate)
                    placed.append(candidate)
                    attached = candidate
                    break
            if attached is None:
                # disconnected component: attach its first pattern to the root
                candidate = remaining[0]
                children[self.root].append(candidate)
                placed.append(candidate)
                attached = candidate
            remaining.remove(attached)
        self._children = {p: tuple(c) for p, c in children.items()}

    @property
    def root(self) -> PathPattern:
        """The root path pattern (Q1)."""
        return self._patterns[0]

    @property
    def patterns(self) -> Tuple[PathPattern, ...]:
        """All path patterns, in FROM-clause order."""
        return self._patterns

    def children(self, pattern: PathPattern) -> Tuple[PathPattern, ...]:
        """The child patterns of ``pattern`` in the spanning tree."""
        return self._children.get(pattern, ())

    def pattern_by_label(self, label: str) -> PathPattern:
        for pattern in self._patterns:
            if pattern.label == label:
                return pattern
        raise KeyError(label)

    def variables(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for pattern in self._patterns:
            for var in pattern.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def __iter__(self) -> Iterator[PathPattern]:
        return iter(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def __str__(self) -> str:
        return " , ".join(str(p) for p in self._patterns)

    def __repr__(self) -> str:
        return f"QueryPattern({self})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, QueryPattern)
            and self._patterns == other._patterns
            and self.projections == other.projections
        )

    def __hash__(self) -> int:
        return hash((self._patterns, self.projections))


def resolve_qname(qname: str, namespaces: Mapping[str, str]) -> URI:
    """Resolve ``prefix:local`` against a prefix → URI mapping."""
    prefix, _, local = qname.partition(":")
    if not local:
        raise SchemaError(f"{qname!r} is not a qualified name")
    try:
        return URI(namespaces[prefix] + local)
    except KeyError:
        raise SchemaError(f"undeclared namespace prefix {prefix!r} in {qname!r}") from None


def extract_pattern(
    query: RQLQuery,
    schema: Schema,
    default_namespaces: Optional[Mapping[str, str]] = None,
) -> QueryPattern:
    """Extract the semantic query pattern of a parsed RQL query.

    End-point classes omitted in the query text are read off the
    property definitions in ``schema`` (paper Section 2.1).  Explicit
    class filters must be declared classes.

    Args:
        query: The parsed query.
        schema: The community schema the query is expressed against.
        default_namespaces: Prefix bindings used when the query has no
            USING NAMESPACE clause.
    """
    namespaces: Dict[str, str] = dict(default_namespaces or {})
    namespaces.update(query.namespaces)
    projections = query.effective_projections()
    patterns: List[PathPattern] = []
    for index, path in enumerate(query.paths, start=1):
        prop = resolve_qname(path.property_name, namespaces)
        if not schema.has_property(prop):
            raise SchemaError(f"property {prop} is not declared in schema {schema.name}")
        definition = schema.property_def(prop)
        domain = (
            resolve_qname(path.subject.class_name, namespaces)
            if path.subject.class_name
            else definition.domain
        )
        range_ = (
            resolve_qname(path.object.class_name, namespaces)
            if path.object.class_name
            else definition.range
        )
        for cls, role in ((domain, "domain"), (range_, "range")):
            from ..rdf.vocabulary import LITERAL_CLASS

            if cls != LITERAL_CLASS and not schema.has_class(cls):
                raise SchemaError(f"{role} class {cls} is not declared in {schema.name}")
        projected = tuple(v for v in path.variables() if v in projections)
        patterns.append(
            PathPattern(
                label=f"Q{index}",
                schema_path=SchemaPath(domain, prop, range_),
                subject_var=path.subject.variable,
                object_var=path.object.variable,
                projected=projected,
            )
        )
    return QueryPattern(patterns, projections, schema)


def pattern_from_text(
    text: str,
    schema: Schema,
    default_namespaces: Optional[Mapping[str, str]] = None,
) -> QueryPattern:
    """Parse RQL text and extract its semantic query pattern in one step."""
    return extract_pattern(parse_query(text), schema, default_namespaces)
