"""Binding tables: the tabular result representation.

A :class:`BindingTable` is a bag of rows over named variable columns.
It is the unit of data exchanged between peers over channels and the
operand type of the distributed union/join operators, so it provides
hash-join, union (with column alignment), projection, filtering and a
wire-size estimate for the network simulator.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import EvaluationError
from ..rdf.terms import Term

Row = Tuple[Term, ...]


class BindingTable:
    """An ordered-column bag of variable bindings.

    Args:
        columns: Variable names, one per column.
        rows: Row tuples, each as long as ``columns``.
    """

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Sequence[str], rows: Optional[Iterable[Row]] = None):
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise EvaluationError(f"duplicate columns in {self.columns}")
        self.rows: List[Row] = []
        if rows is not None:
            for row in rows:
                self.append(row)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, columns: Sequence[str]) -> "BindingTable":
        """An empty table with the given columns."""
        return cls(columns)

    @classmethod
    def unit(cls) -> "BindingTable":
        """The join identity: zero columns, one empty row."""
        table = cls(())
        table.rows.append(())
        return table

    def append(self, row: Sequence[Term]) -> None:
        """Append a row (validated against the column count)."""
        row = tuple(row)
        if len(row) != len(self.columns):
            raise EvaluationError(
                f"row width {len(row)} does not match columns {self.columns}"
            )
        self.rows.append(row)

    def append_binding(self, binding: Dict[str, Term]) -> None:
        """Append a row given as a variable → term mapping."""
        self.append(tuple(binding[c] for c in self.columns))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise EvaluationError(f"no column {name!r} in {self.columns}") from None

    def bindings(self) -> Iterator[Dict[str, Term]]:
        """Iterate rows as variable → term dictionaries."""
        for row in self.rows:
            yield dict(zip(self.columns, row))

    def column(self, name: str) -> List[Term]:
        """All values of one column (with duplicates)."""
        idx = self.column_index(name)
        return [row[idx] for row in self.rows]

    # ------------------------------------------------------------------
    # relational operators
    # ------------------------------------------------------------------
    def join(self, other: "BindingTable") -> "BindingTable":
        """Natural hash join on the shared columns.

        With no shared columns this degenerates to a cartesian product
        (the unit table is the identity).
        """
        shared = [c for c in self.columns if c in other.columns]
        other_only = [c for c in other.columns if c not in self.columns]
        out = BindingTable(self.columns + tuple(other_only))
        if not shared:
            for left in self.rows:
                for right_binding in other.bindings():
                    out.append(left + tuple(right_binding[c] for c in other_only))
            return out
        # build the hash table on the smaller input
        build, probe = (self, other)
        if len(other.rows) < len(self.rows):
            build, probe = (other, self)
        buckets: Dict[Tuple[Term, ...], List[Dict[str, Term]]] = defaultdict(list)
        for binding in build.bindings():
            buckets[tuple(binding[c] for c in shared)].append(binding)
        for probe_binding in probe.bindings():
            key = tuple(probe_binding[c] for c in shared)
            for build_binding in buckets.get(key, ()):
                merged = dict(build_binding)
                merged.update(probe_binding)
                out.append_binding(merged)
        return out

    def union(self, other: "BindingTable") -> "BindingTable":
        """Bag union; the other table's columns must be a permutation."""
        if set(self.columns) != set(other.columns):
            raise EvaluationError(
                f"union over different columns: {self.columns} vs {other.columns}"
            )
        out = BindingTable(self.columns, self.rows)
        reorder = [other.column_index(c) for c in self.columns]
        for row in other.rows:
            out.append(tuple(row[i] for i in reorder))
        return out

    def project(self, columns: Sequence[str]) -> "BindingTable":
        """Project onto the named columns, preserving row order."""
        indices = [self.column_index(c) for c in columns]
        out = BindingTable(tuple(columns))
        for row in self.rows:
            out.append(tuple(row[i] for i in indices))
        return out

    def select(self, predicate: Callable[[Dict[str, Term]], bool]) -> "BindingTable":
        """Keep rows whose binding dict satisfies ``predicate``."""
        out = BindingTable(self.columns)
        for row, binding in zip(self.rows, self.bindings()):
            if predicate(binding):
                out.append(row)
        return out

    def distinct(self) -> "BindingTable":
        """Remove duplicate rows, keeping first occurrences."""
        out = BindingTable(self.columns)
        seen = set()
        for row in self.rows:
            if row not in seen:
                seen.add(row)
                out.append(row)
        return out

    # ------------------------------------------------------------------
    # size / protocol
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Approximate wire size: sum of term renderings plus row overhead."""
        header = sum(len(c) for c in self.columns) + 2 * len(self.columns)
        body = sum(len(term.n3()) + 1 for row in self.rows for term in row)
        return header + body + 2 * len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __eq__(self, other) -> bool:
        if not isinstance(other, BindingTable):
            return NotImplemented
        if set(self.columns) != set(other.columns):
            return False
        reorder = [other.column_index(c) for c in self.columns]
        theirs = sorted(tuple(r[i].n3() for i in reorder) for r in other.rows)
        ours = sorted(tuple(t.n3() for t in row) for row in self.rows)
        return ours == theirs

    def __repr__(self) -> str:
        return f"BindingTable(columns={self.columns}, rows={len(self.rows)})"
