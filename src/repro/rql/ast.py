"""Abstract syntax for the conjunctive RQL fragment.

A query is ``SELECT vars FROM path-expressions WHERE conditions USING
NAMESPACE bindings``.  Path expressions have the RQL shape
``{X;n1:C1} n1:prop1 {Y}`` — node specs in braces (variable plus
optional class filter) around a schema property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..rdf.terms import Literal


@dataclass(frozen=True)
class NodeSpec:
    """One ``{...}`` node of a path expression.

    Attributes:
        variable: The variable name (``X``), or ``None`` for an
            anonymous node.
        class_name: Optional qualified class filter (``n1:C1``) — the
            resource must be an (entailed) instance of that class.
    """

    variable: Optional[str] = None
    class_name: Optional[str] = None

    def __str__(self) -> str:
        inner = self.variable or ""
        if self.class_name:
            inner = f"{inner};{self.class_name}" if inner else self.class_name
        return "{" + inner + "}"


@dataclass(frozen=True)
class PathExpression:
    """``{subject} property {object}`` — one hop of a path."""

    subject: NodeSpec
    property_name: str
    object: NodeSpec

    def __str__(self) -> str:
        return f"{self.subject}{self.property_name}{self.object}"

    def variables(self) -> Tuple[str, ...]:
        """The variables bound by this expression, subject first."""
        out = []
        if self.subject.variable:
            out.append(self.subject.variable)
        if self.object.variable:
            out.append(self.object.variable)
        return tuple(out)


#: A WHERE-clause comparison value: literal constant or another variable.
ConditionValue = Union[Literal, str]


@dataclass(frozen=True)
class Condition:
    """A boolean filter ``variable op value`` from the WHERE clause."""

    variable: str
    operator: str
    value: ConditionValue
    value_is_variable: bool = False

    def __str__(self) -> str:
        if self.value_is_variable:
            return f"{self.variable} {self.operator} {self.value}"
        if isinstance(self.value, Literal):
            return f"{self.variable} {self.operator} {self.value.n3()}"
        return f"{self.variable} {self.operator} {self.value}"


@dataclass(frozen=True)
class RQLQuery:
    """A parsed conjunctive RQL query.

    Attributes:
        projections: Projected variable names, in SELECT order.  The
            empty tuple means ``SELECT *`` (project everything).
        paths: The FROM-clause path expressions (implicitly joined on
            shared variables).
        conditions: WHERE-clause filters (conjunctive).
        namespaces: Mapping prefix → namespace URI from the USING
            NAMESPACE clause.
        text: The original source text, if parsed from text.
    """

    projections: Tuple[str, ...]
    paths: Tuple[PathExpression, ...]
    conditions: Tuple[Condition, ...] = ()
    namespaces: Dict[str, str] = field(default_factory=dict)
    text: str = ""

    def variables(self) -> Tuple[str, ...]:
        """All variables appearing in the FROM clause, in first-use order."""
        seen: List[str] = []
        for path in self.paths:
            for var in path.variables():
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    def effective_projections(self) -> Tuple[str, ...]:
        """The projections, defaulting to all variables for ``SELECT *``."""
        return self.projections or self.variables()

    def __str__(self) -> str:
        select = ", ".join(self.projections) if self.projections else "*"
        from_clause = ", ".join(str(p) for p in self.paths)
        out = f"SELECT {select} FROM {from_clause}"
        if self.conditions:
            out += " WHERE " + " AND ".join(str(c) for c in self.conditions)
        if self.namespaces:
            bindings = ", ".join(f"{p} = &{u}&" for p, u in self.namespaces.items())
            out += f" USING NAMESPACE {bindings}"
        return out
