"""Recursive-descent parser for the conjunctive RQL fragment.

Grammar (paper Section 2.1 — conjunctive path queries with projections
and simple filters)::

    query       := SELECT projections FROM paths [WHERE conditions]
                   [USING NAMESPACE ns_bindings]
    projections := '*' | IDENT (',' IDENT)*
    paths       := path (',' path)*
    path        := node QNAME node
    node        := '{' [IDENT] [';' QNAME] '}'
    conditions  := condition (AND condition)*
    condition   := IDENT op (STRING | NUMBER | IDENT)
    ns_bindings := IDENT '=' URI (',' IDENT '=' URI)*
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ParseError
from ..rdf.terms import Literal
from .ast import Condition, NodeSpec, PathExpression, RQLQuery
from .tokens import Token, tokenize


class _TokenStream:
    """Cursor over a token list with one-token lookahead."""

    def __init__(self, tokens: List[Token], text: str):
        self._tokens = tokens
        self._pos = 0
        self.text = text

    def peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of query", self.text, len(self.text))
        self._pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token is None or token.kind != kind:
            got = token.kind if token else "end of input"
            where = token.position if token else len(self.text)
            raise ParseError(f"expected {kind}, got {got}", self.text, where)
        return self.next()

    def accept(self, kind: str) -> Optional[Token]:
        token = self.peek()
        if token is not None and token.kind == kind:
            return self.next()
        return None

    def at_end(self) -> bool:
        return self.peek() is None


def parse_query(text: str) -> RQLQuery:
    """Parse RQL source text into an :class:`~repro.rql.ast.RQLQuery`.

    Raises:
        ParseError: With the offending position on malformed input.
    """
    stream = _TokenStream(tokenize(text), text)
    stream.expect("SELECT")
    projections = _parse_projections(stream)
    stream.expect("FROM")
    paths = _parse_paths(stream)
    conditions: Tuple[Condition, ...] = ()
    if stream.accept("WHERE"):
        conditions = _parse_conditions(stream)
    namespaces: Dict[str, str] = {}
    if stream.accept("USING"):
        stream.expect("NAMESPACE")
        namespaces = _parse_namespaces(stream)
    if not stream.at_end():
        token = stream.peek()
        raise ParseError(f"trailing input {token.value!r}", text, token.position)
    query = RQLQuery(projections, paths, conditions, namespaces, text)
    _check_query(query, text)
    return query


def _parse_projections(stream: _TokenStream) -> Tuple[str, ...]:
    if stream.accept("STAR"):
        return ()
    names = [stream.expect("IDENT").value]
    while stream.accept("COMMA"):
        # the FROM clause follows a comma-free projection list, so a
        # comma always introduces another variable here
        names.append(stream.expect("IDENT").value)
    return tuple(names)


def _parse_paths(stream: _TokenStream) -> Tuple[PathExpression, ...]:
    paths = [_parse_path(stream)]
    while stream.accept("COMMA"):
        paths.append(_parse_path(stream))
    return tuple(paths)


def _parse_path(stream: _TokenStream) -> PathExpression:
    subject = _parse_node(stream)
    prop = stream.expect("QNAME").value
    obj = _parse_node(stream)
    return PathExpression(subject, prop, obj)


def _parse_node(stream: _TokenStream) -> NodeSpec:
    stream.expect("LBRACE")
    variable: Optional[str] = None
    class_name: Optional[str] = None
    token = stream.peek()
    if token is not None and token.kind == "IDENT":
        variable = stream.next().value
    elif token is not None and token.kind == "QNAME":
        class_name = stream.next().value
    if class_name is None and stream.accept("SEMI"):
        class_name = stream.expect("QNAME").value
    stream.expect("RBRACE")
    return NodeSpec(variable, class_name)


def _parse_conditions(stream: _TokenStream) -> Tuple[Condition, ...]:
    conditions = [_parse_condition(stream)]
    while stream.accept("AND"):
        conditions.append(_parse_condition(stream))
    return tuple(conditions)


def _parse_condition(stream: _TokenStream) -> Condition:
    variable = stream.expect("IDENT").value
    token = stream.peek()
    if token is not None and token.kind == "LIKE":
        stream.next()
        operator = "like"
    else:
        operator = stream.expect("OP").value
    value_token = stream.next()
    if value_token.kind == "STRING":
        return Condition(variable, operator, Literal(value_token.value))
    if value_token.kind == "NUMBER":
        raw = value_token.value
        number = float(raw) if "." in raw else int(raw)
        return Condition(variable, operator, Literal(number))
    if value_token.kind == "IDENT":
        return Condition(variable, operator, value_token.value, value_is_variable=True)
    raise ParseError(
        f"expected literal or variable, got {value_token.kind}",
        stream.text,
        value_token.position,
    )


def _parse_namespaces(stream: _TokenStream) -> Dict[str, str]:
    namespaces: Dict[str, str] = {}
    while True:
        prefix = stream.expect("IDENT").value
        op = stream.expect("OP")
        if op.value != "=":
            raise ParseError("expected '=' in namespace binding", stream.text, op.position)
        namespaces[prefix] = stream.expect("URI").value
        if not stream.accept("COMMA"):
            break
    return namespaces


def _check_query(query: RQLQuery, text: str) -> None:
    """Static sanity checks: projections and filters reference bound vars."""
    bound = set(query.variables())
    for name in query.projections:
        if name not in bound:
            raise ParseError(f"projected variable {name} is not bound in FROM", text)
    for condition in query.conditions:
        if condition.variable not in bound:
            raise ParseError(
                f"filtered variable {condition.variable} is not bound in FROM", text
            )
        if condition.value_is_variable and condition.value not in bound:
            raise ParseError(
                f"comparison variable {condition.value} is not bound in FROM", text
            )
    prefixes = {name.split(":", 1)[0] for p in query.paths for name in
                [p.property_name] + [n.class_name for n in (p.subject, p.object) if n.class_name]}
    for prefix in prefixes:
        if query.namespaces and prefix not in query.namespaces:
            raise ParseError(f"prefix {prefix} is not declared in USING NAMESPACE", text)
