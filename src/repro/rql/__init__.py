"""RQL: the conjunctive RDF query language fragment used by SQPeer.

Provides the lexer/parser, the AST, semantic query patterns
(Section 2.1 of the paper), binding tables and the schema-aware local
evaluator.
"""

from .ast import Condition, NodeSpec, PathExpression, RQLQuery
from .bindings import BindingTable
from .evaluator import (
    evaluate_path_pattern,
    evaluate_pattern,
    evaluate_query,
    query,
)
from .parser import parse_query
from .pattern import (
    PathPattern,
    QueryPattern,
    SchemaPath,
    extract_pattern,
    pattern_from_text,
    resolve_qname,
)
from .tokens import Token, tokenize

__all__ = [
    "BindingTable",
    "Condition",
    "NodeSpec",
    "PathExpression",
    "PathPattern",
    "QueryPattern",
    "RQLQuery",
    "SchemaPath",
    "Token",
    "evaluate_path_pattern",
    "evaluate_pattern",
    "evaluate_query",
    "extract_pattern",
    "parse_query",
    "pattern_from_text",
    "query",
    "resolve_qname",
    "tokenize",
]
