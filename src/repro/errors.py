"""Exception hierarchy for the SQPeer reproduction.

Every error raised by the library derives from :class:`SQPeerError`, so
applications can catch one base class.  Subsystems raise the most
specific subclass that applies.
"""

from __future__ import annotations


class SQPeerError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(SQPeerError):
    """An RDF/S schema is malformed or a term is not declared in it."""


class ParseError(SQPeerError):
    """An RQL query or RVL view failed to parse.

    Attributes:
        text: The source text being parsed.
        position: Character offset at which the error was detected.
    """

    def __init__(self, message: str, text: str = "", position: int = 0):
        super().__init__(message)
        self.text = text
        self.position = position


class EvaluationError(SQPeerError):
    """A query could not be evaluated against a local base."""


class RoutingError(SQPeerError):
    """The routing algorithm received inconsistent input."""


class PlanningError(SQPeerError):
    """A query plan could not be generated or is structurally invalid."""


class ChannelError(SQPeerError):
    """A channel operation failed (unknown id, closed channel, ...)."""


class NetworkError(SQPeerError):
    """The network simulator was asked to do something impossible."""


class EventBudgetExhausted(NetworkError):
    """The event loop hit its ``max_events`` bound before quiescing.

    A protocol loop that never drains is a bug, not a workload — but
    under concurrent serving the distinction needs evidence.  The
    exception therefore carries a :attr:`diagnostics` dict (queries in
    flight, per-peer queue depths, the oldest pending event) and its
    message embeds the formatted report.
    """

    def __init__(self, message: str, diagnostics: dict):
        super().__init__(message)
        self.diagnostics = diagnostics


class CodecError(NetworkError):
    """A wire frame could not be encoded or decoded."""


class PeerError(SQPeerError):
    """A peer received a request it cannot honour."""


class MappingError(SQPeerError):
    """A legacy-store mapping rule is inconsistent with the schema."""
