"""The membership manager: churn events applied to a hybrid system.

:class:`MembershipManager` owns the durable stores of a simulated
deployment and drives every lifecycle transition through the same code
path the live launcher uses:

- **attach**: every peer (simple and super) gets a
  :class:`~repro.durability.state.PeerStateStore` over a backing store
  from ``store_factory`` (in-memory by default; pass a
  :class:`~repro.durability.store.FileStore` factory for on-disk).
- **join**: a fresh peer bootstraps from the deployment (its home
  super-peer is the seed), advertises, inherits the system's
  resilience/admission/scheduling config and writes its first snapshot.
- **leave**: graceful — snapshot, ``Goodbye`` to every advertisement
  holder, then dark.
- **crash**: abrupt — no snapshot, no goodbye; in-flight subplans
  bounce and coordinators adapt.
- **rejoin**: recover from the durable store (snapshot + log replay),
  rebuild the base and remembered advertisements, re-derive the
  active-schema, then re-advertise with the ``rejoin`` flag so holders
  rehabilitate the peer and in-flight queries can replan onto it.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..durability import MemoryStore, PeerStateStore
from ..peers.base import PeerBase
from ..peers.protocol import Advertise
from ..resilience import PeerQuarantine
from .schedule import ChurnEvent


class MembershipManager:
    """Apply membership transitions to a ``HybridSystem``."""

    def __init__(self, system, store_factory: Optional[Callable[[str], object]] = None):
        self.system = system
        self.store_factory = store_factory or (lambda peer_id: MemoryStore())
        self.stores: Dict[str, PeerStateStore] = {}
        #: remembered bootstrap parameters, so a departed peer can rejoin
        self._homes: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach(self, peer) -> PeerStateStore:
        """Give one peer a durable store (idempotent per peer id)."""
        store = self.stores.get(peer.peer_id)
        if store is None:
            store = PeerStateStore(self.store_factory(peer.peer_id), peer.peer_id)
            self.stores[peer.peer_id] = store
        peer.attach_durability(store)
        return store

    def attach_all(self) -> None:
        """Attach every current simple peer and super-peer."""
        for super_peer in self.system.super_peers.values():
            self.attach(super_peer)
        for peer in self.system.peers.values():
            self.attach(peer)
            self._homes[peer.peer_id] = peer.home_super_peer

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def join(self, peer_id: str, graph, home_super_peer: str, schema=None):
        """Bootstrap a fresh peer into the running deployment."""
        peer = self.system.add_peer(peer_id, graph, home_super_peer, schema=schema)
        self._homes[peer_id] = home_super_peer
        self.attach(peer)
        peer.save_durable_snapshot()
        return peer

    def leave(self, peer_id: str) -> None:
        """Graceful departure: snapshot + goodbyes, then dark."""
        self.system.network.emit_event("leave", peer=peer_id)
        self.system.peers[peer_id].leave()

    def crash(self, peer_id: str) -> None:
        """Abrupt failure: no snapshot, no goodbye."""
        self.system.network.emit_event("crash", peer=peer_id)
        self.system.network.fail_peer(peer_id)

    def rejoin(self, peer_id: str):
        """Crash recovery: reload durable state and re-advertise.

        The peer's volatile state (remembered advertisements, quarantine
        verdicts, routing cache) is discarded and rebuilt from the
        durable store, exactly as a restarted process would; then the
        peer re-enters the overlay with a rejoin-flagged advertisement.
        """
        peer = self.system.peers[peer_id]
        store = self.stores[peer_id]
        recovered = store.recover()
        store.log_recover()
        # note: no channel-id epoch bump here — the sim reuses the peer
        # object, whose channel counter already continues past the crash;
        # a restarted OS process mints from 1 and must salt instead
        if recovered.graph is not None and peer.base is not None:
            peer.base = PeerBase(recovered.graph, peer.base.schema, recovered.views)
        peer.known_advertisements = {
            remote: advertisement
            for remote, advertisement in recovered.advertisements.items()
            if remote != peer_id
        }
        quarantine = PeerQuarantine(peer.quarantine.trip_threshold)
        for suspect in recovered.quarantined:
            while not quarantine.is_quarantined(suspect):
                quarantine.record_failure(suspect)
        peer.quarantine = quarantine
        if peer.routing_cache is not None:
            peer.routing_cache.clear()
        network = self.system.network
        network.recover_peer(peer_id)
        network.metrics.record_recovery()
        network.emit_event("recovery", peer=peer_id)
        peer.rejoining = True
        try:
            for advertisement in peer.own_advertisements():
                peer.send(
                    peer._home_for(advertisement.schema_uri),
                    Advertise(advertisement, rejoin=True),
                )
        finally:
            peer.rejoining = False
        return recovered

    # ------------------------------------------------------------------
    # schedule driving
    # ------------------------------------------------------------------
    def apply(self, event: ChurnEvent, graph=None, home_super_peer: str = "") -> None:
        """Apply one churn event.  ``join`` events need the joiner's
        ``graph`` (and optionally a home super-peer; defaults to the
        first registered one)."""
        if event.kind == "join":
            home = home_super_peer or next(iter(sorted(self.system.super_peers)))
            self.join(event.peer_id, graph, home)
        elif event.kind == "leave":
            self.leave(event.peer_id)
        elif event.kind == "crash":
            self.crash(event.peer_id)
        elif event.kind == "rejoin":
            self.rejoin(event.peer_id)
        else:  # pragma: no cover - ChurnEvent validates kinds
            raise ValueError(f"unknown churn event kind {event.kind!r}")
