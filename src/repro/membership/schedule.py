"""Seeded churn schedules.

A :class:`ChurnSchedule` is a deterministic draw of membership
transitions over a peer population: superposed Poisson processes for
graceful leaves, crashes and fresh joins, plus a bounded-delay rejoin
after every crash.  The same ``(seed, population, rates)`` tuple always
yields the same event list, which is what makes churn workloads
replayable in the simulator and comparable against a live run.

Validity is enforced while drawing: only *active* peers leave or
crash, at least ``min_active`` peers stay up at any moment (somebody
must keep answering queries), joiners enter at most once, and a
crashed peer's rejoin is scheduled before any further transition for
that peer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: Event kinds in the order ties are broken.
KINDS = ("join", "leave", "crash", "rejoin")


@dataclass(frozen=True)
class ChurnEvent:
    """One membership transition at virtual time ``at``."""

    at: float
    kind: str  # "join" | "leave" | "crash" | "rejoin"
    peer_id: str

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown churn event kind {self.kind!r}")


class ChurnSchedule:
    """A seeded, validity-checked sequence of churn events."""

    def __init__(self, events: Sequence[ChurnEvent]):
        self.events = tuple(
            sorted(events, key=lambda e: (e.at, e.peer_id, KINDS.index(e.kind)))
        )

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def for_peer(self, peer_id: str) -> Tuple[ChurnEvent, ...]:
        return tuple(event for event in self.events if event.peer_id == peer_id)

    @classmethod
    def generate(
        cls,
        seed: int,
        members: Iterable[str],
        joiners: Iterable[str] = (),
        horizon: float = 600.0,
        leave_rate: float = 0.002,
        crash_rate: float = 0.004,
        join_rate: float = 0.003,
        rejoin_delay: Tuple[float, float] = (40.0, 120.0),
        min_active: int = 1,
    ) -> "ChurnSchedule":
        """Draw a schedule over ``members`` (initially active) and
        ``joiners`` (enter later, at the join process's arrivals).

        Rates are per unit of virtual time; the three processes are
        superposed into one exponential clock and each arrival is
        classified by its rate share, so the total transition count
        scales with ``horizon * (leave+crash+join)``.
        """
        rng = random.Random(seed)
        active = sorted(members)
        if not active:
            raise ValueError("churn needs at least one initial member")
        waiting = list(joiners)
        crashed: List[Tuple[float, str]] = []  # (rejoin_at, peer_id)
        events: List[ChurnEvent] = []
        total = leave_rate + crash_rate + join_rate
        now = 0.0
        while total > 0:
            now += rng.expovariate(total)
            if now >= horizon:
                break
            # first serve any rejoin that matured before this arrival
            while crashed and crashed[0][0] <= now:
                rejoin_at, peer_id = crashed.pop(0)
                events.append(ChurnEvent(rejoin_at, "rejoin", peer_id))
                active.append(peer_id)
                active.sort()
            draw = rng.uniform(0.0, total)
            if draw < join_rate and waiting:
                peer_id = waiting.pop(0)
                events.append(ChurnEvent(now, "join", peer_id))
                active.append(peer_id)
                active.sort()
            elif draw < join_rate + leave_rate:
                if len(active) > min_active:
                    peer_id = active.pop(rng.randrange(len(active)))
                    events.append(ChurnEvent(now, "leave", peer_id))
            else:
                if len(active) > min_active:
                    peer_id = active.pop(rng.randrange(len(active)))
                    events.append(ChurnEvent(now, "crash", peer_id))
                    crashed.append((now + rng.uniform(*rejoin_delay), peer_id))
                    crashed.sort()
        # crashes always heal: flush rejoins that mature past the last
        # arrival (possibly beyond the horizon — recovery is not cut off)
        for rejoin_at, peer_id in crashed:
            events.append(ChurnEvent(rejoin_at, "rejoin", peer_id))
        return cls(events)
