"""Dynamic membership: churn schedules and the membership manager.

Peers join, leave gracefully, crash and come back.  This package turns
those lifecycle transitions into first-class, reproducible objects:

- :class:`~repro.membership.schedule.ChurnSchedule` draws a seeded
  Poisson sequence of :class:`~repro.membership.schedule.ChurnEvent`
  transitions over a peer population, so a whole churn scenario is one
  integer seed.
- :class:`~repro.membership.manager.MembershipManager` applies those
  events to a :class:`~repro.systems.hybrid.HybridSystem`: it attaches
  durable state stores, bootstraps joiners, persists snapshots on
  graceful departure, and drives crash recovery — reload the durable
  state, re-derive the active-schema, re-advertise with the ``rejoin``
  flag so quarantines lift everywhere.

The same event vocabulary maps onto the live launcher
(``--kill``/``--restart-after``/``--join``), which is what the
sim-vs-live differential tests compare.
"""

from .manager import MembershipManager
from .schedule import ChurnEvent, ChurnSchedule

__all__ = ["ChurnEvent", "ChurnSchedule", "MembershipManager"]
