"""Command-line interface.

Three subcommands::

    python -m repro demo
        Run the paper's running example end to end and print each
        middleware stage (pattern, annotation, plans, answer).

    python -m repro figures
        Print the exact artefacts of Figures 2, 3, 4 and 7 (annotation
        table and plan strings) for eyeball comparison with the paper.

    python -m repro query --schema schema.nt --namespace URI \\
        --peer NAME=base.nt [--peer ...] --via NAME "SELECT ..."
        Load a community schema and peer bases from N-Triples files,
        deploy them as a hybrid SON and evaluate the query.

    python -m repro chaos [--loss 0.1] [--queries 8] [--seed 7]
        Run the paper's running example as a query stream over an
        adverse network (message loss, duplication, jitter, a peer
        crash/recover cycle) with the resilience layer on, and print
        every query's fate plus the retry/suspicion counters.

    python -m repro trace [--arch hybrid|adhoc] [--json FILE] [--check]
        Run the paper's query over the Figure 6 (hybrid) or Figure 7
        (ad-hoc) deployment and render the resulting distributed trace
        as an ASCII span tree with per-stage durations.

    python -m repro metrics [--arch hybrid|adhoc] [--queries N]
        Run a small query workload and dump every counter, histogram
        (p50/p90/p99) and per-peer gauge in Prometheus text exposition
        format.

    python -m repro serve [--arrival-rate 0.2] [--clients 4] ...
        Drive a concurrent multi-query workload (open-loop Poisson or
        closed-loop think-time clients) against a synthetic deployment
        with admission control and fair scheduling, and print the
        serving report (throughput, latency percentiles, sheds).

    python -m repro launch --peers 3 --super-peers 1 [--kill P2] ...
        Deploy a live localhost cluster (one OS process per peer over
        the TCP transport), drive a seeded query workload against it,
        optionally SIGTERM a peer mid-run, and merge every process's
        metrics/trace exports into run artifacts.

    python -m repro peer --node-id P1 --seed HOST:PORT --outdir DIR ...
        One node process of a live deployment (spawned by ``launch``;
        usable standalone for hand-built clusters).

    python -m repro metrics --merge DIR
        Merge the per-process ``*.metrics.prom`` dumps of a live run
        into one exposition (samples stay distinguishable via their
        ``peer_id``/``pid``/``transport`` const labels).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import build_plan, optimize, route_query
from .rdf import load_graph, load_schema
from .systems import HybridSystem
from .workloads.paper import (
    PAPER_QUERY,
    adhoc_scenario,
    paper_active_schemas,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SQPeer: semantic query routing and processing for P2P RDF/S bases",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run the paper's running example")
    commands.add_parser("figures", help="print the Figure 2/3/4/7 artefacts")

    query = commands.add_parser("query", help="query N-Triples peer bases")
    query.add_argument("--schema", required=True, help="schema N-Triples file")
    query.add_argument("--namespace", required=True, help="schema namespace URI")
    query.add_argument(
        "--peer",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="peer base as NAME=path.nt (repeatable)",
    )
    query.add_argument("--via", required=True, help="coordinating peer name")
    query.add_argument("--limit", type=int, default=None, help="Top-N bound")
    query.add_argument("--max-peers", type=int, default=None,
                       help="broadcast bound per path pattern")
    query.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the routing/plan caches and request coalescing "
        "(cold per-query routing, as in the paper)",
    )
    query.add_argument(
        "--no-vectorize",
        action="store_true",
        help="disable batched vectorized execution: scalar operators "
        "and one data packet per binding (the reference path)",
    )
    query.add_argument(
        "--batch-size",
        type=int,
        default=256,
        metavar="N",
        help="bindings per shipped data packet when vectorizing "
        "(default 256)",
    )
    query.add_argument(
        "--cost-based",
        action="store_true",
        help="statistics-driven planning: peers advertise per-predicate "
        "statistics, joins are ordered by estimated cardinality and the "
        "cost model places operators (off: the rule-based path)",
    )
    query.add_argument(
        "--encode",
        action="store_true",
        help="dictionary-encoded columnar execution: scans run over "
        "interned id columns and results ship encoded",
    )
    query.add_argument("text", help="RQL query text")

    chaos = commands.add_parser(
        "chaos",
        help="run the running example under an adverse network "
        "(loss, duplication, jitter, crash/recovery) with resilience on",
    )
    chaos.add_argument("--seed", type=int, default=7,
                       help="seed for the network and the fault plan")
    chaos.add_argument("--loss", type=float, default=0.10,
                       help="message drop probability")
    chaos.add_argument("--duplicate", type=float, default=0.05,
                       help="message duplication probability")
    chaos.add_argument("--queries", type=int, default=8,
                       help="how many times the running query is posed")
    chaos.add_argument(
        "--crash",
        default="P2@6:600",
        metavar="PEER@AT[:RECOVER]",
        help="crash schedule (empty string disables the crash)",
    )
    chaos.add_argument("--trace-export", default=None, metavar="FILE",
                       help="write every retained trace as JSON")
    chaos.add_argument("--metrics-export", default=None, metavar="FILE",
                       help="write the final Prometheus exposition")

    trace = commands.add_parser(
        "trace",
        help="run a traced query and render its distributed span tree",
    )
    trace.add_argument("text", nargs="?", default=None,
                       help="RQL query text (default: the paper's query)")
    trace.add_argument("--arch", choices=("hybrid", "adhoc"), default="hybrid",
                       help="deployment to trace (Figure 6 or Figure 7)")
    trace.add_argument("--seed", type=int, default=0, help="network seed")
    trace.add_argument("--via", default="P1", help="coordinating peer")
    trace.add_argument("--json", default=None, metavar="FILE",
                       help="also write the trace export as JSON")
    trace.add_argument("--query", default=None, metavar="ID", dest="query_id",
                       help="render the trace of this query id instead of "
                       "the latest one (with --from: pick it out of the "
                       "export)")
    trace.add_argument("--from", default=None, metavar="FILE", dest="from_file",
                       help="render a trace from an exported JSON file "
                       "(a node's traces.json or a live run's "
                       "merged.traces.json) instead of running a query")
    trace.add_argument("--no-events", action="store_true",
                       help="hide span events (retries, packets)")
    trace.add_argument(
        "--check",
        action="store_true",
        help="validate the trace (single root, no context gaps, "
        "causal starts, all spans finished); non-zero exit on problems",
    )

    metrics = commands.add_parser(
        "metrics",
        help="run a workload and print Prometheus-style metrics",
    )
    metrics.add_argument("--arch", choices=("hybrid", "adhoc"), default="hybrid",
                         help="deployment to run")
    metrics.add_argument("--seed", type=int, default=0, help="network seed")
    metrics.add_argument("--queries", type=int, default=5,
                         help="how many times the paper's query is posed")
    metrics.add_argument("--merge", default=None, metavar="DIR",
                         help="instead of running a workload, merge the "
                         "per-process *.metrics.prom dumps under DIR into "
                         "one exposition on stdout")
    metrics.add_argument("--scrape", default=None, metavar="DIR",
                         help="instead of running a workload, scrape the "
                         "live telemetry endpoints discovered under DIR "
                         "and print the merged exposition")
    metrics.add_argument("--watch", type=float, default=None, metavar="SECONDS",
                         help="with --scrape or --merge: re-render every "
                         "SECONDS until interrupted")
    metrics.add_argument("--iterations", type=int, default=None, metavar="N",
                         help="with --watch: stop after N renders")
    metrics.add_argument("--peer-filter", default=None, metavar="NODE",
                         help="with --scrape: only this peer's endpoint")

    serve = commands.add_parser(
        "serve",
        help="drive a concurrent query workload against a synthetic "
        "deployment and print the serving report",
    )
    serve.add_argument("--arch", choices=("hybrid", "adhoc"), default="hybrid",
                       help="deployment architecture")
    serve.add_argument("--mode", choices=("open", "closed"), default="open",
                       help="open-loop Poisson arrivals or closed-loop "
                       "think-time clients")
    serve.add_argument("--count", type=int, default=24,
                       help="logical queries to offer")
    serve.add_argument("--arrival-rate", type=float, default=0.2,
                       help="open loop: mean arrivals per unit of virtual time")
    serve.add_argument("--burst", type=int, default=1,
                       help="open loop: submissions per arrival instant")
    serve.add_argument("--clients", type=int, default=4,
                       help="driver-owned client peers")
    serve.add_argument("--think-time", type=float, default=5.0,
                       help="closed loop: virtual time between answer and "
                       "next submission")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for the deployment and the arrival process")
    serve.add_argument("--peers", type=int, default=3,
                       help="database peers in the synthetic deployment")
    serve.add_argument("--max-concurrent", type=int, default=None,
                       metavar="N",
                       help="enable admission control: coordinations held "
                       "at once per peer before queueing")
    serve.add_argument("--max-queued", type=int, default=16,
                       help="admission queue bound before shedding")
    serve.add_argument("--retry-after", type=float, default=25.0,
                       help="back-off hint sent with a shed")
    serve.add_argument("--deadline", type=float, default=None,
                       help="per-query deadline (virtual time); expired "
                       "queries are aborted via a plan discard")
    serve.add_argument("--fair-quantum", type=float, default=None,
                       metavar="Q",
                       help="enable fair per-query scheduling with this "
                       "round-robin quantum")
    serve.add_argument("--no-resubmit", action="store_true",
                       help="record shed queries as refused instead of "
                       "re-offering them after their back-off")
    serve.add_argument("--max-events", type=int, default=2_000_000,
                       help="simulator event budget for the run")
    serve.add_argument("--updates", action="store_true",
                       help="inject a seeded live update stream mid-run "
                       "(triple inserts/deletes + view redefinitions); "
                       "peers patch their bases and push advertisement "
                       "deltas while queries are being served")
    serve.add_argument("--update-rate", type=float, default=0.08,
                       help="with --updates: fraction of each base "
                       "mutated per revision")
    serve.add_argument("--update-revisions", type=int, default=3,
                       help="with --updates: how many revisions are "
                       "spread over the run")
    serve.add_argument("--topk", type=int, default=None, metavar="K",
                       help="pose every query as top-K (LIMIT K) with "
                       "any-k early termination: once K answers are "
                       "stable the coordinator discards the remaining "
                       "channels the ubQL way")

    from .deploy.node import add_spec_arguments

    peer = commands.add_parser(
        "peer",
        help="one node process of a live deployment (spawned by launch)",
    )
    peer.add_argument("--node-id", required=True,
                      help="protocol peer hosted by this process (P1, SP1, ...)")
    peer.add_argument("--seed", required=True, metavar="HOST:PORT",
                      help="address of the seed process (the launcher)")
    peer.add_argument("--host", default="127.0.0.1",
                      help="interface to listen on")
    peer.add_argument("--port", type=int, default=0,
                      help="listening port (0 picks a free one)")
    peer.add_argument("--outdir", required=True,
                      help="directory for metrics/trace exports")
    peer.add_argument("--lifetime", type=float, default=30_000.0,
                      help="virtual-time backstop before self-exit")
    peer.add_argument("--statedir", default=None, metavar="DIR",
                      help="durable state root (snapshot + membership log "
                      "under DIR/<node-id>); a restarted process recovers "
                      "from it")
    peer.add_argument("--no-telemetry", action="store_true",
                      help="disable the /metrics /healthz /tracez "
                      "endpoints and the durable flight-recorder sink")
    peer.add_argument("--telemetry-port", type=int, default=0,
                      help="telemetry endpoint port (0 picks a free one)")
    peer.add_argument("--slow-query-threshold", type=float, default=500.0,
                      help="virtual-time latency above which a query's "
                      "full trace is dumped to the slow-query log")
    add_spec_arguments(peer)

    launch = commands.add_parser(
        "launch",
        help="deploy a live localhost cluster and drive a workload",
    )
    launch.add_argument("--host", default="127.0.0.1",
                        help="interface the cluster binds to")
    launch.add_argument("--outdir", default="live-run",
                        help="directory for per-process and merged artifacts")
    launch.add_argument("--count", type=int, default=6,
                        help="queries to drive against the cluster")
    launch.add_argument("--kill", default=None, metavar="PEER",
                        help="kill this peer halfway through the run "
                        "(requires --resilient for partial answers)")
    launch.add_argument("--kill-signal", choices=("term", "kill"),
                        default="term",
                        help="signal for --kill: term is graceful, kill is "
                        "an abrupt crash (no snapshot, no goodbye)")
    launch.add_argument("--restart-after", type=float, default=None,
                        metavar="SECONDS",
                        help="restart the killed peer this many seconds "
                        "after the kill (the live twin of a CrashEvent "
                        "with recover_at)")
    launch.add_argument("--supervise", action="store_true",
                        help="restart crashed peer processes automatically "
                        "with exponential backoff and a restart-storm "
                        "circuit breaker")
    launch.add_argument("--join", default=None, metavar="PEER",
                        help="spawn this late joiner three quarters into "
                        "the run (name it within --joiners)")
    launch.add_argument("--statedir", default=None, metavar="DIR",
                        help="durable state root passed to every node "
                        "(defaults to OUTDIR/state when --supervise or "
                        "--restart-after is given)")
    launch.add_argument("--no-telemetry", action="store_true",
                        help="disable mid-run scraping, timeline.jsonl "
                        "and the SLO watchdogs")
    launch.add_argument("--scrape-every", type=int, default=2,
                        help="scrape every N driven queries (default 2)")
    launch.add_argument("--slo-window", type=float, default=120.0,
                        help="sliding window (virtual units) the SLO "
                        "rules evaluate over")
    launch.add_argument("--shed-alert", type=float, default=0.25,
                        help="shed-rate fraction above which the "
                        "shed-rate SLO fires")
    launch.add_argument("--updates", action="store_true",
                        help="inject a seeded live update stream a third "
                        "of the way into the run: triple inserts/deletes "
                        "and view redefinitions applied by the live "
                        "peers, advertisement deltas flowing to the "
                        "super-peers over the real transport")
    launch.add_argument("--update-rate", type=float, default=0.08,
                        help="with --updates: fraction of each base "
                        "mutated by the injected revision")
    launch.add_argument("--topk", type=int, default=None, metavar="K",
                        help="pose one extra LIMIT-K query near the end "
                        "of the run with any-k early termination "
                        "(enables the live data plane on every node)")
    add_spec_arguments(launch)

    top = commands.add_parser(
        "top",
        help="live cluster view: scrape every peer's telemetry endpoint "
        "and render per-peer health, inflight and throughput",
    )
    top.add_argument("outdir", nargs="?", default="live-run",
                     help="run directory holding *.endpoint.json files "
                     "(default live-run)")
    top.add_argument("--watch", action="store_true",
                     help="keep re-rendering instead of scraping once")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between scrapes with --watch (default 2)")
    top.add_argument("--iterations", type=int, default=None, metavar="N",
                     help="with --watch: stop after N rounds")
    top.add_argument("--window", type=float, default=60.0,
                     help="rollup window for rates/percentiles (default 60)")

    alerts = commands.add_parser(
        "alerts",
        help="replay a run's SLO alert timeline, or demo the watchdogs "
        "against an in-sim overload",
    )
    alerts.add_argument("outdir", nargs="?", default=None,
                        help="run directory with a timeline.jsonl to replay")
    alerts.add_argument("--demo", action="store_true",
                        help="drive an overloaded in-sim deployment and "
                        "print the alerts the SLO watchdogs fire")
    alerts.add_argument("--seed", type=int, default=0,
                        help="demo: deployment/workload seed")
    alerts.add_argument("--shed-alert", type=float, default=0.05,
                        help="demo: shed-rate fraction that trips the "
                        "shed-rate rule (default 0.05)")
    alerts.add_argument("--window", type=float, default=120.0,
                        help="sliding window the rules evaluate over")
    alerts.add_argument("--fail-on-active", action="store_true",
                        help="exit non-zero if any alert is still firing "
                        "at the end")
    return parser


def _cmd_demo() -> int:
    schema = paper_schema()
    print("query:", PAPER_QUERY)
    pattern = paper_query_pattern(schema)
    print("pattern:", pattern)
    annotated = route_query(pattern, paper_active_schemas(schema).values(), schema)
    print("annotated:", annotated)
    plan = build_plan(annotated)
    print("plan:", plan.render())
    print("optimized:", optimize(plan).result.render())
    system = HybridSystem(schema)
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    table = system.query("P1", PAPER_QUERY)
    print(f"answer ({len(table)} rows):")
    for binding in table.bindings():
        print("  ", binding["X"].local_name, "->", binding["Y"].local_name)
    return 0


def _cmd_figures() -> int:
    schema = paper_schema()
    pattern = paper_query_pattern(schema)
    annotated = route_query(pattern, paper_active_schemas(schema).values(), schema)
    print("Figure 2 (annotated query pattern):")
    print("  ", annotated)
    plan = build_plan(annotated)
    print("Figure 3 (query plan):")
    print("  ", plan.render())
    trace = optimize(plan)
    print("Figure 4 (optimisation):")
    for rule, step in trace:
        print(f"   {rule}: {step.render()}")
    scenario = adhoc_scenario()
    from .rvl import ActiveSchema

    neighbour_ads = [
        ActiveSchema.from_base(scenario.bases[p], schema, p)
        for p in scenario.neighbours["P1"]
    ]
    partial = optimize(
        build_plan(route_query(pattern, neighbour_ads, schema))
    ).result
    print("Figure 7 (P1's partial plan):")
    print("  ", partial.render())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema, args.namespace)
    if args.batch_size < 1:
        print("error: --batch-size must be >= 1", file=sys.stderr)
        return 2
    system = HybridSystem(
        schema,
        cache_enabled=not args.no_cache,
        vectorize=not args.no_vectorize,
        batch_size=args.batch_size,
        cost_based=args.cost_based,
        encode=args.encode,
    )
    system.add_super_peer("SP")
    names = []
    for spec in args.peer:
        name, _, path = spec.partition("=")
        if not path:
            print(f"error: --peer expects NAME=FILE, got {spec!r}", file=sys.stderr)
            return 2
        system.add_peer(name, load_graph(path), "SP")
        names.append(name)
    if args.via not in names:
        print(f"error: --via {args.via!r} is not among the peers", file=sys.stderr)
        return 2
    try:
        table = system.query(
            args.via, args.text, max_peers=args.max_peers, limit=args.limit
        )
    except Exception as exc:  # surfaced to the shell, not a traceback
        print(f"query failed: {exc}", file=sys.stderr)
        return 1
    print("\t".join(table.columns))
    for row in table.rows:
        print("\t".join(term.n3() for term in row))
    print(f"# {len(table)} rows", file=sys.stderr)
    return 0


def _parse_crash(spec: str):
    """``PEER@AT[:RECOVER]`` → :class:`CrashEvent`, or ``None``."""
    from .resilience import CrashEvent

    if not spec:
        return None
    peer, _, times = spec.partition("@")
    if not times:
        raise ValueError(f"--crash expects PEER@AT[:RECOVER], got {spec!r}")
    at, _, recover = times.partition(":")
    return CrashEvent(
        at=float(at), peer_id=peer, recover_at=float(recover) if recover else None
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .resilience import FaultPlan, ResilienceConfig, run_chaos

    try:
        crash = _parse_crash(args.crash)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    schema = paper_schema()
    system = HybridSystem(schema, seed=args.seed)
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    system.run()
    system.enable_resilience(ResilienceConfig.default(args.seed))
    plan = FaultPlan(
        seed=args.seed + 1,
        drop_rate=args.loss,
        duplicate_rate=args.duplicate,
        jitter=0.5,
        spike_rate=0.05,
        spike_latency=8.0,
        crashes=(crash,) if crash is not None else (),
    )
    chaos = run_chaos(system, [("P1", PAPER_QUERY)] * args.queries, plan)
    if args.trace_export and system.network.trace_collector is not None:
        with open(args.trace_export, "w") as handle:
            handle.write(system.network.trace_collector.export_json())
        print(f"traces written to {args.trace_export}", file=sys.stderr)
    if args.metrics_export:
        from .obs import render_prometheus, system_gauges

        with open(args.metrics_export, "w") as handle:
            handle.write(
                render_prometheus(system.network.metrics, system_gauges(system))
            )
        print(f"metrics written to {args.metrics_export}", file=sys.stderr)
    print(f"fault plan : loss={args.loss:.0%} duplicate={args.duplicate:.0%} "
          f"crash={args.crash or 'none'} seed={args.seed}")
    for outcome in chaos.outcomes:
        detail = outcome.error or outcome.coverage or f"{outcome.rows} rows"
        print(f"  {outcome.query_id:<12} {outcome.status:<9} {detail}")
    snap = chaos.snapshot
    print(chaos.summary())
    print(
        f"resilience : retries={snap.retries} retransmits={snap.retransmits} "
        f"suspicions={snap.suspicions} partial={snap.partial_results} "
        f"dropped={snap.dropped_messages} duplicated={snap.duplicated_messages}"
    )
    return 0


def _build_paper_system(arch: str, seed: int):
    """The Figure 6 (hybrid) or Figure 7 (ad-hoc) deployment."""
    from .workloads.paper import hybrid_scenario

    if arch == "adhoc":
        from .systems import AdhocSystem

        return AdhocSystem.from_scenario(adhoc_scenario(), seed=seed)
    return HybridSystem.from_scenario(hybrid_scenario(), seed=seed)


def _load_trace_export(path: str):
    """``trace_id -> span dicts`` from any of the trace export schemas
    (a node's ``trace-v1`` export or a launcher's ``trace-merge-v1``)."""
    import json

    from .obs import stitch_trace_exports

    with open(path) as handle:
        export = json.load(handle)
    if export.get("schema") == "repro.obs/trace-merge-v1":
        return stitch_trace_exports(list(export.get("nodes", {}).values()))
    return stitch_trace_exports([export])


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import render_trace, spans_from_dicts, validate_trace

    cross_clock = False
    if args.from_file is not None:
        # operator path: follow one query out of an exported run artifact
        try:
            stitched = _load_trace_export(args.from_file)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.from_file}: {exc}", file=sys.stderr)
            return 2
        if not stitched:
            print("no traces in the export", file=sys.stderr)
            return 1
        trace_id = args.query_id or next(reversed(stitched))
        if trace_id not in stitched:
            print(f"no trace for query {trace_id!r}; export holds: "
                  + ", ".join(sorted(stitched)), file=sys.stderr)
            return 1
        spans = spans_from_dicts(stitched[trace_id])
        # merged live-run spans carry per-process clock epochs
        cross_clock = len({s.peer_id for s in spans}) > 1
    else:
        system = _build_paper_system(args.arch, args.seed)
        text = args.text or PAPER_QUERY
        try:
            system.query(args.via, text)
        except Exception as exc:
            # the trace of a failed query is still worth rendering
            print(f"query failed: {exc}", file=sys.stderr)
        collector = system.network.trace_collector
        trace_id = args.query_id or collector.latest_trace_id()
        if trace_id is None:
            print("no trace was recorded", file=sys.stderr)
            return 1
        if trace_id not in collector.trace_ids():
            print(f"no trace for query {trace_id!r}; collected: "
                  + ", ".join(collector.trace_ids()), file=sys.stderr)
            return 1
        spans = collector.spans(trace_id)
    print(render_trace(spans, show_events=not args.no_events))
    if args.json:
        if args.from_file is not None:
            import json

            with open(args.json, "w") as handle:
                json.dump(
                    {
                        "schema": "repro.obs/trace-v1",
                        "traces": [
                            {
                                "trace_id": trace_id,
                                "spans": stitched[trace_id],
                            }
                        ],
                    },
                    handle,
                    indent=2,
                )
        else:
            with open(args.json, "w") as handle:
                handle.write(collector.export_json(trace_id))
        print(f"trace written to {args.json}", file=sys.stderr)
    if args.check:
        problems = validate_trace(spans, cross_clock=cross_clock)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        print(
            f"trace OK: single root, {len(spans)} spans, "
            f"{len({s.peer_id for s in spans})} peers, no gaps",
            file=sys.stderr,
        )
    return 0


def _watch_loop(render, interval, iterations) -> int:
    """Re-invoke ``render`` every ``interval`` seconds (clearing the
    screen between rounds) until Ctrl-C or ``iterations`` rounds."""
    import time

    rounds = 0
    try:
        while True:
            if rounds:
                print("\033[2J\033[H", end="")
            code = render()
            rounds += 1
            if iterations is not None and rounds >= iterations:
                return code
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _render_merged_dumps(directory: str) -> int:
    from pathlib import Path

    from .obs import merge_expositions

    dumps = sorted(Path(directory).glob("*.metrics.prom"))
    if not dumps:
        print(f"error: no *.metrics.prom files under {directory}",
              file=sys.stderr)
        return 1
    print(merge_expositions([p.read_text() for p in dumps]), end="")
    print(f"# merged {len(dumps)} process dumps", file=sys.stderr)
    return 0


def _render_scraped(directory: str, peer_filter) -> int:
    from pathlib import Path

    from .errors import NetworkError
    from .obs import merge_expositions
    from .obs.telemetry import discover_endpoints, scrape

    endpoints = discover_endpoints(Path(directory))
    if peer_filter is not None:
        endpoints = {k: v for k, v in endpoints.items() if k == peer_filter}
    if not endpoints:
        print(f"error: no matching *.endpoint.json under {directory}",
              file=sys.stderr)
        return 1
    texts, down = [], []
    for node_id, (host, port) in sorted(endpoints.items()):
        try:
            texts.append(scrape(host, port, "/metrics"))
        except NetworkError:
            down.append(node_id)
    if not texts:
        print(f"error: no live endpoint among {sorted(endpoints)}",
              file=sys.stderr)
        return 1
    print(merge_expositions(texts), end="")
    note = f"# scraped {len(texts)}/{len(endpoints)} endpoints"
    if down:
        note += f" (down: {', '.join(down)})"
    print(note, file=sys.stderr)
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .obs import render_prometheus, system_gauges

    if args.scrape is not None:
        render = lambda: _render_scraped(args.scrape, args.peer_filter)  # noqa: E731
    elif args.merge is not None:
        render = lambda: _render_merged_dumps(args.merge)  # noqa: E731
    else:
        render = None
    if render is not None:
        if args.watch is not None:
            return _watch_loop(render, args.watch, args.iterations)
        return render()
    if args.watch is not None:
        print("error: --watch needs --scrape DIR or --merge DIR "
              "(nothing moves in a finished in-sim run)", file=sys.stderr)
        return 2
    system = _build_paper_system(args.arch, args.seed)
    via = "P1"
    for _ in range(args.queries):
        try:
            system.query(via, PAPER_QUERY)
        except Exception as exc:
            print(f"query failed: {exc}", file=sys.stderr)
    print(render_prometheus(system.network.metrics, system_gauges(system)), end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .errors import EventBudgetExhausted
    from .workload_engine import AdmissionControl, WorkloadSpec
    from .workloads.data_gen import Distribution, generate_bases
    from .workloads.query_gen import random_queries
    from .workloads.schema_gen import generate_schema

    synthetic = generate_schema(
        chain_length=4, refinement_fraction=0.0, noise_properties=1,
        seed=args.seed,
    )
    peer_ids = [f"P{i}" for i in range(1, args.peers + 1)]
    generated = generate_bases(
        synthetic, peer_ids, Distribution.MIXED,
        statements_per_segment=15, shared_pool=6, seed=args.seed,
    )
    texts = random_queries(
        synthetic, max(4, min(args.count, 12)), max_length=3, seed=args.seed
    )
    if args.arch == "adhoc":
        from .systems import AdhocSystem

        system = AdhocSystem(synthetic.schema, seed=args.seed)
        for peer_id in peer_ids:
            neighbours = [p for p in peer_ids if p != peer_id]
            system.add_peer(peer_id, generated.bases[peer_id], neighbours)
        system.discover_all()
    else:
        system = HybridSystem(synthetic.schema, seed=args.seed)
        system.add_super_peer("SP")
        for peer_id in peer_ids:
            system.add_peer(peer_id, generated.bases[peer_id], "SP")
        system.run()  # settle the advertisement push
    if args.max_concurrent is not None:
        system.enable_admission(AdmissionControl(
            max_concurrent=args.max_concurrent,
            max_queued=args.max_queued,
            retry_after=args.retry_after,
            deadline=args.deadline,
        ))
    if args.fair_quantum is not None:
        system.enable_fair_scheduling(args.fair_quantum)
    driver = None
    if args.updates:
        from .livedata import LiveDataDriver, UpdateStream

        stream = UpdateStream(
            synthetic.schema, generated.bases, seed=args.seed,
            revisions=args.update_revisions, rate=args.update_rate,
        )
        driver = LiveDataDriver(system, stream)
        driver.schedule()
    if args.topk is not None:
        for peer_id in peer_ids:
            system.peers[peer_id].topk_cancel = True
            system.peers[peer_id].stream_chunk_rows = 4
    spec = WorkloadSpec(
        queries=tuple(
            (peer_ids[i % len(peer_ids)], texts[i % len(texts)])
            for i in range(args.count)
        ),
        count=args.count,
        mode=args.mode,
        arrival_rate=args.arrival_rate,
        burst_size=args.burst,
        clients=args.clients,
        think_time=args.think_time,
        seed=args.seed,
        resubmit_sheds=not args.no_resubmit,
        limit=args.topk,
    )
    try:
        report = system.serve(spec, max_events=args.max_events)
    except EventBudgetExhausted as exc:
        print(f"serve failed: {exc}", file=sys.stderr)
        return 1
    print(f"deployment : {args.arch} ({args.peers} peers, "
          f"{min(args.clients, args.count)} clients, seed {args.seed})")
    print(f"load       : {args.mode} loop, {args.count} queries over "
          f"{len(texts)} distinct texts")
    print(report.render())
    metrics = system.network.metrics
    if driver is not None:
        applied = sum(a.applied for a in driver.injector.acks)
        print(f"updates    : {driver.injected} batches injected "
              f"({applied} statements applied, "
              f"{metrics.messages_by_kind['AdvertiseDelta']} "
              f"advertisement deltas)")
    if args.topk is not None:
        print(f"top-k      : LIMIT {args.topk} on every query, "
              f"{metrics.topk_cancels} early cancels, "
              f"{metrics.discarded_bindings} bindings discarded")
    silent = report.by_status().get("silent", 0)
    if silent:
        print(f"WARNING: {silent} queries never got a reply", file=sys.stderr)
        return 1
    return 0


def _render_top(outdir, series, window: float) -> int:
    """One ``repro top`` frame: scrape every endpoint, print the table."""
    import time
    from pathlib import Path

    from .obs.telemetry import discover_endpoints

    run = Path(outdir)
    endpoints = discover_endpoints(run)
    if not endpoints:
        print(f"error: no *.endpoint.json under {run} "
              "(is this a live run directory?)", file=sys.stderr)
        return 1
    t = time.time()
    health: dict = {}
    for node_id, (host, port) in sorted(endpoints.items()):
        sample = _scrape_top_sample(node_id, host, port, t, health)
        series.append(node_id, sample)
    rollup = series.rollup(window)
    print(f"cluster  peers {rollup['peers_up']}/{rollup['peers']} up  "
          f"availability {rollup['availability']:.0%}  "
          f"q/s {rollup['query_rate']:.3g}  "
          f"inflight {rollup['inflight']:.0f}  "
          f"shed {rollup['shed_rate']:.1%}  "
          f"p99 {_fmt(rollup['p99_latency'])}")
    header = (f"{'NODE':<8} {'ROLE':<6} {'STATUS':<8} {'INFLIGHT':>8} "
              f"{'FINISHED':>8} {'SHED':>6} {'Q/S':>8} {'P99':>8}  NOTES")
    print(header)
    for node_id in sorted(endpoints):
        peer = series.peers[node_id]
        info = health.get(node_id, {})
        roll = peer.rollup(window)
        latest = peer.latest()
        notes = []
        quarantined = info.get("quarantined") or []
        if quarantined:
            notes.append("quarantined: " + ",".join(sorted(quarantined)))
        down = info.get("down_peers") or []
        if down:
            notes.append("down: " + ",".join(sorted(down)))
        if info.get("recoveries"):
            notes.append(f"recoveries: {info['recoveries']}")
        finished = latest.counters.get("queries_finished", 0) if latest else 0
        shed = latest.counters.get("queries_shed", 0) if latest else 0
        print(f"{node_id:<8} {str(info.get('role', '?')):<6} "
              f"{str(info.get('status', 'down')):<8} "
              f"{roll['inflight']:>8.0f} {finished:>8.0f} {shed:>6.0f} "
              f"{roll['query_rate']:>8.3g} {_fmt(roll['p99_latency']):>8}"
              f"  {'; '.join(notes)}")
    return 0


def _fmt(value) -> str:
    return "-" if value is None else f"{value:.4g}"


def _scrape_top_sample(node_id, host, port, t, health):
    from .errors import NetworkError
    from .obs.telemetry import (
        TelemetrySample,
        parse_exposition,
        sample_from_exposition,
        scrape,
        scrape_json,
    )

    try:
        parsed = parse_exposition(scrape(host, port, "/metrics"))
        info = scrape_json(host, port, "/healthz")
    except (NetworkError, ValueError):
        health[node_id] = {"status": "down"}
        return TelemetrySample(
            t=t, counters={}, latency_buckets=(), gauges={}, up=False
        )
    health[node_id] = info
    gauges = {"inflight_queries": info.get("inflight_queries", 0)}
    return sample_from_exposition(parsed, t, gauges)


def _cmd_top(args: argparse.Namespace) -> int:
    from .obs.telemetry import ClusterSeries

    series = ClusterSeries()
    render = lambda: _render_top(args.outdir, series, args.window)  # noqa: E731
    if args.watch:
        return _watch_loop(render, args.interval, args.iterations)
    return render()


def _cmd_alerts_demo(args: argparse.Namespace) -> int:
    """Drive an overloaded in-sim deployment until the shed-rate SLO
    fires — the watchdogs' end-to-end demo (and the CI probe that an
    injected overload actually raises an alert)."""
    from .errors import EventBudgetExhausted
    from .obs.telemetry import default_slo_rules, render_alert
    from .workload_engine import AdmissionControl, WorkloadSpec
    from .workload_engine.driver import WorkloadDriver
    from .workloads.data_gen import Distribution, generate_bases
    from .workloads.query_gen import random_queries
    from .workloads.schema_gen import generate_schema

    synthetic = generate_schema(
        chain_length=4, refinement_fraction=0.0, noise_properties=1,
        seed=args.seed,
    )
    peer_ids = ["P1", "P2", "P3"]
    generated = generate_bases(
        synthetic, peer_ids, Distribution.MIXED,
        statements_per_segment=15, shared_pool=6, seed=args.seed,
    )
    texts = random_queries(synthetic, 6, max_length=3, seed=args.seed)
    system = HybridSystem(synthetic.schema, seed=args.seed)
    system.add_super_peer("SP")
    for peer_id in peer_ids:
        system.add_peer(peer_id, generated.bases[peer_id], "SP")
    system.run()
    # starve admission so the burst has to shed
    system.enable_admission(AdmissionControl(
        max_concurrent=1, max_queued=1, retry_after=25.0
    ))
    count = 32
    spec = WorkloadSpec(
        queries=tuple(
            (peer_ids[i % len(peer_ids)], texts[i % len(texts)])
            for i in range(count)
        ),
        count=count,
        mode="open",
        arrival_rate=4.0,
        burst_size=4,
        clients=4,
        seed=args.seed,
        resubmit_sheds=False,
    )
    driver = WorkloadDriver(system, spec)
    driver.attach_telemetry(
        rules=default_slo_rules(shed_bound=args.shed_alert, window=args.window),
        window=args.window,
    )
    driver.install()
    try:
        system.network.run(max_events=2_000_000)
    except EventBudgetExhausted as exc:
        print(f"demo failed: {exc}", file=sys.stderr)
        return 1
    report = driver.report()
    by_status = report.by_status()
    print(f"overload   : {count} queries burst at an admission gate of "
          f"1 running + 1 queued per peer")
    print(f"outcomes   : " + " ".join(
        f"{status}={n}" for status, n in sorted(by_status.items())
    ))
    if not driver.slo_events:
        print("no alerts fired (overload insufficient?)", file=sys.stderr)
        return 1
    print("alerts     :")
    for event in driver.slo_events:
        print("  " + render_alert(event))
    fired = {e["rule"] for e in driver.slo_events if e["state"] == "firing"}
    print(f"fired rules: {', '.join(sorted(fired))}")
    return 0


def _cmd_alerts(args: argparse.Namespace) -> int:
    if args.demo:
        return _cmd_alerts_demo(args)
    if args.outdir is None:
        print("error: give a run directory to replay, or --demo",
              file=sys.stderr)
        return 2
    from pathlib import Path

    from .obs.telemetry import read_timeline, render_alert

    run = Path(args.outdir)
    records = read_timeline(run / "timeline.jsonl")
    if not records:
        print(f"error: no timeline.jsonl under {run}", file=sys.stderr)
        return 1
    rounds = sum(1 for r in records if r.get("kind") == "rollup")
    alerts = [r for r in records if r.get("kind") == "alert"]
    active: dict = {}
    for event in alerts:
        key = (event.get("scope"), event.get("rule"))
        if event.get("state") == "firing":
            active[key] = event
        else:
            active.pop(key, None)
        print(render_alert(event))
    if not alerts:
        print("no alert transitions recorded")
    print(f"# {rounds} scrape rounds, {len(alerts)} transitions, "
          f"{len(active)} still firing", file=sys.stderr)
    for (scope, rule), event in sorted(active.items()):
        print(f"#   still firing: {rule} ({scope})", file=sys.stderr)
    if args.fail_on_active and active:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "figures":
        return _cmd_figures()
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "peer":
        from .deploy.node import run_node

        return run_node(args)
    if args.command == "launch":
        from .deploy.launcher import run_launch

        return run_launch(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "alerts":
        return _cmd_alerts(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
