"""Command-line interface.

Three subcommands::

    python -m repro demo
        Run the paper's running example end to end and print each
        middleware stage (pattern, annotation, plans, answer).

    python -m repro figures
        Print the exact artefacts of Figures 2, 3, 4 and 7 (annotation
        table and plan strings) for eyeball comparison with the paper.

    python -m repro query --schema schema.nt --namespace URI \\
        --peer NAME=base.nt [--peer ...] --via NAME "SELECT ..."
        Load a community schema and peer bases from N-Triples files,
        deploy them as a hybrid SON and evaluate the query.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import build_plan, optimize, route_query
from .rdf import load_graph, load_schema
from .systems import HybridSystem
from .workloads.paper import (
    PAPER_QUERY,
    adhoc_scenario,
    paper_active_schemas,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SQPeer: semantic query routing and processing for P2P RDF/S bases",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run the paper's running example")
    commands.add_parser("figures", help="print the Figure 2/3/4/7 artefacts")

    query = commands.add_parser("query", help="query N-Triples peer bases")
    query.add_argument("--schema", required=True, help="schema N-Triples file")
    query.add_argument("--namespace", required=True, help="schema namespace URI")
    query.add_argument(
        "--peer",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="peer base as NAME=path.nt (repeatable)",
    )
    query.add_argument("--via", required=True, help="coordinating peer name")
    query.add_argument("--limit", type=int, default=None, help="Top-N bound")
    query.add_argument("--max-peers", type=int, default=None,
                       help="broadcast bound per path pattern")
    query.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the routing/plan caches and request coalescing "
        "(cold per-query routing, as in the paper)",
    )
    query.add_argument("text", help="RQL query text")
    return parser


def _cmd_demo() -> int:
    schema = paper_schema()
    print("query:", PAPER_QUERY)
    pattern = paper_query_pattern(schema)
    print("pattern:", pattern)
    annotated = route_query(pattern, paper_active_schemas(schema).values(), schema)
    print("annotated:", annotated)
    plan = build_plan(annotated)
    print("plan:", plan.render())
    print("optimized:", optimize(plan).result.render())
    system = HybridSystem(schema)
    system.add_super_peer("SP1")
    for peer_id, graph in paper_peer_bases().items():
        system.add_peer(peer_id, graph, "SP1")
    table = system.query("P1", PAPER_QUERY)
    print(f"answer ({len(table)} rows):")
    for binding in table.bindings():
        print("  ", binding["X"].local_name, "->", binding["Y"].local_name)
    return 0


def _cmd_figures() -> int:
    schema = paper_schema()
    pattern = paper_query_pattern(schema)
    annotated = route_query(pattern, paper_active_schemas(schema).values(), schema)
    print("Figure 2 (annotated query pattern):")
    print("  ", annotated)
    plan = build_plan(annotated)
    print("Figure 3 (query plan):")
    print("  ", plan.render())
    trace = optimize(plan)
    print("Figure 4 (optimisation):")
    for rule, step in trace:
        print(f"   {rule}: {step.render()}")
    scenario = adhoc_scenario()
    from .rvl import ActiveSchema

    neighbour_ads = [
        ActiveSchema.from_base(scenario.bases[p], schema, p)
        for p in scenario.neighbours["P1"]
    ]
    partial = optimize(
        build_plan(route_query(pattern, neighbour_ads, schema))
    ).result
    print("Figure 7 (P1's partial plan):")
    print("  ", partial.render())
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema, args.namespace)
    system = HybridSystem(schema, cache_enabled=not args.no_cache)
    system.add_super_peer("SP")
    names = []
    for spec in args.peer:
        name, _, path = spec.partition("=")
        if not path:
            print(f"error: --peer expects NAME=FILE, got {spec!r}", file=sys.stderr)
            return 2
        system.add_peer(name, load_graph(path), "SP")
        names.append(name)
    if args.via not in names:
        print(f"error: --via {args.via!r} is not among the peers", file=sys.stderr)
        return 2
    try:
        table = system.query(
            args.via, args.text, max_peers=args.max_peers, limit=args.limit
        )
    except Exception as exc:  # surfaced to the shell, not a traceback
        print(f"query failed: {exc}", file=sys.stderr)
        return 1
    print("\t".join(table.columns))
    for row in table.rows:
        print("\t".join(term.n3() for term in row))
    print(f"# {len(table)} rows", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "figures":
        return _cmd_figures()
    if args.command == "query":
        return _cmd_query(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
