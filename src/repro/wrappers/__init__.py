"""Legacy-store wrappers: virtual RDF/S views over relational/XML data."""

from .relational import (
    PropertyMapping,
    RelationalPeerMapping,
    RelationalStore,
    Table,
)
from .xmlstore import ElementMapping, XMLElement, XMLPeerMapping, XMLStore

__all__ = [
    "ElementMapping",
    "PropertyMapping",
    "RelationalPeerMapping",
    "RelationalStore",
    "Table",
    "XMLElement",
    "XMLPeerMapping",
    "XMLStore",
]
