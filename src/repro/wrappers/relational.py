"""A miniature relational store with RDF/S mapping rules.

Stands in for the relational peer bases SQPeer virtualises through
SWIM-style mappings (Section 2.2's virtual scenario): a peer keeps its
data in tables and exposes an RDF/S image of it, so its active-schema
advertises what *can* be populated on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import MappingError
from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rdf.terms import Literal, URI
from ..rdf.vocabulary import LITERAL_CLASS, TYPE
from ..rql.pattern import SchemaPath
from ..rvl.active_schema import ActiveSchema

Row = Tuple


class Table:
    """A named relation with fixed columns."""

    def __init__(self, name: str, columns: Sequence[str]):
        if len(set(columns)) != len(columns):
            raise MappingError(f"duplicate columns in table {name}")
        self.name = name
        self.columns = tuple(columns)
        self.rows: List[Row] = []

    def insert(self, *values) -> None:
        if len(values) != len(self.columns):
            raise MappingError(
                f"{self.name}: expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(tuple(values))

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise MappingError(f"{self.name} has no column {column!r}") from None

    def __len__(self) -> int:
        return len(self.rows)


class RelationalStore:
    """A set of tables."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[str]) -> Table:
        if name in self._tables:
            raise MappingError(f"table {name} already exists")
        table = Table(name, columns)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise MappingError(f"no table {name}") from None

    def tables(self) -> List[str]:
        return sorted(self._tables)


@dataclass(frozen=True)
class PropertyMapping:
    """Map two columns of a table to a property's subject/object.

    Attributes:
        table: Source table name.
        subject_column: Column minting the subject resource.
        object_column: Column minting the object (resource or literal).
        property: Target RDF/S property.
        uri_prefix: Prefix for minted resource URIs.
        object_is_literal: Emit the object column as a literal (for
            properties with range ``rdfs:Literal``).
    """

    table: str
    subject_column: str
    object_column: str
    property: URI
    uri_prefix: str
    object_is_literal: bool = False


class RelationalPeerMapping:
    """The RDF/S virtualisation of one relational store.

    Args:
        store: The legacy data.
        schema: The community schema mapped onto.
        mappings: Column-pair → property rules.
    """

    def __init__(
        self,
        store: RelationalStore,
        schema: Schema,
        mappings: Iterable[PropertyMapping] = (),
    ):
        self.store = store
        self.schema = schema
        self.mappings: List[PropertyMapping] = []
        for mapping in mappings:
            self.add_mapping(mapping)

    def add_mapping(self, mapping: PropertyMapping) -> None:
        if not self.schema.has_property(mapping.property):
            raise MappingError(f"mapping targets undeclared property {mapping.property}")
        range_ = self.schema.range_of(mapping.property)
        if mapping.object_is_literal != (range_ == LITERAL_CLASS):
            raise MappingError(
                f"mapping literal-ness disagrees with range of {mapping.property}"
            )
        # validate the columns exist up front
        table = self.store.table(mapping.table)
        table.column_index(mapping.subject_column)
        table.column_index(mapping.object_column)
        self.mappings.append(mapping)

    def virtual_graph(self) -> Graph:
        """Materialise the RDF/S image of the store ("populated on
        demand" — callers invoke this lazily)."""
        graph = Graph()
        for mapping in self.mappings:
            table = self.store.table(mapping.table)
            s_idx = table.column_index(mapping.subject_column)
            o_idx = table.column_index(mapping.object_column)
            definition = self.schema.property_def(mapping.property)
            for row in table.rows:
                subject = URI(f"{mapping.uri_prefix}{row[s_idx]}")
                graph.add(subject, TYPE, definition.domain)
                if mapping.object_is_literal:
                    graph.add(subject, mapping.property, Literal(row[o_idx]))
                else:
                    obj = URI(f"{mapping.uri_prefix}{row[o_idx]}")
                    graph.add(obj, TYPE, definition.range)
                    graph.add(subject, mapping.property, obj)
        return graph

    def active_schema(self, peer_id: str) -> ActiveSchema:
        """The advertisement: every mapped property *can* be populated,
        regardless of current row counts — the virtual scenario."""
        paths = []
        for mapping in self.mappings:
            definition = self.schema.property_def(mapping.property)
            paths.append(SchemaPath(definition.domain, definition.uri, definition.range))
        return ActiveSchema(self.schema.namespace.uri, paths, peer_id=peer_id)
