"""A miniature XML store with RDF/S mapping rules.

The second legacy-base flavour the paper's virtual scenario covers:
peers holding semistructured (XML) data expose an RDF/S image of it
through element-path mappings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import MappingError
from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rdf.terms import Literal, URI
from ..rdf.vocabulary import LITERAL_CLASS, TYPE
from ..rql.pattern import SchemaPath
from ..rvl.active_schema import ActiveSchema


class XMLElement:
    """A node of a simple XML tree (tag, attributes, text, children)."""

    def __init__(
        self,
        tag: str,
        attributes: Optional[Dict[str, str]] = None,
        text: str = "",
    ):
        self.tag = tag
        self.attributes = dict(attributes or {})
        self.text = text
        self.children: List["XMLElement"] = []

    def append(self, child: "XMLElement") -> "XMLElement":
        self.children.append(child)
        return child

    def find_all(self, path: Sequence[str]) -> Iterator["XMLElement"]:
        """All descendants along a tag path (``("course", "lecturer")``
        means: children tagged ``course``, then their children tagged
        ``lecturer``)."""
        if not path:
            yield self
            return
        head, *rest = path
        for child in self.children:
            if child.tag == head:
                yield from child.find_all(rest)

    def __repr__(self) -> str:
        return f"XMLElement(<{self.tag}>, children={len(self.children)})"


class XMLStore:
    """A forest of XML documents."""

    def __init__(self):
        self.documents: List[XMLElement] = []

    def add_document(self, root: XMLElement) -> XMLElement:
        self.documents.append(root)
        return root

    def find_all(self, path: Sequence[str]) -> Iterator[XMLElement]:
        for document in self.documents:
            if document.tag == path[0]:
                yield from document.find_all(path[1:])


@dataclass(frozen=True)
class ElementMapping:
    """Map an element path to a property statement.

    Attributes:
        path: Tag path selecting the *object* elements.
        subject_attribute: Attribute (on the element ``levels_up``
            ancestors above) identifying the subject.
        object_attribute: Attribute identifying the object resource, or
            ``None`` to use the element text as a literal.
        property: Target property.
        uri_prefix: Prefix for minted URIs.
    """

    path: Tuple[str, ...]
    subject_attribute: str
    property: URI
    uri_prefix: str
    object_attribute: Optional[str] = None


class XMLPeerMapping:
    """The RDF/S virtualisation of an XML store."""

    def __init__(
        self,
        store: XMLStore,
        schema: Schema,
        mappings: Iterable[ElementMapping] = (),
    ):
        self.store = store
        self.schema = schema
        self.mappings: List[ElementMapping] = []
        for mapping in mappings:
            self.add_mapping(mapping)

    def add_mapping(self, mapping: ElementMapping) -> None:
        if not self.schema.has_property(mapping.property):
            raise MappingError(f"mapping targets undeclared property {mapping.property}")
        range_ = self.schema.range_of(mapping.property)
        wants_literal = mapping.object_attribute is None
        if wants_literal != (range_ == LITERAL_CLASS):
            raise MappingError(
                f"mapping literal-ness disagrees with range of {mapping.property}"
            )
        if len(mapping.path) < 1:
            raise MappingError("element path must not be empty")
        self.mappings.append(mapping)

    def virtual_graph(self) -> Graph:
        """Materialise the RDF/S image of the XML forest."""
        graph = Graph()
        for mapping in self.mappings:
            definition = self.schema.property_def(mapping.property)
            for element in self.store.find_all(list(mapping.path)):
                subject_id = element.attributes.get(mapping.subject_attribute)
                if subject_id is None:
                    continue
                subject = URI(f"{mapping.uri_prefix}{subject_id}")
                graph.add(subject, TYPE, definition.domain)
                if mapping.object_attribute is None:
                    graph.add(subject, mapping.property, Literal(element.text))
                else:
                    object_id = element.attributes.get(mapping.object_attribute)
                    if object_id is None:
                        continue
                    obj = URI(f"{mapping.uri_prefix}{object_id}")
                    graph.add(obj, TYPE, definition.range)
                    graph.add(subject, mapping.property, obj)
        return graph

    def active_schema(self, peer_id: str) -> ActiveSchema:
        """Advertisement of what the mappings can populate."""
        paths = []
        for mapping in self.mappings:
            definition = self.schema.property_def(mapping.property)
            paths.append(SchemaPath(definition.domain, definition.uri, definition.range))
        return ActiveSchema(self.schema.namespace.uri, paths, peer_id=peer_id)
