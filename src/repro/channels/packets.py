"""Channel packet payloads (paper Section 2.4).

Channels carry subplans from root to destination and, in the reverse
direction, data packets with query results — plus failure
notifications, "changing plan" packets and statistics, as ubQL
prescribes.  Every payload provides ``size_bytes()`` so the simulator
can charge bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..core.algebra import PlanNode, count_scans
from ..execution.encoded import EncodedTable
from ..rdf.terms import Term
from ..rql.bindings import BindingTable

#: Relative tree path inside a shipped subplan.
TreePath = Tuple[int, ...]


@dataclass(frozen=True)
class SubPlanPacket:
    """Root → destination: execute this (sub)plan and stream results back.

    Attributes:
        channel_id: The root-local channel identifier.
        plan: The plan subtree the destination must execute.
        sites: Execution sites for the subtree's inner nodes, keyed by
            tree path relative to ``plan`` (shipped along so the
            destination honours the coordinator's shipping decisions).
        root_peer: The peer coordinating the whole query (for tracing).
        query_id: The query this subplan belongs to.
    """

    channel_id: str
    plan: PlanNode
    sites: Dict[TreePath, str] = field(default_factory=dict)
    root_peer: str = ""
    query_id: str = ""

    def size_bytes(self) -> int:
        return 128 + 96 * count_scans(self.plan) + 16 * len(self.sites)


@dataclass(frozen=True)
class DataPacket:
    """Destination → root: a batch of result bindings.

    Attributes:
        channel_id: The channel the data flows over.
        table: The bindings.
        final: True when no more packets will follow on this channel.
        failed_peer: When execution below the destination failed, the
            peer that caused it (the root replans; ubQL failure info).
        seq: Position of this packet in the channel's stream.  The root
            deduplicates on it, so duplicated or retransmitted packets
            never union the same rows twice.
        encoded: With dictionary encoding on, the bindings travel as an
            :class:`~repro.execution.encoded.EncodedTable` of ids (the
            channel's :class:`DictionaryPacket` supplies the mapping);
            ``table`` is then an empty placeholder carrying the columns.
    """

    channel_id: str
    table: BindingTable
    final: bool = True
    failed_peer: Optional[str] = None
    seq: int = 0
    encoded: Optional[EncodedTable] = None

    @property
    def rows(self) -> int:
        """Bindings carried, whichever representation is in use."""
        return self.encoded.length if self.encoded is not None else len(self.table)

    def size_bytes(self) -> int:
        if self.encoded is not None:
            return 64 + self.encoded.size_bytes()
        return 64 + self.table.size_bytes()


@dataclass(frozen=True)
class DictionaryPacket:
    """Destination → root: dictionary entries for an encoded stream.

    Ships once per channel, before the data packets whose id columns it
    decodes.  Only the ids the stream actually references travel (the
    peer's full dictionary stays home).
    """

    channel_id: str
    entries: Tuple[Tuple[int, Term], ...] = ()

    def size_bytes(self) -> int:
        return 64 + sum(4 + len(term.n3()) for _, term in self.entries)


@dataclass(frozen=True)
class ChangePlanPacket:
    """Root → destination: the plan for this channel changed.

    Under the ubQL policy SQPeer adopts, the destination discards
    intermediate results and terminates on-going computation for the
    channel.
    """

    channel_id: str
    reason: str = ""

    def size_bytes(self) -> int:
        return 96 + len(self.reason)


@dataclass(frozen=True)
class StatsPacket:
    """Destination → root: execution statistics for the optimiser
    (tuple counts measured on the channel, Section 2.5)."""

    channel_id: str
    tuples_produced: int
    cardinalities: Dict[str, int] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return 64 + 16 * len(self.cardinalities)
