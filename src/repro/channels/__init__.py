"""ubQL-style communication channels (paper Section 2.4)."""

from .channel import Channel, ChannelState
from .manager import ChannelCallback, ChannelManager
from .packets import ChangePlanPacket, DataPacket, StatsPacket, SubPlanPacket

__all__ = [
    "ChangePlanPacket",
    "Channel",
    "ChannelCallback",
    "ChannelManager",
    "ChannelState",
    "DataPacket",
    "StatsPacket",
    "SubPlanPacket",
]
