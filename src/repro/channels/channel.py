"""The channel construct (paper Section 2.4, after ubQL).

Each channel has a **root** and a **destination** node.  The root
manages the channel under a locally unique id; data packets flow from
the destination to the root; the root reacts to failures and plan
changes.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..core.algebra import PlanNode


class ChannelState(enum.Enum):
    OPEN = "open"
    CLOSED = "closed"
    FAILED = "failed"


class Channel:
    """Root-side bookkeeping for one channel.

    Attributes:
        channel_id: Root-local unique id (``"P1#3"``).
        root: The managing peer (launched the subplan).
        destination: The peer executing the subplan.
        plan: The subplan shipped over the channel.
        state: Lifecycle state.
        tuples_received: Result tuples seen so far (the throughput
            signal run-time adaptation watches).
        span: The root-side tracing span covering the channel's
            open-transfer-close lifetime (``None`` outside a traced
            network).
    """

    __slots__ = (
        "channel_id",
        "root",
        "destination",
        "plan",
        "state",
        "tuples_received",
        "query_id",
        "span",
    )

    def __init__(
        self,
        channel_id: str,
        root: str,
        destination: str,
        plan: Optional[PlanNode],
        query_id: str = "",
        span=None,
    ):
        self.channel_id = channel_id
        self.root = root
        self.destination = destination
        self.plan = plan
        self.state = ChannelState.OPEN
        self.tuples_received = 0
        self.query_id = query_id
        self.span = span

    @property
    def is_open(self) -> bool:
        return self.state is ChannelState.OPEN

    def record_tuples(self, count: int) -> None:
        self.tuples_received += count

    def close(self) -> None:
        if self.state is ChannelState.OPEN:
            self.state = ChannelState.CLOSED
            if self.span is not None:
                self.span.set(tuples=self.tuples_received)
                self.span.finish()

    def fail(self) -> None:
        if self.span is not None and self.state is ChannelState.OPEN:
            self.span.set(tuples=self.tuples_received)
            self.span.finish("failed")
        self.state = ChannelState.FAILED

    def __repr__(self) -> str:
        return (
            f"Channel({self.channel_id}: {self.root} -> {self.destination}, "
            f"{self.state.value}, tuples={self.tuples_received})"
        )
