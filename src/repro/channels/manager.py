"""Per-peer channel management.

A :class:`ChannelManager` mints root-local channel ids, sends subplan
packets over the network, and dispatches incoming data packets and
failures to the continuation registered when the channel was opened.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set

from ..core.algebra import PlanNode
from ..errors import ChannelError
from ..execution.batch import concat_tables
from ..execution.encoded import decode_table
from ..net.message import Message
from ..net.simulator import Network
from ..resilience.retry import RetryPolicy
from ..rdf.terms import Term
from ..rql.bindings import BindingTable
from .channel import Channel
from .packets import DataPacket, DictionaryPacket, SubPlanPacket, TreePath

#: Continuation invoked with (table, failed_peer) when a channel completes.
ChannelCallback = Callable[[Optional[BindingTable], Optional[str]], None]
#: Per-chunk consumer for pipelined channels.
ProgressCallback = Callable[[BindingTable], None]


class ChannelManager:
    """Channels rooted at one peer.

    Args:
        owner: The peer id owning (rooting) these channels.
    """

    def __init__(self, owner: str):
        self.owner = owner
        #: incarnation epoch: 0 for a peer's first life; a crash-recovered
        #: incarnation sets its recovery count here so freshly minted
        #: channel ids can never collide with a predecessor's — executors
        #: keep a retransmit-replay cache keyed by channel id, and a
        #: stale hit would replay another query's result verbatim
        self.epoch = 0
        self._channels: Dict[str, Channel] = {}
        self._callbacks: Dict[str, ChannelCallback] = {}
        #: streamed chunks, buffered as a list and concatenated once at
        #: the final packet (linear in total rows, not quadratic)
        self._buffers: Dict[str, List[BindingTable]] = {}
        self._progress: Dict[str, ProgressCallback] = {}  # pipelined channels
        self._counter = itertools.count(1)
        self._received_seqs: Dict[str, Set[int]] = {}  # packet dedup
        self._activity: Dict[str, int] = {}  # packets seen (timeout resets)
        #: seq carried by the stream's final packet, once seen — the
        #: stream completes when seqs 0..final have ALL arrived, not
        #: when the final packet does (back-to-back batches can arrive
        #: out of order: delivery delay grows with packet size)
        self._final_seqs: Dict[str, int] = {}
        #: channels torn down by a replan: late packets for them count
        #: as discarded bindings instead of silently vanishing
        self._discarded: Set[str] = set()
        #: per-channel id → term mapping (encoded streams), from the
        #: channel's DictionaryPacket
        self._dictionaries: Dict[str, Dict[int, Term]] = {}
        #: the owning peer's term dictionary, bound at join when the
        #: peer runs encoded: arriving streams are *translated* into
        #: this id space (one encode per dictionary entry, not per
        #: cell) so the coordinator's whole pipeline stays on ints
        self.wire_dictionary = None
        #: per-channel sender-id → owner-id translation tables
        self._translations: Dict[str, Dict[int, int]] = {}
        #: encoded packets that raced ahead of their dictionary
        #: (delivery delay grows with size, and the dictionary packet
        #: is usually the largest) — drained on dictionary arrival
        self._undecodable: Dict[str, List[DataPacket]] = {}
        self._metrics = None  # bound by Peer.join
        self._scheduler = None  # bound by Peer.install_scheduler

    def bind_metrics(self, metrics) -> None:
        """Attach the network's metric set (discarded-binding counts)."""
        self._metrics = metrics

    def bind_scheduler(self, scheduler) -> None:
        """Route completion continuations through a fair per-query
        scheduler (concurrent serving): each channel's callback becomes
        one work unit keyed by its query id, so a query gathering many
        channels cannot starve cheaper concurrent ones."""
        self._scheduler = scheduler

    def _record_discarded(self, count: int) -> None:
        if count and self._metrics is not None:
            self._metrics.record_discarded_bindings(count)

    def mint_id(self) -> str:
        """The next channel id, unique across this owner's incarnations."""
        root = self.owner if not self.epoch else f"{self.owner}~{self.epoch}"
        return f"{root}#{next(self._counter)}"

    # ------------------------------------------------------------------
    # root side
    # ------------------------------------------------------------------
    def open(
        self,
        network: Network,
        destination: str,
        plan: PlanNode,
        callback: ChannelCallback,
        sites: Optional[Dict[TreePath, str]] = None,
        query_id: str = "",
        progress: Optional[ProgressCallback] = None,
        retry: Optional[RetryPolicy] = None,
        trace=None,
    ) -> Channel:
        """Open a channel: ship ``plan`` to ``destination`` and register
        the continuation for its results.

        ``trace`` optionally carries the opener's span context: the
        channel then gets its own ``channel`` span (open to close/fail)
        and the shipped subplan packet propagates that span's context so
        the destination's execution stitches underneath it.

        With ``progress`` set, the channel runs in *pipelined* mode:
        every arriving chunk (including the final one) is handed to
        ``progress`` immediately, no buffering happens, and the
        completion ``callback`` fires with an empty table — a pure
        done-signal.

        With ``retry`` set, the channel is guarded by a deadline: if no
        packet arrives within the attempt's timeout the subplan is
        retransmitted (exponential backoff), and when attempts run out
        the channel fails as if the destination had bounced — the
        timeout-based detection a non-omniscient network requires.
        """
        channel_id = self.mint_id()
        span = network.tracer.start_span(
            "channel",
            peer=self.owner,
            parent=trace,
            channel=channel_id,
            destination=destination,
            query=query_id,
        )
        channel = Channel(
            channel_id,
            self.owner,
            destination,
            plan,
            query_id,
            span=span if span else None,
        )
        self._channels[channel_id] = channel
        self._callbacks[channel_id] = callback
        if progress is not None:
            self._progress[channel_id] = progress
        packet = SubPlanPacket(
            channel_id=channel_id,
            plan=plan,
            sites=dict(sites or {}),
            root_peer=self.owner,
            query_id=query_id,
        )
        network.send(Message(self.owner, destination, packet, trace=span.context()))
        if retry is not None:
            self._arm_timeout(network, channel_id, packet, destination, retry, 1)
        return channel

    def _arm_timeout(
        self,
        network: Network,
        channel_id: str,
        packet: SubPlanPacket,
        destination: str,
        retry: RetryPolicy,
        attempt: int,
    ) -> None:
        """Arm one attempt's deadline for an open channel."""
        progress_mark = self._activity.get(channel_id, 0)

        def check() -> None:
            channel = self._channels.get(channel_id)
            if channel is None or not channel.is_open:
                return
            if self._activity.get(channel_id, 0) > progress_mark:
                # packets flowed during the window: the destination is
                # alive, keep waiting without burning an attempt
                self._arm_timeout(
                    network, channel_id, packet, destination, retry, attempt
                )
                return
            if retry.attempts_left(attempt + 1):
                network.metrics.record_retransmit()
                if channel.span is not None:
                    channel.span.annotate(f"retransmit attempt={attempt + 1}")
                network.send(
                    Message(
                        self.owner,
                        destination,
                        packet,
                        trace=channel.span.context() if channel.span else None,
                    )
                )
                self._arm_timeout(
                    network, channel_id, packet, destination, retry, attempt + 1
                )
            else:
                self.on_failure(channel_id)

        network.call_later(retry.timeout(attempt), check)

    def on_dictionary(self, packet: DictionaryPacket) -> None:
        """Install an encoded channel's id → term mapping and drain any
        data packets that arrived before it (idempotent: a duplicated
        dictionary merges into the same mapping)."""
        channel = self._channels.get(packet.channel_id)
        if channel is None or not channel.is_open:
            return  # unknown or torn down: buffered packets were counted at discard
        mapping = self._dictionaries.setdefault(packet.channel_id, {})
        mapping.update(packet.entries)
        if self.wire_dictionary is not None:
            translation = self._translations.setdefault(packet.channel_id, {})
            encode = self.wire_dictionary.encode
            for tid, term in packet.entries:
                translation[tid] = encode(term)
        self._activity[packet.channel_id] = self._activity.get(packet.channel_id, 0) + 1
        pending = self._undecodable.pop(packet.channel_id, None)
        if pending:
            for data_packet in pending:
                self.on_data(data_packet)

    def on_data(self, packet: DataPacket) -> None:
        """Dispatch a data packet to the channel's continuation."""
        channel = self._channels.get(packet.channel_id)
        if channel is None:
            # late packet for a channel this peer never rooted: drop it
            return
        if not channel.is_open:
            if packet.channel_id in self._discarded:
                # the replan already tore this channel down: these
                # bindings were computed for nothing — account them
                self._record_discarded(packet.rows)
            return
        if packet.encoded is not None and packet.channel_id not in self._dictionaries:
            # encoded data raced ahead of its dictionary: hold it
            self._activity[packet.channel_id] = (
                self._activity.get(packet.channel_id, 0) + 1
            )
            self._undecodable.setdefault(packet.channel_id, []).append(packet)
            return
        seen = self._received_seqs.setdefault(packet.channel_id, set())
        if packet.seq in seen:
            # duplicated in flight, or replayed after a retransmit the
            # original answer raced: never union the same rows twice
            return
        seen.add(packet.seq)
        if packet.encoded is not None:
            if self.wire_dictionary is not None:
                table = self._translate_encoded(packet)
            else:
                table = decode_table(
                    packet.encoded, self._dictionaries[packet.channel_id]
                )
        elif (
            self.wire_dictionary is not None
            and packet.failed_peer is None
            and packet.table.columns
            and packet.table.rows
        ):
            # a scalar stream arriving at an encoding root (mixed
            # deployment): intern the terms so the pipeline stays in
            # one id space
            encode = self.wire_dictionary.encode
            table = BindingTable(packet.table.columns)
            table.rows.extend(
                tuple(encode(term) for term in row) for row in packet.table.rows
            )
        else:
            table = packet.table
        self._activity[packet.channel_id] = self._activity.get(packet.channel_id, 0) + 1
        channel.record_tuples(len(table))
        if channel.span is not None:
            channel.span.annotate(
                f"data seq={packet.seq} rows={len(table)}"
                + (" final" if packet.final else "")
            )
        if packet.failed_peer is not None:
            channel.fail()
            self._buffers.pop(packet.channel_id, None)
            self._progress.pop(packet.channel_id, None)
            self._final_seqs.pop(packet.channel_id, None)
            self._finish(packet.channel_id, None, packet.failed_peer)
            return
        if packet.final:
            self._final_seqs[packet.channel_id] = packet.seq
        progress = self._progress.get(packet.channel_id)
        if progress is not None:
            progress(table)
        else:
            self._buffers.setdefault(packet.channel_id, []).append(table)
        final_seq = self._final_seqs.get(packet.channel_id)
        if final_seq is None or len(seen) < final_seq + 1:
            return  # chunks still outstanding
        channel.close()
        self._final_seqs.pop(packet.channel_id, None)
        self._dictionaries.pop(packet.channel_id, None)
        self._translations.pop(packet.channel_id, None)
        if progress is not None:
            self._progress.pop(packet.channel_id, None)
            self._finish(packet.channel_id, BindingTable(table.columns), None)
            return
        chunks = self._buffers.pop(packet.channel_id, None)
        table = concat_tables(chunks) if chunks else table
        self._finish(packet.channel_id, table, None)

    def _translate_encoded(self, packet: DataPacket) -> BindingTable:
        """Map an encoded chunk's cells sender-id → owner-id, yielding
        an *id table* in the owning peer's dictionary space."""
        encoded = packet.encoded
        translation = self._translations.get(packet.channel_id)
        table = BindingTable(encoded.columns)
        if not encoded.columns:
            table.rows.extend(() for _ in range(encoded.length))
            return table
        if translation is None:
            raise ChannelError(
                f"encoded data on {packet.channel_id} before its dictionary"
            )
        translated = [[translation[i] for i in column] for column in encoded.ids]
        table.rows.extend(zip(*translated))
        return table

    def on_failure(self, channel_id: str) -> None:
        """Transport-level failure of the channel's destination."""
        channel = self._channels.get(channel_id)
        if channel is None or not channel.is_open:
            return
        channel.fail()
        self._finish(channel_id, None, channel.destination)

    def _finish(self, channel_id: str, table, failed_peer) -> None:
        self._received_seqs.pop(channel_id, None)
        self._activity.pop(channel_id, None)
        self._final_seqs.pop(channel_id, None)
        self._dictionaries.pop(channel_id, None)
        self._translations.pop(channel_id, None)
        self._undecodable.pop(channel_id, None)
        callback = self._callbacks.pop(channel_id, None)
        if callback is None:
            return
        if self._scheduler is None:
            callback(table, failed_peer)
            return
        channel = self._channels.get(channel_id)
        key = channel.query_id if channel is not None and channel.query_id else channel_id
        self._scheduler.submit(key, lambda: callback(table, failed_peer))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def redirect(self, channel_id: str, callback: ChannelCallback) -> None:
        """Replace an open channel's continuation.

        Used by the phased execution policy: when a plan changes, the
        still-open channels of the old phase keep collecting into the
        scan cache instead of being discarded."""
        channel = self._channels.get(channel_id)
        if channel is not None and channel.is_open:
            self._callbacks[channel_id] = callback

    def discard(self, channel_id: str) -> None:
        """Close a channel without invoking its continuation (the ubQL
        discard used when a replan abandons on-going computation).

        Buffered chunks the channel had already received are counted as
        discarded bindings, and the channel is remembered as discarded
        so bindings still in flight are counted on arrival too.
        """
        channel = self._channels.get(channel_id)
        if channel is not None:
            channel.close()
            self._discarded.add(channel_id)
        self._callbacks.pop(channel_id, None)
        chunks = self._buffers.pop(channel_id, None)
        if chunks:
            self._record_discarded(sum(len(chunk) for chunk in chunks))
        undecoded = self._undecodable.pop(channel_id, None)
        if undecoded:
            self._record_discarded(sum(p.rows for p in undecoded))
        self._progress.pop(channel_id, None)
        self._received_seqs.pop(channel_id, None)
        self._activity.pop(channel_id, None)
        self._final_seqs.pop(channel_id, None)
        self._dictionaries.pop(channel_id, None)
        self._translations.pop(channel_id, None)

    def discard_all(self) -> int:
        """Discard every open channel; returns how many were open."""
        open_ids = [cid for cid, ch in self._channels.items() if ch.is_open]
        for channel_id in open_ids:
            self.discard(channel_id)
        return len(open_ids)

    def channel(self, channel_id: str) -> Channel:
        try:
            return self._channels[channel_id]
        except KeyError:
            raise ChannelError(f"unknown channel {channel_id}") from None

    def open_channels(self) -> Dict[str, Channel]:
        return {cid: ch for cid, ch in self._channels.items() if ch.is_open}

    def __len__(self) -> int:
        return len(self._channels)
