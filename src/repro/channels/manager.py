"""Per-peer channel management.

A :class:`ChannelManager` mints root-local channel ids, sends subplan
packets over the network, and dispatches incoming data packets and
failures to the continuation registered when the channel was opened.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Optional

from ..core.algebra import PlanNode
from ..errors import ChannelError
from ..net.message import Message
from ..net.simulator import Network
from ..rql.bindings import BindingTable
from .channel import Channel
from .packets import DataPacket, SubPlanPacket, TreePath

#: Continuation invoked with (table, failed_peer) when a channel completes.
ChannelCallback = Callable[[Optional[BindingTable], Optional[str]], None]
#: Per-chunk consumer for pipelined channels.
ProgressCallback = Callable[[BindingTable], None]


class ChannelManager:
    """Channels rooted at one peer.

    Args:
        owner: The peer id owning (rooting) these channels.
    """

    def __init__(self, owner: str):
        self.owner = owner
        self._channels: Dict[str, Channel] = {}
        self._callbacks: Dict[str, ChannelCallback] = {}
        self._buffers: Dict[str, BindingTable] = {}  # streamed chunks
        self._progress: Dict[str, ProgressCallback] = {}  # pipelined channels
        self._counter = itertools.count(1)

    # ------------------------------------------------------------------
    # root side
    # ------------------------------------------------------------------
    def open(
        self,
        network: Network,
        destination: str,
        plan: PlanNode,
        callback: ChannelCallback,
        sites: Optional[Dict[TreePath, str]] = None,
        query_id: str = "",
        progress: Optional[ProgressCallback] = None,
    ) -> Channel:
        """Open a channel: ship ``plan`` to ``destination`` and register
        the continuation for its results.

        With ``progress`` set, the channel runs in *pipelined* mode:
        every arriving chunk (including the final one) is handed to
        ``progress`` immediately, no buffering happens, and the
        completion ``callback`` fires with an empty table — a pure
        done-signal.
        """
        channel_id = f"{self.owner}#{next(self._counter)}"
        channel = Channel(channel_id, self.owner, destination, plan, query_id)
        self._channels[channel_id] = channel
        self._callbacks[channel_id] = callback
        if progress is not None:
            self._progress[channel_id] = progress
        packet = SubPlanPacket(
            channel_id=channel_id,
            plan=plan,
            sites=dict(sites or {}),
            root_peer=self.owner,
            query_id=query_id,
        )
        network.send(Message(self.owner, destination, packet))
        return channel

    def on_data(self, packet: DataPacket) -> None:
        """Dispatch a data packet to the channel's continuation."""
        channel = self._channels.get(packet.channel_id)
        if channel is None:
            # late packet for a channel discarded by a replan: drop it
            return
        if not channel.is_open:
            return
        channel.record_tuples(len(packet.table))
        if packet.failed_peer is not None:
            channel.fail()
            self._buffers.pop(packet.channel_id, None)
            self._progress.pop(packet.channel_id, None)
            self._finish(packet.channel_id, None, packet.failed_peer)
            return
        progress = self._progress.get(packet.channel_id)
        if progress is not None:
            progress(packet.table)
            if packet.final:
                channel.close()
                self._progress.pop(packet.channel_id, None)
                self._finish(packet.channel_id, BindingTable(packet.table.columns), None)
            return
        buffered = self._buffers.get(packet.channel_id)
        table = packet.table if buffered is None else buffered.union(packet.table)
        if packet.final:
            channel.close()
            self._buffers.pop(packet.channel_id, None)
            self._finish(packet.channel_id, table, None)
        else:
            self._buffers[packet.channel_id] = table

    def on_failure(self, channel_id: str) -> None:
        """Transport-level failure of the channel's destination."""
        channel = self._channels.get(channel_id)
        if channel is None or not channel.is_open:
            return
        channel.fail()
        self._finish(channel_id, None, channel.destination)

    def _finish(self, channel_id: str, table, failed_peer) -> None:
        callback = self._callbacks.pop(channel_id, None)
        if callback is not None:
            callback(table, failed_peer)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def redirect(self, channel_id: str, callback: ChannelCallback) -> None:
        """Replace an open channel's continuation.

        Used by the phased execution policy: when a plan changes, the
        still-open channels of the old phase keep collecting into the
        scan cache instead of being discarded."""
        channel = self._channels.get(channel_id)
        if channel is not None and channel.is_open:
            self._callbacks[channel_id] = callback

    def discard(self, channel_id: str) -> None:
        """Close a channel without invoking its continuation (the ubQL
        discard used when a replan abandons on-going computation)."""
        channel = self._channels.get(channel_id)
        if channel is not None:
            channel.close()
        self._callbacks.pop(channel_id, None)
        self._buffers.pop(channel_id, None)
        self._progress.pop(channel_id, None)

    def discard_all(self) -> int:
        """Discard every open channel; returns how many were open."""
        open_ids = [cid for cid, ch in self._channels.items() if ch.is_open]
        for channel_id in open_ids:
            self.discard(channel_id)
        return len(open_ids)

    def channel(self, channel_id: str) -> Channel:
        try:
            return self._channels[channel_id]
        except KeyError:
            raise ChannelError(f"unknown channel {channel_id}") from None

    def open_channels(self) -> Dict[str, Channel]:
        return {cid: ch for cid, ch in self._channels.items() if ch.is_open}

    def __len__(self) -> int:
        return len(self._channels)
