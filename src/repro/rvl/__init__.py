"""RVL views and active-schema advertisements (paper Section 2.2)."""

from .active_schema import ActiveSchema
from .parser import parse_view
from .view import ViewAtom, ViewDefinition

__all__ = ["ActiveSchema", "ViewAtom", "ViewDefinition", "parse_view"]
