"""Parser for the RVL view fragment used for peer advertisements.

Grammar (the view-definition shape of the paper's Figure 1)::

    view      := [CREATE] VIEW atoms FROM paths [WHERE conditions]
                 [USING NAMESPACE ns_bindings]
    atoms     := atom (',' atom)*
    atom      := QNAME '(' IDENT [',' IDENT] ')'

A one-argument atom ``n1:C5(X)`` populates class C5 with the bindings
of ``X``; a two-argument atom ``n1:prop4(X, Y)`` populates property
prop4 with the ``(X, Y)`` pairs.  The FROM/WHERE body is the same
conjunctive fragment as RQL.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ParseError
from ..rql.ast import Condition, PathExpression
from ..rql.parser import (
    _parse_conditions,
    _parse_namespaces,
    _parse_paths,
    _TokenStream,
)
from ..rql.tokens import tokenize
from .view import ViewAtom, ViewDefinition


def parse_view(text: str) -> ViewDefinition:
    """Parse an RVL view statement.

    Raises:
        ParseError: On malformed input or wrong atom arity.
    """
    stream = _TokenStream(tokenize(text), text)
    stream.accept("CREATE")
    stream.expect("VIEW")
    atoms = _parse_atoms(stream)
    stream.expect("FROM")
    paths: Tuple[PathExpression, ...] = _parse_paths(stream)
    conditions: Tuple[Condition, ...] = ()
    if stream.accept("WHERE"):
        conditions = _parse_conditions(stream)
    namespaces: Dict[str, str] = {}
    if stream.accept("USING"):
        stream.expect("NAMESPACE")
        namespaces = _parse_namespaces(stream)
    if not stream.at_end():
        token = stream.peek()
        raise ParseError(f"trailing input {token.value!r}", text, token.position)
    view = ViewDefinition(tuple(atoms), paths, conditions, namespaces, text)
    _check_view(view, text)
    return view


def _parse_atoms(stream: _TokenStream) -> List[ViewAtom]:
    atoms = [_parse_atom(stream)]
    while True:
        token = stream.peek()
        # a comma only continues the atom list if a QNAME follows
        if token is None or token.kind != "COMMA":
            break
        stream.next()
        atoms.append(_parse_atom(stream))
    return atoms


def _parse_atom(stream: _TokenStream) -> ViewAtom:
    name = stream.expect("QNAME").value
    stream.expect("LPAREN")
    args = [stream.expect("IDENT").value]
    if stream.accept("COMMA"):
        args.append(stream.expect("IDENT").value)
    stream.expect("RPAREN")
    return ViewAtom(name, tuple(args))


def _check_view(view: ViewDefinition, text: str) -> None:
    bound = set()
    for path in view.paths:
        bound.update(path.variables())
    for atom in view.atoms:
        for arg in atom.arguments:
            if arg not in bound:
                raise ParseError(
                    f"view atom argument {arg} is not bound in FROM", text
                )
