"""RVL view definitions and their materialisation.

A view populates classes and properties of a community schema from a
conjunctive body evaluated over a peer's base (materialised scenario)
or over a legacy store's virtual RDF image (virtual scenario).  The
intensional footprint of the view — which schema paths it can populate
— is its :class:`~repro.rvl.active_schema.ActiveSchema` and is what the
peer advertises (paper Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..errors import MappingError, SchemaError
from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rdf.terms import URI
from ..rdf.vocabulary import TYPE
from ..rql.ast import Condition, PathExpression, RQLQuery
from ..rql.evaluator import evaluate_query
from ..rql.pattern import resolve_qname


@dataclass(frozen=True)
class ViewAtom:
    """One head atom of a view: class (arity 1) or property (arity 2)."""

    name: str
    arguments: Tuple[str, ...]

    def __post_init__(self):
        if len(self.arguments) not in (1, 2):
            raise SchemaError(f"view atom {self.name} must have arity 1 or 2")

    @property
    def is_class_atom(self) -> bool:
        return len(self.arguments) == 1

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.arguments)})"


@dataclass(frozen=True)
class ViewDefinition:
    """A parsed RVL view statement.

    Attributes:
        atoms: Head atoms declaring which classes/properties the view
            populates.
        paths: Body path expressions (the from-clause).
        conditions: Body filters.
        namespaces: Prefix bindings.
        text: Original source text.
    """

    atoms: Tuple[ViewAtom, ...]
    paths: Tuple[PathExpression, ...]
    conditions: Tuple[Condition, ...] = ()
    namespaces: Dict[str, str] = field(default_factory=dict)
    text: str = ""

    def body_query(self) -> RQLQuery:
        """The view body as a SELECT * query over the source base."""
        return RQLQuery((), self.paths, self.conditions, dict(self.namespaces))

    def head_terms(
        self, schema: Schema, default_namespaces: Optional[Mapping[str, str]] = None
    ) -> Tuple[Dict[URI, str], Dict[URI, Tuple[str, str]]]:
        """Resolve head atoms against ``schema``.

        Returns:
            ``(classes, properties)`` where ``classes`` maps a class URI
            to its witness variable and ``properties`` maps a property
            URI to its ``(subject_var, object_var)`` pair.

        Raises:
            MappingError: If an atom names an undeclared term or has an
                arity inconsistent with the schema.
        """
        namespaces: Dict[str, str] = dict(default_namespaces or {})
        namespaces.update(self.namespaces)
        classes: Dict[URI, str] = {}
        properties: Dict[URI, Tuple[str, str]] = {}
        for atom in self.atoms:
            uri = resolve_qname(atom.name, namespaces)
            if atom.is_class_atom:
                if not schema.has_class(uri):
                    raise MappingError(f"view populates undeclared class {uri}")
                classes[uri] = atom.arguments[0]
            else:
                if not schema.has_property(uri):
                    raise MappingError(f"view populates undeclared property {uri}")
                properties[uri] = (atom.arguments[0], atom.arguments[1])
        return classes, properties

    def materialize(
        self,
        source: Graph,
        schema: Schema,
        default_namespaces: Optional[Mapping[str, str]] = None,
    ) -> Graph:
        """Evaluate the view over ``source`` and emit the head triples.

        Class atoms yield ``rdf:type`` statements; property atoms yield
        property statements.  This is the "populated on demand"
        behaviour of the virtual scenario in Section 2.2.
        """
        classes, properties = self.head_terms(schema, default_namespaces)
        bindings = evaluate_query(self.body_query(), source, schema, dict(default_namespaces or {}))
        out = Graph()
        for binding in bindings.bindings():
            for cls, var in classes.items():
                out.add(binding[var], TYPE, cls)
            for prop, (s_var, o_var) in properties.items():
                out.add(binding[s_var], prop, binding[o_var])
        return out

    def __str__(self) -> str:
        head = ", ".join(str(a) for a in self.atoms)
        body = ", ".join(str(p) for p in self.paths)
        out = f"VIEW {head} FROM {body}"
        if self.conditions:
            out += " WHERE " + " AND ".join(str(c) for c in self.conditions)
        if self.namespaces:
            ns = ", ".join(f"{p} = &{u}&" for p, u in self.namespaces.items())
            out += f" USING NAMESPACE {ns}"
        return out
