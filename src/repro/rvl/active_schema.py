"""Active-schemas: fine-grained intensional peer advertisements.

An active-schema is "the subset of a community RDF/S schema for which
all classes and properties are (materialised scenario) or can be
(virtual scenario) populated in a peer base" (paper Section 2.2).  We
represent it as a set of :class:`~repro.rql.pattern.SchemaPath` entries
— one per populated property, with its effective end-point classes —
plus the set of populated classes.  Because queries are represented the
same way, routing reduces to per-path subsumption checks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional

from ..errors import SchemaError
from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rdf.terms import URI
from ..rdf.vocabulary import TYPE
from ..rql.pattern import SchemaPath
from .view import ViewDefinition


class ActiveSchema:
    """The advertised intensional content of one peer base.

    Args:
        schema_uri: The namespace URI of the community schema this
            advertisement commits to (the SON identifier).
        paths: Populated schema paths.
        classes: Populated classes (beyond those implied by paths).
        peer_id: Advertising peer, once known.
    """

    def __init__(
        self,
        schema_uri: str,
        paths: Iterable[SchemaPath] = (),
        classes: Iterable[URI] = (),
        peer_id: Optional[str] = None,
    ):
        self.schema_uri = schema_uri
        self._paths: FrozenSet[SchemaPath] = frozenset(paths)
        implied = {p.domain for p in self._paths} | {p.range for p in self._paths}
        self._classes: FrozenSet[URI] = frozenset(classes) | frozenset(
            c for c in implied if isinstance(c, URI)
        )
        self.peer_id = peer_id

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_view(
        cls,
        view: ViewDefinition,
        schema: Schema,
        peer_id: Optional[str] = None,
        default_namespaces: Optional[Mapping[str, str]] = None,
    ) -> "ActiveSchema":
        """Derive the active-schema of an RVL view (virtual scenario).

        Property atoms contribute schema paths with the property's
        declared end points; class atoms contribute populated classes.
        """
        classes, properties = view.head_terms(schema, default_namespaces)
        paths = []
        for prop in properties:
            definition = schema.property_def(prop)
            paths.append(SchemaPath(definition.domain, prop, definition.range))
        return cls(schema.namespace.uri, paths, classes.keys(), peer_id)

    @classmethod
    def from_base(
        cls, base: Graph, schema: Schema, peer_id: Optional[str] = None
    ) -> "ActiveSchema":
        """Scan a materialised base for its populated schema fragment.

        A property is populated when at least one statement asserts it;
        a class is populated when at least one resource is typed with it
        (materialised scenario of Section 2.2).
        """
        paths = []
        for prop in schema.properties:
            if next(base.triples(None, prop, None), None) is not None:
                definition = schema.property_def(prop)
                paths.append(SchemaPath(definition.domain, prop, definition.range))
        classes = [
            t.object
            for t in base.triples(None, TYPE, None)
            if isinstance(t.object, URI) and schema.has_class(t.object)
        ]
        return cls(schema.namespace.uri, paths, classes, peer_id)

    # ------------------------------------------------------------------
    # content
    # ------------------------------------------------------------------
    @property
    def paths(self) -> FrozenSet[SchemaPath]:
        """The populated schema paths."""
        return self._paths

    @property
    def classes(self) -> FrozenSet[URI]:
        """The populated classes (including path end points)."""
        return self._classes

    def covers_property(self, prop: URI) -> bool:
        return any(p.property == prop for p in self._paths)

    def is_empty(self) -> bool:
        return not self._paths and not self._classes

    def merge(self, other: "ActiveSchema") -> "ActiveSchema":
        """Union of two advertisements for the same schema."""
        if other.schema_uri != self.schema_uri:
            raise SchemaError(
                f"cannot merge advertisements of {self.schema_uri} and {other.schema_uri}"
            )
        return ActiveSchema(
            self.schema_uri,
            self._paths | other._paths,
            self._classes | other._classes,
            self.peer_id,
        )

    # ------------------------------------------------------------------
    # wire format (what peers broadcast / pull)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """A JSON-compatible advertisement payload."""
        return {
            "schema": self.schema_uri,
            "peer": self.peer_id,
            "paths": sorted(
                [p.domain.value, p.property.value, p.range.value] for p in self._paths
            ),
            "classes": sorted(c.value for c in self._classes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ActiveSchema":
        """Rebuild an advertisement from its wire payload."""
        paths = [
            SchemaPath(URI(d), URI(p), URI(r)) for d, p, r in payload.get("paths", [])
        ]
        classes = [URI(c) for c in payload.get("classes", [])]
        return cls(payload["schema"], paths, classes, payload.get("peer"))

    def size_bytes(self) -> int:
        """Approximate advertisement wire size, used to charge bandwidth."""
        path_bytes = sum(
            len(p.domain.value) + len(p.property.value) + len(p.range.value) + 6
            for p in self._paths
        )
        class_bytes = sum(len(c.value) + 2 for c in self._classes)
        return len(self.schema_uri) + path_bytes + class_bytes + 16

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[SchemaPath]:
        return iter(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ActiveSchema)
            and self.schema_uri == other.schema_uri
            and self._paths == other._paths
            and self._classes == other._classes
        )

    def __hash__(self) -> int:
        return hash((self.schema_uri, self._paths, self._classes))

    def __repr__(self) -> str:
        owner = self.peer_id or "?"
        rendered = ", ".join(sorted(str(p) for p in self._paths))
        return f"ActiveSchema({owner}: {rendered})"
