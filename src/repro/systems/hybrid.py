"""The hybrid (super-peer) P2P architecture (paper Section 3.1).

Simple peers push their active-schemas to the super-peer responsible
for their SON when they join.  Query evaluation has two sequential
phases: **routing**, performed exclusively at super-peers (the
coordinator sends a :class:`~repro.peers.protocol.RouteRequest` and
receives the annotated query pattern), and **processing/execution**,
performed by the simple peers (plan generation, channel deployment,
result assembly) — exactly Figure 6's flow.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional, Sequence

from ..core.adaptivity import ReplanBudget
from ..core.cost import Statistics
from ..errors import PeerError
from ..net.message import Message
from ..net.simulator import Network
from ..resilience import HeartbeatEmitter, ResilienceConfig
from ..peers.base import PeerBase
from ..peers.client import ClientPeer
from ..peers.protocol import Advertise, RouteBusy, RouteReply, RouteRequest
from ..peers.simple import PendingQuery, SimplePeer
from ..peers.super import SuperPeer
from ..workload_engine import AdmissionControl, FairScheduler, WorkloadReport, WorkloadSpec
from ..workload_engine import serve as _serve_workload
from ..rdf.graph import Graph
from ..rdf.schema import Schema


class HybridPeer(SimplePeer):
    """A simple peer in the hybrid architecture.

    Args:
        home_super_peer: The super-peer this peer clusters under (the
            one responsible for its community schema's SON).
    """

    def __init__(self, peer_id: str, base: Optional[PeerBase] = None,
                 home_super_peer: str = "", home_super_peers=None, **kwargs):
        super().__init__(peer_id, base, **kwargs)
        if not home_super_peer:
            raise PeerError(f"hybrid peer {peer_id} needs a home super-peer")
        self.home_super_peer = home_super_peer
        #: schema URI -> super-peer, for peers in several SONs
        #: ("a simple-peer can be connected to multiple super-peers")
        self.home_super_peers = dict(home_super_peers or {})
        #: RouteBusy back-offs tolerated per routing round before the
        #: query gives up on its overloaded super-peer
        self.route_busy_budget = 5

    def _home_for(self, schema_uri: str) -> str:
        return self.home_super_peers.get(schema_uri, self.home_super_peer)

    def join(self, network: Network) -> None:
        """Register and push each base's active-schema to the
        super-peer responsible for that SON.  With cost-based planning
        on, the push carries the peer's stat summary too."""
        super().join(network)
        for advertisement in self.own_advertisements():
            self.send(
                self._home_for(advertisement.schema_uri),
                Advertise(
                    advertisement,
                    rejoin=self.rejoining,
                    stats=self.own_stat_summary(),
                ),
            )

    def _advertisement_targets(self):
        targets = {self.home_super_peer, *self.home_super_peers.values()}
        return sorted(targets)

    def _obtain_routing(self, pending: PendingQuery) -> None:
        """Phase 1: ask the super-peer backbone for the annotation —
        the super-peer of the query's schema, when this peer knows it."""
        target = self._home_for(pending.pattern.schema.namespace.uri)
        pending.awaiting_routing = True
        pending.routing_attempts += 1
        # one span per routing round: the super-peer's route span (and
        # any backbone hops) stitch under it via the request's context
        pending.routing_span = self._tracer().start_span(
            "routing",
            peer=self.peer_id,
            parent=pending.span.context(),
            mode="super-peer",
            target=target,
        )
        self.send(
            target,
            RouteRequest(pending.query_id, pending.pattern, self.peer_id),
            trace=pending.routing_span.context(),
        )
        if self.routing_retry is not None:
            self._arm_routing_timeout(
                pending.query_id, target, pending.routing_attempts, 1
            )

    def _arm_routing_timeout(
        self, query_id: str, target: str, round_no: int, attempt: int
    ) -> None:
        """Deadline for one RouteRequest attempt: resend with backoff
        while the budget lasts, then give up on the routing phase (the
        super-peer is unreachable — degrade or error)."""
        network = self._require_network()
        retry = self.routing_retry

        def check() -> None:
            pending = self._pending.get(query_id)
            if pending is None or not pending.awaiting_routing:
                return
            if pending.routing_attempts != round_no:
                return  # a replan already started a newer routing round
            if retry.attempts_left(attempt + 1):
                network.metrics.record_retry()
                pending.routing_span.annotate(f"retry attempt={attempt + 1}")
                self.send(
                    target,
                    RouteRequest(query_id, pending.pattern, self.peer_id),
                    trace=pending.routing_span.context(),
                )
                self._arm_routing_timeout(query_id, target, round_no, attempt + 1)
            else:
                self.suspect_peer(target)
                pending.routing_span.finish("timeout")
                self._give_up(pending, f"routing via {target} timed out")

        network.call_later(retry.timeout(attempt), check)

    def handle_RouteBusy(self, message: Message) -> None:
        """The super-peer's routing service shed our request: back off
        and re-send, up to :attr:`route_busy_budget` times per routing
        round, then give up (degrade to a partial answer or error)."""
        busy: RouteBusy = message.payload
        pending = self._pending.get(busy.query_id)
        if pending is None or not pending.awaiting_routing:
            return  # answered or superseded in the meantime
        pending.routing_busy_retries += 1
        if pending.routing_busy_retries > self.route_busy_budget:
            pending.routing_span.finish("busy")
            self._give_up(pending, f"routing via {message.src} is overloaded")
            return
        network = self._require_network()
        network.metrics.record_retry()
        pending.routing_span.annotate(
            f"route busy: backing off {busy.retry_after:g}"
        )
        round_no = pending.routing_attempts
        target = message.src

        def resend() -> None:
            current = self._pending.get(busy.query_id)
            if current is None or not current.awaiting_routing:
                return
            if current.routing_attempts != round_no:
                return  # a replan already started a newer routing round
            self.send(
                target,
                RouteRequest(busy.query_id, current.pattern, self.peer_id),
                trace=current.routing_span.context(),
            )

        network.call_later(busy.retry_after, resend)

    def handle_RouteReply(self, message: Message) -> None:
        """Phase 2: generate the plan and execute it."""
        reply: RouteReply = message.payload
        pending = self._pending.get(reply.query_id)
        if pending is None:
            return  # stale reply for an already-answered query
        if not pending.awaiting_routing:
            return  # duplicate delivery of a reply already acted on
        pending.awaiting_routing = False
        pending.routing_span.set(peers=len(reply.annotated.all_peers()))
        pending.routing_span.finish()
        self._on_annotated(pending, reply.annotated)


class HybridSystem:
    """Builder/harness for a hybrid deployment.

    Example:
        >>> system = HybridSystem(schema)                  # doctest: +SKIP
        >>> system.add_super_peer("SP1")                   # doctest: +SKIP
        >>> system.add_peer("P1", graph, "SP1")            # doctest: +SKIP
        >>> table = system.query("P1", "SELECT ...")       # doctest: +SKIP
    """

    def __init__(
        self,
        schema: Schema,
        seed: int = 0,
        default_latency: float = 1.0,
        statistics: Optional[Statistics] = None,
        cache_enabled: bool = True,
        observability: bool = True,
        vectorize: bool = True,
        batch_size: int = 256,
        cost_based: bool = False,
        encode: bool = False,
        transport=None,
        **peer_options,
    ):
        self.schema = schema
        self.network = Network(
            seed=seed,
            default_latency=default_latency,
            observability=observability,
            transport=transport,
        )
        # cost-based planning needs one statistics store the whole
        # deployment shares: peers fold advertised summaries and
        # observed link costs into it, super-peers do the same
        if statistics is None and cost_based:
            statistics = Statistics()
        self.statistics = statistics
        self.cache_enabled = cache_enabled
        self.vectorize = vectorize
        self.batch_size = batch_size
        self.cost_based = cost_based
        self.encode = encode
        self.peer_options = dict(peer_options)
        # deployment-wide switch (--no-cache): every super-peer index
        # and simple peer runs cold unless a peer option overrides it
        self.peer_options.setdefault("cache_enabled", cache_enabled)
        # deployment-wide execution mode (--no-vectorize / --batch-size)
        self.peer_options.setdefault("vectorize", vectorize)
        self.peer_options.setdefault("batch_size", batch_size)
        # deployment-wide planning/storage mode (--cost-based / --encode)
        self.peer_options.setdefault("cost_based", cost_based)
        self.peer_options.setdefault("encode", encode)
        self.super_peers: Dict[str, SuperPeer] = {}
        self.peers: Dict[str, HybridPeer] = {}
        self.clients: Dict[str, ClientPeer] = {}
        self._backbone_directory: Dict[str, str] = {}
        self._client_counter = itertools.count(1)
        #: set by :meth:`enable_resilience`; later-added peers inherit it
        self.resilience: Optional[ResilienceConfig] = None
        self.heartbeat_emitters: Dict[str, HeartbeatEmitter] = {}
        #: set by :meth:`enable_admission` / :meth:`enable_fair_scheduling`;
        #: later-added peers inherit both
        self.admission: Optional[AdmissionControl] = None
        self.fair_quantum: Optional[float] = None

    # ------------------------------------------------------------------
    # concurrency (repro.workload_engine)
    # ------------------------------------------------------------------
    def enable_admission(
        self, control: Optional[AdmissionControl] = None
    ) -> AdmissionControl:
        """Bound what the deployment accepts: coordinators park overflow
        queries and shed beyond their queue, super-peers pace their
        routing service and answer saturation with RouteBusy, and
        per-query deadlines (when set) cancel stragglers."""
        control = control or AdmissionControl.default()
        self.admission = control
        for peer in self.peers.values():
            peer.admission = control
        for super_peer in self.super_peers.values():
            super_peer.admission = control
        return control

    def enable_fair_scheduling(self, quantum: float = 0.25) -> None:
        """Give every simple peer a fair per-query scheduler: local work
        units (subplan starts, scans, channel completions) interleave
        round-robin across in-flight queries, one per ``quantum`` of
        virtual time (a slice of peer CPU)."""
        self.fair_quantum = quantum
        for peer in self.peers.values():
            if peer.scheduler is None:
                peer.install_scheduler(FairScheduler(self.network, quantum))

    def serve(self, spec: WorkloadSpec, max_events: int = 2_000_000) -> WorkloadReport:
        """Drive a workload against this deployment: many queries in
        flight concurrently on the virtual clock, injected mid-run by
        the driver.  Returns the workload report (outcomes, throughput,
        latency percentiles)."""
        return _serve_workload(self, spec, max_events=max_events)

    # ------------------------------------------------------------------
    # resilience
    # ------------------------------------------------------------------
    def enable_resilience(
        self, config: Optional[ResilienceConfig] = None
    ) -> ResilienceConfig:
        """Turn the resilience layer on deployment-wide: channel and
        routing retries, client resubmits, quarantine-filtered routing,
        partial results, and a heartbeat failure detector per
        super-peer (drive it with
        :func:`~repro.resilience.harness.heartbeat_round`)."""
        config = config or ResilienceConfig.default()
        self.resilience = config
        for super_peer in self.super_peers.values():
            self._apply_resilience_super(super_peer)
        for peer in self.peers.values():
            self._apply_resilience_peer(peer)
        for client in self.clients.values():
            client.submit_retry = config.client_retry
        return config

    def _apply_resilience_peer(self, peer: "HybridPeer") -> None:
        config = self.resilience
        peer.channel_retry = config.channel_retry
        peer.routing_retry = config.routing_retry
        peer.quarantine_enabled = config.quarantine_enabled
        peer.partial_results = config.partial_results
        peer.replan_budget = ReplanBudget(
            config.max_replans, config.replan_delay, config.replan_backoff
        )
        self.heartbeat_emitters[peer.peer_id] = HeartbeatEmitter(
            peer, peer._advertisement_targets(), interval=config.heartbeat_interval
        )

    def _apply_resilience_super(self, super_peer: SuperPeer) -> None:
        config = self.resilience
        super_peer.quarantine_enabled = config.quarantine_enabled
        super_peer.watch_cluster(config.suspicion_timeout, config.heartbeat_interval)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_super_peer(
        self, peer_id: str, schemas: Optional[Iterable[Schema]] = None
    ) -> SuperPeer:
        super_peer = SuperPeer(
            peer_id,
            schemas=list(schemas) if schemas is not None else [self.schema],
            backbone_directory=self._backbone_directory,
            cache_enabled=self.cache_enabled,
            statistics=self.statistics,
        )
        super_peer.join(self.network)
        self.super_peers[peer_id] = super_peer
        if self.resilience is not None:
            self._apply_resilience_super(super_peer)
        if self.admission is not None:
            super_peer.admission = self.admission
        return super_peer

    def add_peer(
        self,
        peer_id: str,
        graph: Graph,
        home_super_peer: str,
        schema: Optional[Schema] = None,
        secondary: Sequence = (),
        views: Sequence = (),
    ) -> HybridPeer:
        """Add a simple peer.

        Args:
            secondary: Extra SON memberships as ``(graph, schema,
                super_peer_id)`` triples — the peer advertises each base
                to the corresponding super-peer.
            views: RVL views populating the base (virtual scenario) —
                lets a deployment start from a mid-life base snapshot,
                e.g. the live-data oracle twins.
        """
        if home_super_peer not in self.super_peers:
            raise PeerError(f"unknown super-peer {home_super_peer}")
        base = PeerBase(graph, schema or self.schema, views=views)
        secondary_bases = []
        homes = {}
        for extra_graph, extra_schema, super_id in secondary:
            if super_id not in self.super_peers:
                raise PeerError(f"unknown super-peer {super_id}")
            secondary_bases.append(PeerBase(extra_graph, extra_schema))
            homes[extra_schema.namespace.uri] = super_id
        peer = HybridPeer(
            peer_id,
            base,
            home_super_peer=home_super_peer,
            home_super_peers=homes,
            secondary_bases=secondary_bases,
            statistics=self.statistics,
            **self.peer_options,
        )
        peer.join(self.network)
        self.peers[peer_id] = peer
        if self.resilience is not None:
            self._apply_resilience_peer(peer)
        if self.admission is not None:
            peer.admission = self.admission
        if self.fair_quantum is not None:
            peer.install_scheduler(FairScheduler(self.network, self.fair_quantum))
        return peer

    def add_client(self, peer_id: Optional[str] = None) -> ClientPeer:
        peer_id = peer_id or f"client{next(self._client_counter)}"
        client = ClientPeer(peer_id)
        client.join(self.network)
        self.clients[peer_id] = client
        if self.resilience is not None:
            client.submit_retry = self.resilience.client_retry
        return client

    @classmethod
    def from_scenario(cls, scenario, **kwargs) -> "HybridSystem":
        """Build Figure 6's deployment from a
        :class:`~repro.workloads.paper.HybridScenario`."""
        system = cls(scenario.schema, **kwargs)
        for super_id in scenario.super_peers:
            system.add_super_peer(super_id)
        for peer_id in scenario.simple_peers:
            system.add_peer(
                peer_id, scenario.bases[peer_id], scenario.home_super_peer[peer_id]
            )
        return system

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    def submit(self, via_peer: str, text: str, client: Optional[ClientPeer] = None,
               max_peers=None, limit=None, order_by=None, descending=False) -> str:
        """Submit a query through a simple peer; returns the query id.

        Call :meth:`run` afterwards to drive the event loop.  Accepts
        the same ``client`` and result-shaping keywords as
        :meth:`query`.
        """
        client = client or (
            next(iter(self.clients.values())) if self.clients else self.add_client()
        )
        return client.submit(
            via_peer, text, max_peers=max_peers, limit=limit,
            order_by=order_by, descending=descending,
        )

    def run(self, max_events: int = 1_000_000) -> int:
        return self.network.run(max_events=max_events)

    def query(self, via_peer: str, text: str, max_peers=None, limit=None,
              order_by=None, descending=False,
              client: Optional[ClientPeer] = None):
        """Submit, run to quiescence, and return the result table.

        Args:
            via_peer: The coordinating simple peer.
            text: RQL source text.
            max_peers: Per-pattern broadcast bound (Section 5).
            limit: Top-N bound on the answer.
            client: Submit through this client instead of the first
                registered one (same keyword :meth:`submit` honours).

        Raises:
            PeerError: When the query failed (carries the reason).
        """
        client = client or (
            next(iter(self.clients.values())) if self.clients else self.add_client()
        )
        query_id = client.submit(
            via_peer, text, max_peers=max_peers, limit=limit,
            order_by=order_by, descending=descending,
        )
        self.run()
        result = client.result(query_id)
        if result is None:
            raise PeerError(f"query {query_id} produced no reply")
        if result.error is not None:
            raise PeerError(f"query {query_id} failed: {result.error}")
        return result.table
