"""The ad-hoc (self-adaptive SON) P2P architecture (paper Section 3.2).

Peers joining the system pull the active-schemas of their physical
neighbours, forming a semantic neighbourhood.  A query is routed from
*local* knowledge, so the resulting plan may contain ``Q@?`` holes;
the plan is then forwarded to peers known to answer part of it, which
**interleave** routing and processing with their own knowledge.  The
first peer able to fill every hole executes the complete plan and
streams the results back to the query's root.  When nobody in reach
can help, the root widens its neighbourhood with 2-depth / 3-depth
advertisement requests before giving up — constructing progressively
self-adaptive SONs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.adaptivity import ReplanBudget
from ..core.annotations import AnnotatedQueryPattern, PeerAnnotation
from ..core.algebra import PlanNode, Scan
from ..core.cost import Statistics
from ..errors import PeerError
from ..net.message import Message
from ..net.simulator import Network
from ..obs.tracer import NULL_SPAN
from ..peers.base import PeerBase
from ..peers.client import ClientPeer
from ..peers.protocol import (
    AdvertisementReply,
    AdvertisementRequest,
    DelegatedResult,
    PartialPlan,
)
from ..peers.simple import PendingQuery, SimplePeer
from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..resilience import ResilienceConfig
from ..rql.bindings import BindingTable
from ..rql.pattern import QueryPattern
from ..workload_engine import AdmissionControl, FairScheduler, WorkloadReport, WorkloadSpec
from ..workload_engine import serve as _serve_workload


class AdhocPeer(SimplePeer):
    """A peer in a self-adaptive SON.

    Args:
        neighbours: Physically known peers at join time.
        max_discovery_depth: How far advertisement requests may travel
            when local knowledge leaves holes (Section 3.2's 2-depth,
            3-depth neighbourhoods).
        discovery_settle_time: Virtual-time budget allowed for one
            round of deeper discovery before the query is retried.
        dht: Optional schema DHT (Section 5 / footnote 2).  When set,
            unanswerable patterns are resolved with O(log N) overlay
            lookups instead of k-depth neighbourhood broadcasts.
    """

    def __init__(
        self,
        peer_id: str,
        base: Optional[PeerBase] = None,
        neighbours: Sequence[str] = (),
        max_discovery_depth: int = 3,
        discovery_settle_time: float = 20.0,
        dht=None,
        **kwargs,
    ):
        super().__init__(peer_id, base, **kwargs)
        self.neighbours: Tuple[str, ...] = tuple(neighbours)
        self.max_discovery_depth = max_discovery_depth
        self.discovery_settle_time = discovery_settle_time
        self.dht = dht
        #: deadline on one round of delegated forwards (None: wait
        #: forever, the seed behaviour); on expiry the root deepens
        #: discovery as if every branch had declined
        self.delegation_timeout: Optional[float] = None
        self._discovery_depth: Dict[str, int] = {}  # per query id
        self._dht_attempted: Set[str] = set()  # query ids
        self._delegations: Dict[str, int] = {}  # outstanding forwards
        self._delegation_rounds: Dict[str, int] = {}  # deadline guard
        self._seen_partials: Set[Tuple[str, str]] = set()  # (query, my role) guard
        self._handled_partials: Set[str] = set()  # forward-token dedup
        self._seen_delegated: Dict[str, Set[str]] = {}  # result-token dedup
        self._tokens = itertools.count(1)

    def _new_token(self) -> str:
        """A deployment-unique id for one logical message, so receivers
        can drop network-duplicated deliveries of it."""
        return f"{self.peer_id}:{next(self._tokens)}"

    # ------------------------------------------------------------------
    # joining: pull the neighbourhood's advertisements
    # ------------------------------------------------------------------
    def join(self, network: Network) -> None:
        super().join(network)
        # with cost-based planning on, fold this base's summary into
        # the deployment-shared statistics store (the ad-hoc pull
        # protocol has no advertisement push to ride on)
        self.own_stat_summary()

    def _advertisement_targets(self):
        return list(self.neighbours)

    def leave(self) -> None:
        if self.dht is not None:
            self.dht.unpublish(self.peer_id)
        super().leave()

    def discover_neighbourhood(self, depth: int = 1) -> None:
        """Pull active-schemas from the physical neighbours (and, with
        ``depth`` > 1, from their neighbours transitively)."""
        for neighbour in self.neighbours:
            self.send(neighbour, AdvertisementRequest(self.peer_id, depth))

    def handle_AdvertisementRequest(self, message: Message) -> None:
        request: AdvertisementRequest = message.payload
        own = self.own_advertisement()
        schemas = (own,) if own is not None else ()
        self.send(request.requester, AdvertisementReply(tuple(schemas), self.peer_id))
        if request.depth > 1:
            for neighbour in self.neighbours:
                if neighbour not in (request.requester, message.src):
                    self.send(
                        neighbour,
                        AdvertisementRequest(request.requester, request.depth - 1),
                    )

    # ------------------------------------------------------------------
    # interleaved routing and processing
    # ------------------------------------------------------------------
    def _handle_incomplete(
        self, pending: PendingQuery, plan: PlanNode, annotated: AnnotatedQueryPattern
    ) -> None:
        """Forward the partial plan to peers that can answer part of it."""
        candidates = self._forward_candidates(annotated, visited={self.peer_id})
        if not candidates:
            self._deepen_or_fail(pending)
            return
        self._delegations[pending.query_id] = len(candidates)
        round_no = self._delegation_rounds.get(pending.query_id, 0) + 1
        self._delegation_rounds[pending.query_id] = round_no
        pending.span.annotate(
            f"delegate round {round_no} to {len(candidates)} peers"
        )
        for candidate in candidates:
            self.send(
                candidate,
                PartialPlan(
                    query_id=pending.query_id,
                    plan=plan,
                    pattern=pending.pattern,
                    root_peer=self.peer_id,
                    reply_to=self.peer_id,
                    visited=(self.peer_id,),
                    token=self._new_token(),
                ),
                trace=pending.span.context(),
            )
        if self.delegation_timeout is not None:
            self._require_network().call_later(
                self.delegation_timeout,
                lambda: self._delegation_deadline(pending.query_id, round_no),
            )

    def _delegation_deadline(self, query_id: str, round_no: int) -> None:
        """One round of forwards went unanswered for too long (crashed
        delegates, lost results): stop waiting and deepen discovery as
        if every outstanding branch had declined.  Late answers are
        still accepted — first winner takes the query either way."""
        pending = self._pending.get(query_id)
        if pending is None:
            return  # answered in the meantime
        if self._delegation_rounds.get(query_id) != round_no:
            return  # a newer round of forwards superseded this deadline
        if query_id not in self._delegations:
            return  # every branch already reported back
        self._delegations.pop(query_id, None)
        if self.network is not None:
            self.network.metrics.record_retry()
        pending.span.annotate(f"delegation round {round_no} timed out")
        self._deepen_or_fail(pending)

    def _forward_candidates(
        self, annotated: AnnotatedQueryPattern, visited: Set[str]
    ) -> List[str]:
        """Peers known to answer at least a part of the query plan."""
        candidates = set(annotated.all_peers()) - visited
        return sorted(candidates)

    def _deepen_or_fail(self, pending: PendingQuery) -> None:
        """Widen the neighbourhood (2-depth, 3-depth, ...) and retry —
        or, with a schema DHT available, resolve the missing patterns
        with direct overlay lookups."""
        if self.dht is not None and pending.query_id not in self._dht_attempted:
            self._dht_attempted.add(pending.query_id)
            if self._dht_discover(pending):
                self._obtain_routing(pending)
                return
        depth = self._discovery_depth.get(pending.query_id, 1) + 1
        if depth > self.max_discovery_depth:
            # discovery exhausted: degrade to whatever this peer can
            # answer itself (partial results, when enabled) or error out
            self._give_up(pending, "no relevant peers within discovery depth")
            return
        self._discovery_depth[pending.query_id] = depth
        pending.span.annotate(f"deepen discovery to depth {depth}")
        self.discover_neighbourhood(depth)
        network = self._require_network()
        settle = self.discovery_settle_time * depth
        network.call_later(settle, lambda: self._retry_after_discovery(pending.query_id))

    def _dht_discover(self, pending: PendingQuery) -> bool:
        """Look the query's patterns up in the schema DHT; returns True
        when new advertisements were learned."""
        learned = False
        for pattern in pending.pattern:
            advertisements, _ = self.dht.advertisements_for_pattern(
                pattern, start=self.peer_id
            )
            for advertisement in advertisements:
                peer_id = advertisement.peer_id
                if peer_id != self.peer_id and peer_id not in self.known_advertisements:
                    self.remember_advertisement(advertisement)
                    learned = True
        return learned

    def _retry_after_discovery(self, query_id: str) -> None:
        pending = self._pending.get(query_id)
        if pending is None:
            return  # answered in the meantime
        self._obtain_routing(pending)

    # ------------------------------------------------------------------
    # receiving a partial plan: fill holes with local knowledge
    # ------------------------------------------------------------------
    def handle_PartialPlan(self, message: Message) -> None:
        partial: PartialPlan = message.payload
        # duplicate delivery of the same forward (network duplication):
        # the first copy already produced exactly one DelegatedResult,
        # so answering again would corrupt the root's outstanding-
        # branches accounting — drop silently.  A fresh forward round
        # carries a fresh token and still gets its decline below.
        if partial.token:
            if partial.token in self._handled_partials:
                return
            self._handled_partials.add(partial.token)
        # the interleaved routing-and-processing step at this delegate,
        # stitched under the sender's span (root or previous delegate)
        span = self._require_network().tracer.start_span(
            "delegate",
            peer=self.peer_id,
            parent=message.trace,
            query=partial.query_id,
            root=partial.root_peer,
        )
        guard = (partial.query_id, self.peer_id)
        if guard in self._seen_partials:
            span.finish("declined")
            self._decline(partial)
            return
        self._seen_partials.add(guard)
        # one local routing pass (cached when the cache is on) feeds
        # both the knowledge merge and the forward-candidate choice
        local = self._route_local(partial.pattern, trace=span.context())
        merged = self._merge_knowledge(partial, local)
        plan = self._compile(merged, trace=span.context())
        if plan.is_complete():
            self._execute_delegated(partial, plan, span)
            return
        # candidates must come from *this peer's own* knowledge — the
        # plan already names peers the root knew about, and Figure 7's
        # P3 fails precisely because it knows no new peer itself
        visited = set(partial.visited) | {self.peer_id}
        candidates = self._forward_candidates(local, visited)
        if not candidates:
            span.finish("declined")
            self._decline(partial)
            return
        # forward onward; account the extra branches at the root's sender
        for candidate in candidates:
            self.send(
                candidate,
                PartialPlan(
                    query_id=partial.query_id,
                    plan=plan,
                    pattern=partial.pattern,
                    root_peer=partial.root_peer,
                    reply_to=partial.reply_to,
                    visited=tuple(sorted(visited)),
                    token=self._new_token(),
                ),
                trace=span.context(),
            )
        span.set(forwarded=len(candidates))
        span.finish()
        # this peer neither completed nor declined: the forwards replace
        # its own obligation, so tell the root about the fan-out delta
        if len(candidates) > 1:
            self.send(
                partial.reply_to,
                DelegatedResult(
                    partial.query_id,
                    None,
                    self.peer_id,
                    error=f"forwarded:{len(candidates) - 1}",
                    token=self._new_token(),
                ),
            )

    def _merge_knowledge(
        self,
        partial: PartialPlan,
        local: Optional[AnnotatedQueryPattern] = None,
    ) -> AnnotatedQueryPattern:
        """Annotations from the incoming plan's scans plus this peer's
        own routing knowledge — the interleaving step."""
        if local is None:
            local = self._route_local(partial.pattern)
        from_plan = AnnotatedQueryPattern(partial.pattern)
        for node in partial.plan.walk():
            if not isinstance(node, Scan):
                continue
            for scan_pattern in node.patterns():
                try:
                    pattern = partial.pattern.pattern_by_label(scan_pattern.label)
                except KeyError:
                    continue
                from_plan.annotate(
                    pattern,
                    PeerAnnotation(node.peer_id, scan_pattern, exact=True),
                )
        return local.merge(from_plan)

    def _execute_delegated(
        self, partial: PartialPlan, plan: PlanNode, span=NULL_SPAN
    ) -> None:
        """This peer filled every hole: execute and ship raw results to
        the root ("the first peer that is able to fill all the holes...
        holds also the responsibility of executing it")."""
        from ..execution.engine import PlanExecutor

        network = self._require_network()

        def on_complete(table: Optional[BindingTable], failed: Optional[str]) -> None:
            if failed is not None:
                self.suspect_peer(failed)
                span.finish("failed")
                self.send(
                    partial.reply_to,
                    DelegatedResult(
                        partial.query_id,
                        None,
                        self.peer_id,
                        error=f"peer {failed} failed",
                        token=self._new_token(),
                    ),
                )
            else:
                assert table is not None
                from ..execution.encoded import decode_cells, is_id_table

                if is_id_table(table) and self.base is not None:
                    # the root's dictionary differs from this peer's:
                    # raw delegated bindings ship as terms
                    table = decode_cells(
                        table, self.base.encoded_base().dictionary
                    )
                span.set(rows=len(table))
                span.finish()
                self.send(
                    partial.reply_to,
                    DelegatedResult(
                        partial.query_id, table, self.peer_id,
                        token=self._new_token(),
                    ),
                )

        executor = PlanExecutor(
            self,
            network,
            plan,
            query_id=partial.query_id,
            on_complete=on_complete,
            retry=self.channel_retry,
            trace=span.context(),
        )
        executor.start()

    def _decline(self, partial: PartialPlan) -> None:
        self.send(
            partial.reply_to,
            DelegatedResult(
                partial.query_id,
                None,
                self.peer_id,
                error="cannot complete plan",
                token=self._new_token(),
            ),
        )

    # ------------------------------------------------------------------
    # root side: collect delegation outcomes
    # ------------------------------------------------------------------
    def handle_DelegatedResult(self, message: Message) -> None:
        result: DelegatedResult = message.payload
        pending = self._pending.get(result.query_id)
        if pending is None:
            return  # already answered: first winner took it
        if result.token:
            # a network-duplicated outcome must count exactly once
            seen = self._seen_delegated.setdefault(result.query_id, set())
            if result.token in seen:
                return
            seen.add(result.token)
        if result.table is not None:
            self._reply_result(pending, result.table)
            self._delegations.pop(result.query_id, None)
            self._seen_delegated.pop(result.query_id, None)
            return
        outstanding = self._delegations.get(result.query_id, 0)
        if result.error and result.error.startswith("forwarded:"):
            outstanding += int(result.error.split(":", 1)[1])
        outstanding -= 1
        self._delegations[result.query_id] = outstanding
        if outstanding <= 0:
            self._delegations.pop(result.query_id, None)
            self._deepen_or_fail(pending)


class AdhocSystem:
    """Builder/harness for an ad-hoc deployment.

    Args:
        use_dht: Maintain a schema DHT over the peers and let them
            resolve unanswerable patterns with overlay lookups instead
            of (only) k-depth neighbourhood broadcasts.
    """

    def __init__(
        self,
        schema: Schema,
        seed: int = 0,
        default_latency: float = 1.0,
        statistics: Optional[Statistics] = None,
        use_dht: bool = False,
        cache_enabled: bool = True,
        observability: bool = True,
        vectorize: bool = True,
        batch_size: int = 256,
        cost_based: bool = False,
        encode: bool = False,
        **peer_options,
    ):
        self.schema = schema
        self.network = Network(
            seed=seed, default_latency=default_latency, observability=observability
        )
        # cost-based planning shares one statistics store across the
        # deployment: every peer folds its own summary in at join time
        if statistics is None and cost_based:
            statistics = Statistics()
        self.statistics = statistics
        self.cache_enabled = cache_enabled
        self.vectorize = vectorize
        self.batch_size = batch_size
        self.cost_based = cost_based
        self.encode = encode
        self.peer_options = dict(peer_options)
        self.peer_options.setdefault("cache_enabled", cache_enabled)
        # deployment-wide execution mode (--no-vectorize / --batch-size)
        self.peer_options.setdefault("vectorize", vectorize)
        self.peer_options.setdefault("batch_size", batch_size)
        # deployment-wide planning/storage mode (--cost-based / --encode)
        self.peer_options.setdefault("cost_based", cost_based)
        self.peer_options.setdefault("encode", encode)
        self.peers: Dict[str, AdhocPeer] = {}
        self.clients: Dict[str, ClientPeer] = {}
        self._client_counter = itertools.count(1)
        #: set by :meth:`enable_resilience`; later-added peers inherit it
        self.resilience: Optional[ResilienceConfig] = None
        #: set by :meth:`enable_admission` / :meth:`enable_fair_scheduling`;
        #: later-added peers inherit both
        self.admission: Optional[AdmissionControl] = None
        self.fair_quantum: Optional[float] = None
        self.dht = None
        if use_dht:
            from ..dht import ChordRing, SchemaDHT

            self.dht = SchemaDHT(ChordRing(), schema)

    # ------------------------------------------------------------------
    # concurrency (repro.workload_engine)
    # ------------------------------------------------------------------
    def enable_admission(
        self, control: Optional[AdmissionControl] = None
    ) -> AdmissionControl:
        """Bound what every peer's coordinator role accepts: park
        overflow queries, shed beyond the queue with a retry-after
        hint, and (when set) cancel deadline stragglers.  The ad-hoc
        architecture has no routing servers, so there is no RouteBusy
        tier here — delegation back-pressure comes from the same
        coordinator bounds at each forwarding peer."""
        control = control or AdmissionControl.default()
        self.admission = control
        for peer in self.peers.values():
            peer.admission = control
        return control

    def enable_fair_scheduling(self, quantum: float = 0.25) -> None:
        """Give every peer a fair per-query scheduler (see the hybrid
        twin): local work interleaves round-robin across queries."""
        self.fair_quantum = quantum
        for peer in self.peers.values():
            if peer.scheduler is None:
                peer.install_scheduler(FairScheduler(self.network, quantum))

    def serve(self, spec: WorkloadSpec, max_events: int = 2_000_000) -> WorkloadReport:
        """Drive a workload against this deployment (see the hybrid
        twin); returns the workload report."""
        return _serve_workload(self, spec, max_events=max_events)

    # ------------------------------------------------------------------
    # resilience
    # ------------------------------------------------------------------
    def enable_resilience(
        self, config: Optional[ResilienceConfig] = None
    ) -> ResilienceConfig:
        """Turn the resilience layer on deployment-wide.  The ad-hoc
        architecture has no routing servers to run a failure detector
        on; its suspicion signal comes from channel timeouts and the
        delegation deadline instead."""
        config = config or ResilienceConfig.default()
        self.resilience = config
        for peer in self.peers.values():
            self._apply_resilience_peer(peer)
        for client in self.clients.values():
            client.submit_retry = config.client_retry
        return config

    def _apply_resilience_peer(self, peer: "AdhocPeer") -> None:
        config = self.resilience
        peer.channel_retry = config.channel_retry
        peer.quarantine_enabled = config.quarantine_enabled
        peer.partial_results = config.partial_results
        peer.delegation_timeout = config.delegation_timeout
        peer.replan_budget = ReplanBudget(
            config.max_replans, config.replan_delay, config.replan_backoff
        )

    def add_peer(
        self,
        peer_id: str,
        graph: Graph,
        neighbours: Sequence[str] = (),
        schema: Optional[Schema] = None,
        views: Sequence = (),
    ) -> AdhocPeer:
        base = PeerBase(graph, schema or self.schema, views=views)
        peer = AdhocPeer(
            peer_id,
            base,
            neighbours=neighbours,
            statistics=self.statistics,
            dht=self.dht,
            **self.peer_options,
        )
        peer.join(self.network)
        self.peers[peer_id] = peer
        if self.resilience is not None:
            self._apply_resilience_peer(peer)
        if self.admission is not None:
            peer.admission = self.admission
        if self.fair_quantum is not None:
            peer.install_scheduler(FairScheduler(self.network, self.fair_quantum))
        if self.dht is not None:
            advertisement = peer.own_advertisement()
            if advertisement is not None:
                self.dht.publish(advertisement)
            else:
                self.dht.ring.join(peer_id)
        return peer

    def add_client(self, peer_id: Optional[str] = None) -> ClientPeer:
        peer_id = peer_id or f"client{next(self._client_counter)}"
        client = ClientPeer(peer_id)
        client.join(self.network)
        self.clients[peer_id] = client
        if self.resilience is not None:
            client.submit_retry = self.resilience.client_retry
        return client

    def discover_all(self, depth: int = 1) -> None:
        """Have every peer pull its neighbourhood's advertisements and
        settle the exchange (run to quiescence)."""
        for peer in self.peers.values():
            peer.discover_neighbourhood(depth)
        self.network.run()

    @classmethod
    def from_scenario(cls, scenario, **kwargs) -> "AdhocSystem":
        """Build Figure 7's deployment from an
        :class:`~repro.workloads.paper.AdhocScenario`."""
        system = cls(scenario.schema, **kwargs)
        for peer_id in scenario.peers:
            system.add_peer(
                peer_id, scenario.bases[peer_id], scenario.neighbours.get(peer_id, ())
            )
        system.discover_all()
        return system

    def run(self, max_events: int = 1_000_000) -> int:
        return self.network.run(max_events=max_events)

    def submit(self, via_peer: str, text: str, client: Optional[ClientPeer] = None,
               max_peers=None, limit=None, order_by=None, descending=False) -> str:
        """Submit a query through a peer; returns the query id.

        Call :meth:`run` afterwards to drive the event loop.  Accepts
        the same ``client`` and result-shaping keywords as
        :meth:`query` (the hybrid twin's signature, kept symmetric).
        """
        client = client or (
            next(iter(self.clients.values())) if self.clients else self.add_client()
        )
        return client.submit(
            via_peer, text, max_peers=max_peers, limit=limit,
            order_by=order_by, descending=descending,
        )

    def query(self, via_peer: str, text: str, max_peers=None, limit=None,
              order_by=None, descending=False,
              client: Optional[ClientPeer] = None):
        """Submit through a peer, run to quiescence, return the table.

        Args:
            via_peer: The peer the client connects through.
            text: RQL source text.
            max_peers: Per-pattern broadcast bound (Section 5).
            limit: Top-N bound on the answer.
            client: Submit through this client instead of the first
                registered one (same keyword :meth:`submit` honours).

        Raises:
            PeerError: When the query failed (carries the reason).
        """
        client = client or (
            next(iter(self.clients.values())) if self.clients else self.add_client()
        )
        query_id = client.submit(
            via_peer, text, max_peers=max_peers, limit=limit,
            order_by=order_by, descending=descending,
        )
        self.run()
        result = client.result(query_id)
        if result is None:
            raise PeerError(f"query {query_id} produced no reply")
        if result.error is not None:
            raise PeerError(f"query {query_id} failed: {result.error}")
        return result.table
