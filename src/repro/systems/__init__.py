"""Deployable P2P architectures: hybrid (super-peer) and ad-hoc SONs."""

from .adhoc import AdhocPeer, AdhocSystem
from .hybrid import HybridPeer, HybridSystem

__all__ = ["AdhocPeer", "AdhocSystem", "HybridPeer", "HybridSystem"]
