"""Metric collection shared by the network simulator and benchmarks."""

from __future__ import annotations

from collections import Counter
from typing import Dict, NamedTuple, Optional, Tuple


class MetricSnapshot(NamedTuple):
    """A point-in-time reading of the cumulative counters.

    The first two fields keep the historical ``(messages, bytes)``
    layout; the cache subsystem's counters ride behind them.
    """

    messages: int
    bytes: int
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    coalesced_queries: int = 0
    retries: int = 0
    retransmits: int = 0
    suspicions: int = 0
    partial_results: int = 0
    dropped_messages: int = 0
    duplicated_messages: int = 0


class MetricSet:
    """Counters the experiments report: messages, bytes, per-peer load.

    All counters are cumulative; :meth:`snapshot` / :meth:`delta` let a
    benchmark measure one query in isolation.
    """

    def __init__(self):
        self.messages_total = 0
        self.bytes_total = 0
        self.messages_by_kind: Counter = Counter()
        self.bytes_by_kind: Counter = Counter()
        self.messages_received: Counter = Counter()  # per peer
        self.messages_sent: Counter = Counter()  # per peer
        self.queries_processed: Counter = Counter()  # per peer
        self.irrelevant_queries: Counter = Counter()  # per peer
        self.query_latency: Dict[str, float] = {}
        self._query_started: Dict[str, float] = {}
        # cache subsystem (repro.cache): routing/plan cache traffic and
        # singleflight coalescing across every peer on the network
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        self.coalesced_queries = 0
        # resilience subsystem (repro.resilience): retry/fault traffic
        self.retries = 0
        self.retransmits = 0
        self.suspicions = 0
        self.partial_results = 0
        self.dropped_messages = 0
        self.duplicated_messages = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_message(self, kind: str, src: str, dst: str, size: int) -> None:
        self.messages_total += 1
        self.bytes_total += size
        self.messages_by_kind[kind] += 1
        self.bytes_by_kind[kind] += size
        self.messages_sent[src] += 1
        self.messages_received[dst] += 1

    def record_query_processed(self, peer_id: str, relevant: bool = True) -> None:
        self.queries_processed[peer_id] += 1
        if not relevant:
            self.irrelevant_queries[peer_id] += 1

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    def record_cache_miss(self) -> None:
        self.cache_misses += 1

    def record_cache_invalidation(self, count: int = 1) -> None:
        self.cache_invalidations += count

    def record_coalesced_query(self) -> None:
        self.coalesced_queries += 1

    def record_retry(self) -> None:
        self.retries += 1

    def record_retransmit(self) -> None:
        self.retransmits += 1

    def record_suspicion(self) -> None:
        self.suspicions += 1

    def record_partial_result(self) -> None:
        self.partial_results += 1

    def record_dropped_message(self) -> None:
        self.dropped_messages += 1

    def record_duplicated_message(self) -> None:
        self.duplicated_messages += 1

    def query_started(self, query_id: str, time: float) -> None:
        self._query_started[query_id] = time

    def query_finished(self, query_id: str, time: float) -> None:
        started = self._query_started.get(query_id)
        if started is not None:
            self.query_latency[query_id] = time - started

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricSnapshot:
        """All cumulative counters so far (``[:2]`` is the historical
        ``(messages, bytes)`` pair)."""
        return MetricSnapshot(
            self.messages_total,
            self.bytes_total,
            self.cache_hits,
            self.cache_misses,
            self.cache_invalidations,
            self.coalesced_queries,
            self.retries,
            self.retransmits,
            self.suspicions,
            self.partial_results,
            self.dropped_messages,
            self.duplicated_messages,
        )

    def delta(self, snapshot: Tuple) -> MetricSnapshot:
        """Counter movement since a snapshot.

        Accepts a full :class:`MetricSnapshot` or the historical bare
        ``(messages, bytes)`` pair (cache counters then delta against
        zero).
        """
        base = MetricSnapshot(*snapshot)
        return MetricSnapshot(
            self.messages_total - base.messages,
            self.bytes_total - base.bytes,
            self.cache_hits - base.cache_hits,
            self.cache_misses - base.cache_misses,
            self.cache_invalidations - base.cache_invalidations,
            self.coalesced_queries - base.coalesced_queries,
            self.retries - base.retries,
            self.retransmits - base.retransmits,
            self.suspicions - base.suspicions,
            self.partial_results - base.partial_results,
            self.dropped_messages - base.dropped_messages,
            self.duplicated_messages - base.duplicated_messages,
        )

    def peak_peer_load(self) -> int:
        """The highest per-peer processed-query count."""
        return max(self.queries_processed.values(), default=0)

    def mean_latency(self) -> Optional[float]:
        if not self.query_latency:
            return None
        return sum(self.query_latency.values()) / len(self.query_latency)

    def summary(self) -> Dict[str, float]:
        """A flat dict of headline numbers for bench output."""
        return {
            "messages": self.messages_total,
            "bytes": self.bytes_total,
            "queries_processed": sum(self.queries_processed.values()),
            "irrelevant_queries": sum(self.irrelevant_queries.values()),
            "mean_latency": self.mean_latency() or 0.0,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_invalidations": self.cache_invalidations,
            "coalesced_queries": self.coalesced_queries,
            "retries": self.retries,
            "retransmits": self.retransmits,
            "suspicions": self.suspicions,
            "partial_results": self.partial_results,
            "dropped_messages": self.dropped_messages,
            "duplicated_messages": self.duplicated_messages,
        }

    def __repr__(self) -> str:
        return (
            f"MetricSet(messages={self.messages_total}, bytes={self.bytes_total}, "
            f"queries={sum(self.queries_processed.values())})"
        )
