"""Metric collection shared by the network simulator and benchmarks."""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from ..obs.histogram import Histogram


class MetricSnapshot(NamedTuple):
    """A point-in-time reading of the cumulative counters.

    The first two fields keep the historical ``(messages, bytes)``
    layout; the cache/resilience counters ride behind them, and the
    per-kind counters bring up the rear so :meth:`MetricSet.delta` can
    report per-kind movement for a single query.
    """

    messages: int
    bytes: int
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    coalesced_queries: int = 0
    retries: int = 0
    retransmits: int = 0
    suspicions: int = 0
    partial_results: int = 0
    dropped_messages: int = 0
    duplicated_messages: int = 0
    batches_sent: int = 0
    discarded_bindings: int = 0
    queries_shed: int = 0
    deadline_expirations: int = 0
    joins: int = 0
    goodbyes: int = 0
    rejoins: int = 0
    recoveries: int = 0
    log_replays: int = 0
    snapshot_bytes: int = 0
    messages_by_kind: Counter = Counter()
    bytes_by_kind: Counter = Counter()


class MetricSet:
    """Counters the experiments report: messages, bytes, per-peer load.

    All counters are cumulative; :meth:`snapshot` / :meth:`delta` let a
    benchmark measure one query in isolation.  Latency is kept as
    **per-attempt observations** feeding a bucketed
    :class:`~repro.obs.histogram.Histogram` (p50/p90/p99/max), and
    every finished tracing span folds its duration into the per-stage
    histograms via :meth:`observe_stage`.
    """

    def __init__(self):
        self.messages_total = 0
        self.bytes_total = 0
        self.messages_by_kind: Counter = Counter()
        self.bytes_by_kind: Counter = Counter()
        self.messages_received: Counter = Counter()  # per peer
        self.messages_sent: Counter = Counter()  # per peer
        self.queries_processed: Counter = Counter()  # per peer
        self.irrelevant_queries: Counter = Counter()  # per peer
        #: latest attempt's latency per query id (legacy view — use
        #: :attr:`query_latencies` for the full per-attempt record)
        self.query_latency: Dict[str, float] = {}
        #: every finished attempt's latency, per query id; idempotent
        #: resubmits of the same id append instead of clobbering
        self.query_latencies: Dict[str, List[float]] = {}
        self._query_started: Dict[str, List[float]] = {}
        #: all latency observations, bucketed (repro.obs)
        self.latency_histogram = Histogram()
        # per-stage span durations; observations queue in _stage_pending
        # (every span finish pays one list append) and fold into the
        # histograms on first read of :attr:`stage_latency`
        self._stage_latency: Dict[str, Histogram] = {}
        self._stage_pending: List[Tuple[str, float]] = []
        #: scheduled delivery delay per message kind (repro.obs)
        self.message_delay_by_kind: Dict[str, Histogram] = {}
        #: observed delivery delay and payload size per directed link —
        #: the raw material :meth:`link_observations` turns into the
        #: per-byte link costs cost-based planning folds into
        #: :class:`~repro.core.cost.Statistics`
        self.link_delay: Dict[Tuple[str, str], Histogram] = {}
        self.link_bytes: Dict[Tuple[str, str], Histogram] = {}
        # cache subsystem (repro.cache): routing/plan cache traffic and
        # singleflight coalescing across every peer on the network
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_invalidations = 0
        self.coalesced_queries = 0
        # resilience subsystem (repro.resilience): retry/fault traffic
        self.retries = 0
        self.retransmits = 0
        self.suspicions = 0
        self.partial_results = 0
        self.dropped_messages = 0
        self.duplicated_messages = 0
        # vectorized execution (repro.execution.batch): how many binding
        # batches went over the wire, how full they were, and how many
        # bindings a discarded plan threw away before reaching a consumer
        self.batches_sent = 0
        self.discarded_bindings = 0
        self.bindings_per_batch = Histogram()
        # workload engine (repro.workload_engine): admission control and
        # concurrency — queries refused with a retry-after, per-query
        # deadlines that fired, and how many coordinations were in
        # flight at once (a gauge with a high-watermark, not a counter)
        self.queries_shed = 0
        self.deadline_expirations = 0
        # live data plane (repro.livedata): top-k queries that cancelled
        # their remaining channels early, and continuous-query delta
        # pushes shipped to subscribers
        self.topk_cancels = 0
        self.continuous_pushes = 0
        self.inflight_queries = 0
        self.max_inflight_queries = 0
        self.queue_depth_histogram = Histogram()
        # membership + durability (repro.membership / repro.durability):
        # peers joining/leaving/rejoining the overlay, crash recoveries
        # from durable state, log records replayed and snapshot bytes
        # written
        self.joins = 0
        self.goodbyes = 0
        self.rejoins = 0
        self.recoveries = 0
        self.log_replays = 0
        self.snapshot_bytes = 0
        # telemetry (repro.obs.telemetry): per-query latency tap — the
        # slow-query log installs itself here; None costs one comparison
        self.on_query_latency: Optional[Callable[[str, float], None]] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_message(
        self, kind: str, src: str, dst: str, size: int, delay: Optional[float] = None
    ) -> None:
        self.messages_total += 1
        self.bytes_total += size
        self.messages_by_kind[kind] += 1
        self.bytes_by_kind[kind] += size
        self.messages_sent[src] += 1
        self.messages_received[dst] += 1
        if delay is not None:
            histogram = self.message_delay_by_kind.get(kind)
            if histogram is None:
                histogram = self.message_delay_by_kind[kind] = Histogram()
            histogram.record(delay)
            if src != dst:
                link = (src, dst)
                delays = self.link_delay.get(link)
                if delays is None:
                    delays = self.link_delay[link] = Histogram()
                    self.link_bytes[link] = Histogram()
                delays.record(delay)
                self.link_bytes[link].record(size)

    def link_observations(self) -> Dict[Tuple[str, str], Tuple[float, float]]:
        """Per directed link, the observed ``(mean delay, mean payload
        bytes)`` — what :meth:`Statistics.fold_link_observations`
        consumes to estimate per-byte communication cost."""
        observations: Dict[Tuple[str, str], Tuple[float, float]] = {}
        for link, delays in self.link_delay.items():
            mean_delay = delays.mean
            mean_bytes = self.link_bytes[link].mean
            if mean_delay is not None and mean_bytes is not None:
                observations[link] = (mean_delay, mean_bytes)
        return observations

    def record_query_processed(self, peer_id: str, relevant: bool = True) -> None:
        self.queries_processed[peer_id] += 1
        if not relevant:
            self.irrelevant_queries[peer_id] += 1

    def record_cache_hit(self) -> None:
        self.cache_hits += 1

    def record_cache_miss(self) -> None:
        self.cache_misses += 1

    def record_cache_invalidation(self, count: int = 1) -> None:
        self.cache_invalidations += count

    def record_coalesced_query(self) -> None:
        self.coalesced_queries += 1

    def record_retry(self) -> None:
        self.retries += 1

    def record_retransmit(self) -> None:
        self.retransmits += 1

    def record_suspicion(self) -> None:
        self.suspicions += 1

    def record_partial_result(self) -> None:
        self.partial_results += 1

    def record_dropped_message(self) -> None:
        self.dropped_messages += 1

    def record_duplicated_message(self) -> None:
        self.duplicated_messages += 1

    def record_batch(self, bindings: int) -> None:
        """Account one shipped binding batch (a ``DataPacket``)."""
        self.batches_sent += 1
        self.bindings_per_batch.record(float(bindings))

    def record_discarded_bindings(self, count: int = 1) -> None:
        """Account bindings dropped by a discarded plan mid-stream."""
        self.discarded_bindings += count

    def record_shed_query(self) -> None:
        """Account one query refused by admission control."""
        self.queries_shed += 1

    def record_deadline_expiration(self) -> None:
        """Account one per-query deadline that cancelled a straggler."""
        self.deadline_expirations += 1

    def record_topk_cancel(self) -> None:
        """Account one top-k query that terminated its remaining
        channels early (enough distinct rows were already stable)."""
        self.topk_cancels += 1

    def record_continuous_push(self) -> None:
        """Account one continuous-query delta pushed to a subscriber."""
        self.continuous_pushes += 1

    def record_queue_depth(self, depth: int) -> None:
        """Observe an admission queue's depth at enqueue time."""
        self.queue_depth_histogram.record(float(depth))

    def record_join(self) -> None:
        """Account one peer registering with the overlay for the
        first time (its advertisement landed at a holder)."""
        self.joins += 1

    def record_goodbye(self) -> None:
        """Account one graceful departure observed by a holder."""
        self.goodbyes += 1

    def record_rejoin(self) -> None:
        """Account one peer re-advertising after a crash or departure."""
        self.rejoins += 1

    def record_recovery(self) -> None:
        """Account one crash recovery from durable state."""
        self.recoveries += 1

    def record_log_replay(self, count: int = 1) -> None:
        """Account membership-log records replayed during a recovery."""
        self.log_replays += count

    def record_snapshot_bytes(self, nbytes: int) -> None:
        """Account bytes written by one durable-state snapshot."""
        self.snapshot_bytes += nbytes

    def observe_stage(self, stage: str, duration: float) -> None:
        """Fold one finished span's duration into its stage histogram."""
        self._stage_pending.append((stage, duration))

    @property
    def stage_latency(self) -> Dict[str, Histogram]:
        """Per-stage span durations, keyed by span name (repro.obs)."""
        pending = self._stage_pending
        if pending:
            self._stage_pending = []
            histograms = self._stage_latency
            for stage, duration in pending:
                histogram = histograms.get(stage)
                if histogram is None:
                    histogram = histograms[stage] = Histogram()
                histogram.record(duration)
        return self._stage_latency

    def query_started(self, query_id: str, time: float) -> None:
        """Open one latency attempt.  Re-submissions of the same query
        id (idempotent client retries) open *additional* attempts
        instead of clobbering the outstanding one."""
        self._query_started.setdefault(query_id, []).append(time)
        self.inflight_queries += 1
        if self.inflight_queries > self.max_inflight_queries:
            self.max_inflight_queries = self.inflight_queries

    def query_finished(self, query_id: str, time: float) -> None:
        """Close the oldest outstanding attempt for ``query_id`` and
        record its latency as one observation."""
        starts = self._query_started.get(query_id)
        if not starts:
            return
        started = starts.pop(0)
        if not starts:
            del self._query_started[query_id]
        self.inflight_queries -= 1
        latency = time - started
        self.query_latencies.setdefault(query_id, []).append(latency)
        self.query_latency[query_id] = latency
        self.latency_histogram.record(latency)
        if self.on_query_latency is not None:
            self.on_query_latency(query_id, latency)

    def inflight_query_ids(self) -> List[str]:
        """Query ids with at least one open (unfinished) attempt."""
        return sorted(self._query_started)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricSnapshot:
        """All cumulative counters so far (``[:2]`` is the historical
        ``(messages, bytes)`` pair)."""
        return MetricSnapshot(
            self.messages_total,
            self.bytes_total,
            self.cache_hits,
            self.cache_misses,
            self.cache_invalidations,
            self.coalesced_queries,
            self.retries,
            self.retransmits,
            self.suspicions,
            self.partial_results,
            self.dropped_messages,
            self.duplicated_messages,
            self.batches_sent,
            self.discarded_bindings,
            self.queries_shed,
            self.deadline_expirations,
            self.joins,
            self.goodbyes,
            self.rejoins,
            self.recoveries,
            self.log_replays,
            self.snapshot_bytes,
            Counter(self.messages_by_kind),
            Counter(self.bytes_by_kind),
        )

    def delta(self, snapshot: Tuple) -> MetricSnapshot:
        """Counter movement since a snapshot.

        Accepts a full :class:`MetricSnapshot` or the historical bare
        ``(messages, bytes)`` pair (the remaining counters then delta
        against zero).  The per-kind counters are deltaed too, so one
        query's message-kind breakdown needs no hand-copied Counter.
        """
        base = MetricSnapshot(*snapshot)
        kind_messages = Counter(self.messages_by_kind)
        kind_messages.subtract(base.messages_by_kind)
        kind_bytes = Counter(self.bytes_by_kind)
        kind_bytes.subtract(base.bytes_by_kind)
        return MetricSnapshot(
            self.messages_total - base.messages,
            self.bytes_total - base.bytes,
            self.cache_hits - base.cache_hits,
            self.cache_misses - base.cache_misses,
            self.cache_invalidations - base.cache_invalidations,
            self.coalesced_queries - base.coalesced_queries,
            self.retries - base.retries,
            self.retransmits - base.retransmits,
            self.suspicions - base.suspicions,
            self.partial_results - base.partial_results,
            self.dropped_messages - base.dropped_messages,
            self.duplicated_messages - base.duplicated_messages,
            self.batches_sent - base.batches_sent,
            self.discarded_bindings - base.discarded_bindings,
            self.queries_shed - base.queries_shed,
            self.deadline_expirations - base.deadline_expirations,
            self.joins - base.joins,
            self.goodbyes - base.goodbyes,
            self.rejoins - base.rejoins,
            self.recoveries - base.recoveries,
            self.log_replays - base.log_replays,
            self.snapshot_bytes - base.snapshot_bytes,
            +kind_messages,  # unary + drops zero/negative entries
            +kind_bytes,
        )

    def peak_peer_load(self) -> int:
        """The highest per-peer processed-query count."""
        return max(self.queries_processed.values(), default=0)

    def all_latencies(self) -> List[float]:
        """Every finished attempt's latency, across all query ids."""
        return [
            latency
            for observations in self.query_latencies.values()
            for latency in observations
        ]

    def mean_latency(self) -> Optional[float]:
        observations = self.all_latencies()
        if not observations:
            return None
        return sum(observations) / len(observations)

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p90/p99/max over every latency observation (zeros when
        nothing finished yet — stable keys for bench JSON schemas)."""
        histogram = self.latency_histogram
        if not histogram.count:
            return {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "p50": histogram.percentile(50),
            "p90": histogram.percentile(90),
            "p99": histogram.percentile(99),
            "max": histogram.max,
        }

    def summary(self) -> Dict[str, float]:
        """A flat dict of headline numbers for bench output.

        ``mean_latency`` is kept alongside the percentile keys for
        continuity with older reports.
        """
        percentiles = self.latency_percentiles()
        return {
            "messages": self.messages_total,
            "bytes": self.bytes_total,
            "queries_processed": sum(self.queries_processed.values()),
            "irrelevant_queries": sum(self.irrelevant_queries.values()),
            "mean_latency": self.mean_latency() or 0.0,
            "latency_p50": percentiles["p50"],
            "latency_p90": percentiles["p90"],
            "latency_p99": percentiles["p99"],
            "latency_max": percentiles["max"],
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_invalidations": self.cache_invalidations,
            "coalesced_queries": self.coalesced_queries,
            "retries": self.retries,
            "retransmits": self.retransmits,
            "suspicions": self.suspicions,
            "partial_results": self.partial_results,
            "dropped_messages": self.dropped_messages,
            "duplicated_messages": self.duplicated_messages,
            "batches_sent": self.batches_sent,
            "discarded_bindings": self.discarded_bindings,
            "mean_bindings_per_batch": self.bindings_per_batch.mean or 0.0,
            "queries_shed": self.queries_shed,
            "deadline_expirations": self.deadline_expirations,
            "max_inflight_queries": self.max_inflight_queries,
            "joins": self.joins,
            "goodbyes": self.goodbyes,
            "rejoins": self.rejoins,
            "recoveries": self.recoveries,
            "log_replays": self.log_replays,
            "snapshot_bytes": self.snapshot_bytes,
        }

    def __repr__(self) -> str:
        return (
            f"MetricSet(messages={self.messages_total}, bytes={self.bytes_total}, "
            f"queries={sum(self.queries_processed.values())})"
        )
