"""Measurement utilities shared by the simulator and the benchmarks."""

from ..obs.exposition import render_prometheus
from ..obs.histogram import Histogram
from .collectors import MetricSet, MetricSnapshot

__all__ = ["Histogram", "MetricSet", "MetricSnapshot", "render_prometheus"]
