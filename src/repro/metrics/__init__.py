"""Measurement utilities shared by the simulator and the benchmarks."""

from .collectors import MetricSet

__all__ = ["MetricSet"]
