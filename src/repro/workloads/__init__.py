"""Workload construction: the paper's scenarios plus synthetic generators."""

from .paper import (
    AdhocScenario,
    DATA,
    HybridScenario,
    N1,
    PAPER_QUERY,
    PAPER_VIEW,
    adhoc_scenario,
    hybrid_scenario,
    paper_active_schemas,
    paper_peer_bases,
    paper_query_pattern,
    paper_schema,
)

__all__ = [
    "AdhocScenario",
    "DATA",
    "HybridScenario",
    "N1",
    "PAPER_QUERY",
    "PAPER_VIEW",
    "adhoc_scenario",
    "hybrid_scenario",
    "paper_active_schemas",
    "paper_peer_bases",
    "paper_query_pattern",
    "paper_schema",
]
