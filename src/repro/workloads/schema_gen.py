"""Synthetic RDF/S community schema generator.

Generates schemas with a **backbone chain** of classes connected by
properties (``K0 --chain0--> K1 --chain1--> ...``), so multi-hop
conjunctive path queries always exist, plus configurable subclass and
subproperty refinements (the subsumption structure semantic routing
exploits) and optional off-chain "noise" properties.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..rdf.schema import Schema
from ..rdf.terms import Namespace, URI


@dataclass(frozen=True)
class SyntheticSchema:
    """A generated schema plus its navigational metadata.

    Attributes:
        schema: The RDF/S schema.
        chain_properties: Backbone properties in chain order; segment
            ``i`` connects class ``Ki`` to ``Ki+1``.
        refined_properties: For each backbone property that received a
            refinement, the (sub-property, sub-domain, sub-range) triple.
        noise_properties: Off-chain properties (never part of chain
            queries).
    """

    schema: Schema
    chain_properties: Tuple[URI, ...]
    refined_properties: Tuple[Tuple[URI, URI, URI], ...]
    noise_properties: Tuple[URI, ...]


def generate_schema(
    namespace_uri: str = "http://example.org/synth#",
    chain_length: int = 4,
    refinement_fraction: float = 0.5,
    noise_properties: int = 2,
    seed: int = 0,
) -> SyntheticSchema:
    """Generate a community schema.

    Args:
        namespace_uri: Namespace of the schema.
        chain_length: Number of backbone properties (classes =
            ``chain_length + 1``).
        refinement_fraction: Fraction of backbone properties that get a
            subproperty over subclass endpoints (prop4-style).
        noise_properties: Extra properties between random backbone
            classes, populating SONs with irrelevant structure.
        seed: RNG seed.

    Raises:
        ValueError: On nonsensical parameters.
    """
    if chain_length < 1:
        raise ValueError("chain_length must be >= 1")
    if not 0.0 <= refinement_fraction <= 1.0:
        raise ValueError("refinement_fraction must be within [0, 1]")
    rng = random.Random(seed)
    namespace = Namespace(namespace_uri)
    schema = Schema(namespace, f"synth({seed})")

    classes = [namespace[f"K{i}"] for i in range(chain_length + 1)]
    for cls in classes:
        schema.add_class(cls)
    chain: List[URI] = []
    for i in range(chain_length):
        prop = namespace[f"chain{i}"]
        schema.add_property(prop, classes[i], classes[i + 1])
        chain.append(prop)

    refined: List[Tuple[URI, URI, URI]] = []
    for i, prop in enumerate(chain):
        if rng.random() >= refinement_fraction:
            continue
        sub_domain = namespace[f"K{i}sub"]
        sub_range = namespace[f"K{i + 1}sub{i}"]
        if not schema.has_class(sub_domain):
            schema.add_class(sub_domain, subclass_of=[classes[i]])
        if not schema.has_class(sub_range):
            schema.add_class(sub_range, subclass_of=[classes[i + 1]])
        sub_prop = namespace[f"chain{i}sub"]
        schema.add_property(sub_prop, sub_domain, sub_range, subproperty_of=prop)
        refined.append((sub_prop, sub_domain, sub_range))

    noise: List[URI] = []
    for i in range(noise_properties):
        domain, range_ = rng.choice(classes), rng.choice(classes)
        prop = namespace[f"noise{i}"]
        schema.add_property(prop, domain, range_)
        noise.append(prop)

    return SyntheticSchema(schema, tuple(chain), tuple(refined), tuple(noise))
