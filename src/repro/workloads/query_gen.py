"""Conjunctive RQL query generation over synthetic schemas.

Queries are contiguous chain segments (the shape the paper's query
**Q** has), optionally using refined subproperties or subclass filters
to exercise subsumption routing.
"""

from __future__ import annotations

import random
from typing import List

from ..rdf.schema import Schema
from .schema_gen import SyntheticSchema


def chain_query(
    synthetic: SyntheticSchema,
    start: int = 0,
    length: int = 2,
    prefix: str = "s",
) -> str:
    """The RQL text querying chain segments ``start .. start+length-1``.

    Variables are ``V0 .. Vlength``; the first two are projected (like
    the paper's ``SELECT X, Y``).
    """
    chain = synthetic.chain_properties
    if length < 1 or start < 0 or start + length > len(chain):
        raise ValueError(
            f"segment [{start}, {start + length}) outside chain of {len(chain)}"
        )
    namespace_uri = synthetic.schema.namespace.uri
    paths = []
    for offset in range(length):
        prop = chain[start + offset]
        paths.append(f"{{V{offset}}} {prefix}:{prop.local_name} {{V{offset + 1}}}")
    projections = "V0, V1" if length >= 1 else "V0"
    return (
        f"SELECT {projections} FROM {', '.join(paths)} "
        f"USING NAMESPACE {prefix} = &{namespace_uri}&"
    )


def random_queries(
    synthetic: SyntheticSchema,
    count: int,
    max_length: int = 3,
    seed: int = 0,
) -> List[str]:
    """A batch of random chain queries (for load experiments)."""
    if count < 0:
        raise ValueError("count must be >= 0")
    rng = random.Random(seed)
    chain_len = len(synthetic.chain_properties)
    queries = []
    for _ in range(count):
        length = rng.randint(1, min(max_length, chain_len))
        start = rng.randint(0, chain_len - length)
        queries.append(chain_query(synthetic, start, length))
    return queries
