"""Peer-base population with controlled data distribution.

The paper's routing/processing algorithms are exercised by three data
distributions over a SON (Section 2.3):

* **vertical** — each peer populates a *segment* of the schema's chain
  (peer A holds chain0, peer B holds chain1, ...): answering a chain
  query requires joining across peers;
* **horizontal** — every peer populates *all* chain properties with its
  own instances: answering requires unioning across peers;
* **mixed** — each peer populates a random subset of the chain.

Instances at segment boundaries are drawn from a shared pool so
cross-peer joins succeed with a configurable probability.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rdf.terms import Namespace, URI
from ..rdf.vocabulary import TYPE
from .schema_gen import SyntheticSchema


class Distribution(enum.Enum):
    """How schema coverage is spread over the peers of a SON."""

    VERTICAL = "vertical"
    HORIZONTAL = "horizontal"
    MIXED = "mixed"


@dataclass
class GeneratedBases:
    """The population result.

    Attributes:
        bases: Peer id → graph.
        coverage: Peer id → chain segment indices it populates.
    """

    bases: Dict[str, Graph]
    coverage: Dict[str, Tuple[int, ...]]


def _segment_assignment(
    distribution: Distribution,
    peer_ids: Sequence[str],
    segments: int,
    rng: random.Random,
) -> Dict[str, Tuple[int, ...]]:
    coverage: Dict[str, Tuple[int, ...]] = {}
    if distribution is Distribution.HORIZONTAL:
        for peer in peer_ids:
            coverage[peer] = tuple(range(segments))
    elif distribution is Distribution.VERTICAL:
        for index, peer in enumerate(peer_ids):
            coverage[peer] = (index % segments,)
    else:  # MIXED
        for peer in peer_ids:
            count = rng.randint(1, segments)
            coverage[peer] = tuple(sorted(rng.sample(range(segments), count)))
    return coverage


def generate_bases(
    synthetic: SyntheticSchema,
    peer_ids: Sequence[str],
    distribution: Distribution = Distribution.MIXED,
    statements_per_segment: int = 20,
    shared_pool: int = 10,
    instance_namespace: str = "http://example.org/instances#",
    seed: int = 0,
) -> GeneratedBases:
    """Populate peer bases over a synthetic schema.

    Args:
        synthetic: The generated schema (chain metadata included).
        peer_ids: The SON's peers.
        distribution: Coverage layout.
        statements_per_segment: Property statements each peer asserts
            per covered chain segment.
        shared_pool: Size of the shared instance pool per chain class —
            boundary instances are drawn from it, making cross-peer
            joins possible.
        instance_namespace: Namespace minting instance URIs.
        seed: RNG seed.
    """
    if not peer_ids:
        raise ValueError("need at least one peer")
    if shared_pool < 1:
        raise ValueError("shared_pool must be >= 1")
    rng = random.Random(seed)
    schema = synthetic.schema
    chain = synthetic.chain_properties
    data = Namespace(instance_namespace)
    coverage = _segment_assignment(distribution, peer_ids, len(chain), rng)

    # one shared instance pool per chain class: segment i draws subjects
    # from pool[i] and objects from pool[i + 1]
    pools: List[List[URI]] = [
        [data[f"n{level}_{j}"] for j in range(shared_pool)]
        for level in range(len(chain) + 1)
    ]

    bases: Dict[str, Graph] = {}
    for peer in peer_ids:
        graph = Graph()
        for segment in coverage[peer]:
            prop = chain[segment]
            definition = schema.property_def(prop)
            for _ in range(statements_per_segment):
                subject = rng.choice(pools[segment])
                obj = rng.choice(pools[segment + 1])
                graph.add(subject, TYPE, definition.domain)
                graph.add(obj, TYPE, definition.range)
                graph.add(subject, prop, obj)
        bases[peer] = graph
    return GeneratedBases(bases, coverage)


def populate_with_refinements(
    synthetic: SyntheticSchema,
    graph: Graph,
    statements: int = 10,
    instance_namespace: str = "http://example.org/instances#",
    seed: int = 0,
) -> None:
    """Additionally assert refined (sub-property) statements into a
    base, so subsumption routing has something to find."""
    rng = random.Random(seed)
    data = Namespace(instance_namespace)
    for sub_prop, sub_domain, sub_range in synthetic.refined_properties:
        for j in range(statements):
            subject = data[f"ref_{sub_prop.local_name}_s{j}"]
            obj = data[f"ref_{sub_prop.local_name}_o{rng.randrange(statements)}"]
            graph.add(subject, TYPE, sub_domain)
            graph.add(obj, TYPE, sub_range)
            graph.add(subject, sub_prop, obj)
