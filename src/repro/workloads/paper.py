"""The paper's running example, as reusable fixtures.

Builds the exact artefacts of Figures 1–7:

* the community RDF/S schema in namespace ``n1`` — classes C1–C6,
  properties prop1–prop3 and ``prop4 ⊑ prop1`` between the subclasses
  C5 ⊑ C1 and C6 ⊑ C2 (Figure 1, top);
* the RVL advertisement view of Figure 1 (bottom left);
* query **Q** joining prop1 and prop2 on Y (Figure 1, bottom right);
* the four peer active-schemas of Figure 2 (P1: prop1+prop2,
  P2: prop1, P3: prop2, P4: prop4+prop2);
* populated peer bases consistent with those advertisements, with
  joinable resources across peers so distributed execution returns
  non-empty answers;
* the hybrid scenario of Figure 6 (SP1–SP3, P1–P5) and the ad-hoc
  scenario of Figure 7 (P1's neighbourhood and P5 behind P2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rdf.terms import Namespace, URI
from ..rdf.vocabulary import TYPE
from ..rql.pattern import QueryPattern, SchemaPath, pattern_from_text
from ..rvl.active_schema import ActiveSchema

#: The community schema namespace of the paper's figures.
N1 = Namespace("http://ics.forth.gr/sqpeer/n1#")
#: Namespace minting instance resources for the example bases.
DATA = Namespace("http://ics.forth.gr/sqpeer/data#")

#: Query **Q** of Figure 1 — resources related through prop1 then prop2.
PAPER_QUERY = (
    "SELECT X, Y FROM {X} n1:prop1 {Y}, {Y} n1:prop2 {Z} "
    f"USING NAMESPACE n1 = &{N1.uri}&"
)

#: The RVL advertisement of Figure 1 (bottom left): populate C5, C6 and
#: prop4 from the peer's base.
PAPER_VIEW = (
    "VIEW n1:C5(X), n1:C6(Y), n1:prop4(X, Y) FROM {X} n1:prop4 {Y} "
    f"USING NAMESPACE n1 = &{N1.uri}&"
)


def paper_schema() -> Schema:
    """The Figure 1 schema: C1–C6, prop1–prop4 with subsumption."""
    schema = Schema(N1, "n1")
    for name in ("C1", "C2", "C3", "C4", "C5", "C6"):
        schema.add_class(N1[name])
    schema.add_subclass(N1.C5, N1.C1)
    schema.add_subclass(N1.C6, N1.C2)
    schema.add_property(N1.prop1, N1.C1, N1.C2)
    schema.add_property(N1.prop2, N1.C2, N1.C3)
    schema.add_property(N1.prop3, N1.C3, N1.C4)
    schema.add_property(N1.prop4, N1.C5, N1.C6, subproperty_of=N1.prop1)
    return schema


def paper_query_pattern(schema: Schema = None) -> QueryPattern:
    """The semantic pattern of query **Q** (path patterns Q1, Q2)."""
    return pattern_from_text(PAPER_QUERY, schema or paper_schema())


def _path(schema: Schema, prop: URI) -> SchemaPath:
    definition = schema.property_def(prop)
    return SchemaPath(definition.domain, prop, definition.range)


def paper_active_schemas(schema: Schema = None) -> Dict[str, ActiveSchema]:
    """The four advertisements of Figure 2.

    P1 populates prop1 and prop2; P2 populates prop1; P3 populates
    prop2; P4 populates prop4 (⊑ prop1) and prop2.
    """
    schema = schema or paper_schema()
    uri = schema.namespace.uri
    return {
        "P1": ActiveSchema(uri, [_path(schema, N1.prop1), _path(schema, N1.prop2)], peer_id="P1"),
        "P2": ActiveSchema(uri, [_path(schema, N1.prop1)], peer_id="P2"),
        "P3": ActiveSchema(uri, [_path(schema, N1.prop2)], peer_id="P3"),
        "P4": ActiveSchema(uri, [_path(schema, N1.prop4), _path(schema, N1.prop2)], peer_id="P4"),
    }


def paper_peer_bases() -> Dict[str, Graph]:
    """Materialised bases matching the Figure 2 advertisements.

    The instance data is laid out so that both *local* joins (inside
    P1 and P4) and *cross-peer* joins (P2's prop1 results joining P3's
    prop2 results on shared Y resources) yield answers — exercising
    horizontal and vertical distribution at once.
    """
    bases: Dict[str, Graph] = {name: Graph() for name in ("P1", "P2", "P3", "P4")}

    # P1: complete chains x -prop1-> y -prop2-> z (local join possible)
    p1 = bases["P1"]
    for i in range(3):
        x, y, z = DATA[f"p1x{i}"], DATA[f"shared_y{i}"], DATA[f"p1z{i}"]
        p1.add(x, TYPE, N1.C1)
        p1.add(y, TYPE, N1.C2)
        p1.add(z, TYPE, N1.C3)
        p1.add(x, N1.prop1, y)
        p1.add(y, N1.prop2, z)

    # P2: prop1 statements whose targets join with P3's prop2 subjects
    p2 = bases["P2"]
    for i in range(4):
        x, y = DATA[f"p2x{i}"], DATA[f"bridge_y{i}"]
        p2.add(x, TYPE, N1.C1)
        p2.add(y, TYPE, N1.C2)
        p2.add(x, N1.prop1, y)

    # P3: prop2 statements continuing P2's bridge resources
    p3 = bases["P3"]
    for i in range(4):
        y, z = DATA[f"bridge_y{i}"], DATA[f"p3z{i}"]
        p3.add(y, TYPE, N1.C2)
        p3.add(z, TYPE, N1.C3)
        p3.add(y, N1.prop2, z)

    # P4: prop4 (⊑ prop1) chains over the subclasses C5/C6, plus prop2
    p4 = bases["P4"]
    for i in range(2):
        x, y, z = DATA[f"p4x{i}"], DATA[f"p4y{i}"], DATA[f"p4z{i}"]
        p4.add(x, TYPE, N1.C5)
        p4.add(y, TYPE, N1.C6)
        p4.add(z, TYPE, N1.C3)
        p4.add(x, N1.prop4, y)
        p4.add(y, N1.prop2, z)
    return bases


@dataclass
class HybridScenario:
    """Figure 6's cast: a super-peer backbone and five simple peers.

    P2 and P3 can answer Q1 (prop1), P5 can answer Q2 (prop2); P1 and
    P4 hold no relevant data.  All simple peers connect to SP1, the
    super-peer responsible for the n1 SON.
    """

    schema: Schema
    super_peers: Tuple[str, ...]
    simple_peers: Tuple[str, ...]
    bases: Dict[str, Graph]
    home_super_peer: Dict[str, str]
    query: str = PAPER_QUERY


def hybrid_scenario() -> HybridScenario:
    """Build the Figure 6 scenario."""
    schema = paper_schema()
    bases: Dict[str, Graph] = {name: Graph() for name in ("P1", "P2", "P3", "P4", "P5")}
    for peer, prefix in (("P2", "h2"), ("P3", "h3")):
        graph = bases[peer]
        for i in range(3):
            x, y = DATA[f"{prefix}x{i}"], DATA[f"hy{i}"]
            graph.add(x, TYPE, N1.C1)
            graph.add(y, TYPE, N1.C2)
            graph.add(x, N1.prop1, y)
    p5 = bases["P5"]
    for i in range(3):
        y, z = DATA[f"hy{i}"], DATA[f"h5z{i}"]
        p5.add(y, TYPE, N1.C2)
        p5.add(z, TYPE, N1.C3)
        p5.add(y, N1.prop2, z)
    # P1 and P4 are connected but hold unrelated data (prop3 only)
    for peer in ("P1", "P4"):
        graph = bases[peer]
        c, d = DATA[f"{peer}c"], DATA[f"{peer}d"]
        graph.add(c, TYPE, N1.C3)
        graph.add(d, TYPE, N1.C4)
        graph.add(c, N1.prop3, d)
    return HybridScenario(
        schema=schema,
        super_peers=("SP1", "SP2", "SP3"),
        simple_peers=("P1", "P2", "P3", "P4", "P5"),
        bases=bases,
        home_super_peer={p: "SP1" for p in ("P1", "P2", "P3", "P4", "P5")},
    )


@dataclass
class AdhocScenario:
    """Figure 7's cast: five peers in a self-adaptive SON.

    P1's neighbours are P2, P3 and P4.  P2 and P3 answer Q1; only P5 —
    known solely to P2 — answers Q2, so P1's local plan has a Q2 hole
    that P2 fills by interleaved routing.  P3 has no further neighbours
    (its channel fails in the figure).
    """

    schema: Schema
    peers: Tuple[str, ...]
    bases: Dict[str, Graph]
    neighbours: Dict[str, Tuple[str, ...]]
    query: str = PAPER_QUERY


def adhoc_scenario() -> AdhocScenario:
    """Build the Figure 7 scenario."""
    schema = paper_schema()
    bases: Dict[str, Graph] = {name: Graph() for name in ("P1", "P2", "P3", "P4", "P5")}
    for peer, prefix in (("P2", "a2"), ("P3", "a3")):
        graph = bases[peer]
        for i in range(3):
            x, y = DATA[f"{prefix}x{i}"], DATA[f"ay{i}"]
            graph.add(x, TYPE, N1.C1)
            graph.add(y, TYPE, N1.C2)
            graph.add(x, N1.prop1, y)
    p5 = bases["P5"]
    for i in range(3):
        y, z = DATA[f"ay{i}"], DATA[f"a5z{i}"]
        p5.add(y, TYPE, N1.C2)
        p5.add(z, TYPE, N1.C3)
        p5.add(y, N1.prop2, z)
    # P4 holds only prop3 data: a neighbour, but irrelevant to Q
    p4 = bases["P4"]
    c, d = DATA["a4c"], DATA["a4d"]
    p4.add(c, TYPE, N1.C3)
    p4.add(d, TYPE, N1.C4)
    p4.add(c, N1.prop3, d)
    return AdhocScenario(
        schema=schema,
        peers=("P1", "P2", "P3", "P4", "P5"),
        bases=bases,
        neighbours={
            "P1": ("P2", "P3", "P4"),
            "P2": ("P1", "P5"),
            "P3": ("P1",),
            "P4": ("P1",),
            "P5": ("P2",),
        },
    )
