"""Index-maintenance cost comparator (Section 4's closing claim).

"The cost of maintaining (XML or RDF) indices of entire peer bases is
important compared to the cost of maintaining peer active-schemas
(i.e., views)."

Two maintenance policies react to the same update stream against a
peer base:

* **full data index** (RDFPeers / path-index style) — every triple
  insertion or deletion must be reflected at the index holder, costing
  one update message per change;
* **active-schema** (SQPeer) — an advertisement is re-sent only when
  the base's *intensional footprint* changes, i.e. a property becomes
  populated or empties out.  Bulk extensional churn is free.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..rdf.graph import Graph
from ..rdf.schema import Schema
from ..rdf.terms import Namespace
from ..rvl.active_schema import ActiveSchema


@dataclass
class MaintenanceCost:
    """Messages/bytes a maintenance policy spends on an update stream."""

    update_messages: int = 0
    update_bytes: int = 0

    def add(self, messages: int, bytes_: int) -> None:
        self.update_messages += messages
        self.update_bytes += bytes_


#: Approximate wire size of one triple-level index update.
TRIPLE_UPDATE_BYTES = 96


class FullDataIndexMaintainer:
    """Every extensional change ships to the index."""

    def __init__(self):
        self.cost = MaintenanceCost()

    def on_add(self, triple) -> None:
        self.cost.add(1, TRIPLE_UPDATE_BYTES)

    def on_remove(self, triple) -> None:
        self.cost.add(1, TRIPLE_UPDATE_BYTES)


class ActiveSchemaMaintainer:
    """Only intensional-footprint changes ship a new advertisement.

    Args:
        graph: The peer base being maintained (mutated by the caller).
        schema: The community schema.
        peer_id: The advertising peer.
    """

    def __init__(self, graph: Graph, schema: Schema, peer_id: str):
        self.graph = graph
        self.schema = schema
        self.peer_id = peer_id
        self.cost = MaintenanceCost()
        self._advertised = self._footprint()

    def _footprint(self) -> frozenset:
        return frozenset(
            prop
            for prop in self.schema.properties
            if next(self.graph.triples(None, prop, None), None) is not None
        )

    def refresh(self) -> bool:
        """Re-derive the footprint; send a new advertisement if it
        changed.  Returns True when an advertisement was sent."""
        current = self._footprint()
        if current == self._advertised:
            return False
        self._advertised = current
        advertisement = ActiveSchema.from_base(self.graph, self.schema, self.peer_id)
        self.cost.add(1, advertisement.size_bytes())
        return True


@dataclass
class ChurnResult:
    """Outcome of one synthetic churn run."""

    updates_applied: int
    full_index_cost: MaintenanceCost
    active_schema_cost: MaintenanceCost

    @property
    def message_ratio(self) -> float:
        """full-index messages per active-schema message (>= 1 expected)."""
        denominator = max(1, self.active_schema_cost.update_messages)
        return self.full_index_cost.update_messages / denominator


def run_churn(
    graph: Graph,
    schema: Schema,
    updates: int,
    peer_id: str = "P",
    add_fraction: float = 0.7,
    instance_namespace: str = "http://example.org/churn#",
    seed: int = 0,
) -> ChurnResult:
    """Apply a random update stream and account both policies.

    Adds assert random statements of random schema properties; removes
    delete random existing statements.  Both maintainers observe every
    change; the active-schema maintainer refreshes after each.
    """
    if updates < 0:
        raise ValueError("updates must be >= 0")
    rng = random.Random(seed)
    data = Namespace(instance_namespace)
    properties = sorted(schema.properties)
    full_index = FullDataIndexMaintainer()
    active = ActiveSchemaMaintainer(graph, schema, peer_id)
    for step in range(updates):
        if rng.random() < add_fraction or len(graph) == 0:
            prop = rng.choice(properties)
            subject = data[f"s{rng.randrange(max(1, updates // 2))}"]
            obj = data[f"o{rng.randrange(max(1, updates // 2))}"]
            triple = graph.add(subject, prop, obj)
            full_index.on_add(triple)
        else:
            triple = next(iter(graph))
            graph.remove_triple(triple)
            full_index.on_remove(triple)
        active.refresh()
    return ChurnResult(updates, full_index.cost, active.cost)
