"""Baseline comparators for the paper's comparative claims."""

from .advertisement import (
    AdvertisementComparison,
    GLOBAL_ADVERTISEMENT_BYTES,
    run_active_schema_advertisements,
    run_global_advertisements,
)
from .flooding import FloodHit, FloodingPeer, QueryFlood, son_routing_contacts
from .indexing import (
    ActiveSchemaMaintainer,
    ChurnResult,
    FullDataIndexMaintainer,
    MaintenanceCost,
    run_churn,
)

__all__ = [
    "ActiveSchemaMaintainer",
    "AdvertisementComparison",
    "ChurnResult",
    "FloodHit",
    "FloodingPeer",
    "FullDataIndexMaintainer",
    "GLOBAL_ADVERTISEMENT_BYTES",
    "MaintenanceCost",
    "QueryFlood",
    "run_active_schema_advertisements",
    "run_churn",
    "run_global_advertisements",
    "son_routing_contacts",
]
