"""Coarse (global-schema) advertisement baseline (Section 2.2's foil).

The claim under test: "compared to global schema-based advertisements
[Edutella], we expect that the load of queries processed by each peer
is smaller, since a peer receives only relevant to its base queries."

Under **global-schema advertisements** a peer announces only *which*
community schema it employs; the router must therefore forward every
query of that SON to every member peer.  Under **active-schema
advertisements** the router forwards a query only to peers whose
advertised fragment is subsumption-relevant.  Both are evaluated over
identical peer contents and query batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..core.routing import route_query
from ..rdf.schema import Schema
from ..rql.pattern import QueryPattern
from ..rvl.active_schema import ActiveSchema
from ..subsumption.checker import can_answer


@dataclass
class AdvertisementComparison:
    """Per-policy outcome of one query batch.

    Attributes:
        queries_forwarded: Router → peer query messages.
        relevant_processed: Queries a receiving peer could answer.
        irrelevant_processed: Queries a receiving peer had to inspect
            and discard (wasted load).
        per_peer_load: Peer id → queries received.
        advertisement_bytes: Total advertisement wire size.
    """

    queries_forwarded: int = 0
    relevant_processed: int = 0
    irrelevant_processed: int = 0
    per_peer_load: Dict[str, int] = None  # type: ignore[assignment]
    advertisement_bytes: int = 0

    def __post_init__(self):
        if self.per_peer_load is None:
            self.per_peer_load = {}

    @property
    def wasted_fraction(self) -> float:
        total = self.relevant_processed + self.irrelevant_processed
        return self.irrelevant_processed / total if total else 0.0


#: Wire size of a coarse "I employ schema S" advertisement.
GLOBAL_ADVERTISEMENT_BYTES = 64


def run_global_advertisements(
    patterns: Sequence[QueryPattern],
    advertisements: Dict[str, ActiveSchema],
    schema: Schema,
) -> AdvertisementComparison:
    """Every query goes to every SON member; members check relevance
    against their actual base and often discard."""
    outcome = AdvertisementComparison(
        advertisement_bytes=GLOBAL_ADVERTISEMENT_BYTES * len(advertisements)
    )
    members = sorted(advertisements)
    for pattern in patterns:
        for peer_id in members:
            outcome.queries_forwarded += 1
            outcome.per_peer_load[peer_id] = outcome.per_peer_load.get(peer_id, 0) + 1
            relevant = any(
                can_answer(advertisements[peer_id], path, schema) for path in pattern
            )
            if relevant:
                outcome.relevant_processed += 1
            else:
                outcome.irrelevant_processed += 1
    return outcome


def run_active_schema_advertisements(
    patterns: Sequence[QueryPattern],
    advertisements: Dict[str, ActiveSchema],
    schema: Schema,
) -> AdvertisementComparison:
    """Queries go only to subsumption-relevant peers (SQPeer)."""
    outcome = AdvertisementComparison(
        advertisement_bytes=sum(a.size_bytes() for a in advertisements.values())
    )
    ordered = [advertisements[p] for p in sorted(advertisements)]
    for pattern in patterns:
        annotated = route_query(pattern, ordered, schema)
        for peer_id in annotated.all_peers():
            outcome.queries_forwarded += 1
            outcome.per_peer_load[peer_id] = outcome.per_peer_load.get(peer_id, 0) + 1
            outcome.relevant_processed += 1
    return outcome
