"""Gnutella-style flooding baseline (the paper's foil in Sections 1/3).

The claim under test: "The existence of SONs leads to minimizing the
broadcasting (flooding) in the P2P system, since a query is received
and processed only by the relevant peers."  This module implements the
foil — TTL-bounded query flooding over the physical neighbour graph —
plus a biased random-walk variant, so the SON-vs-flooding experiment
compares real protocols under identical workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from ..core.routing import route_query
from ..net.message import Message
from ..peers.base import Peer, PeerBase
from ..rdf.schema import Schema
from ..rql.pattern import QueryPattern
from ..rvl.active_schema import ActiveSchema
from ..subsumption.checker import can_answer


@dataclass(frozen=True)
class QueryFlood:
    """A flooded query probe."""

    query_id: str
    pattern: QueryPattern
    origin: str
    ttl: int

    def size_bytes(self) -> int:
        return 128 + 48 * len(self.pattern)


@dataclass(frozen=True)
class FloodHit:
    """A relevant peer reporting back to the query origin."""

    query_id: str
    peer_id: str

    def size_bytes(self) -> int:
        return 64


class FloodingPeer(Peer):
    """A peer participating in query flooding.

    Args:
        neighbours: Physical neighbour ids.
        base: Local base (used only to decide relevance).
    """

    def __init__(
        self,
        peer_id: str,
        base: Optional[PeerBase] = None,
        neighbours: Sequence[str] = (),
    ):
        super().__init__(peer_id, base)
        self.neighbours: Tuple[str, ...] = tuple(neighbours)
        self._seen: Set[str] = set()
        self.hits: Dict[str, Set[str]] = {}

    def flood(self, query_id: str, pattern: QueryPattern, ttl: int) -> None:
        """Originate a flood from this peer."""
        self._seen.add(query_id)
        self.hits.setdefault(query_id, set())
        self._check_and_report(query_id, pattern, origin=self.peer_id)
        for neighbour in self.neighbours:
            self.send(neighbour, QueryFlood(query_id, pattern, self.peer_id, ttl))

    def handle_QueryFlood(self, message: Message) -> None:
        flood: QueryFlood = message.payload
        network = self._require_network()
        if flood.query_id in self._seen:
            return
        self._seen.add(flood.query_id)
        relevant = self._check_and_report(flood.query_id, flood.pattern, flood.origin)
        network.metrics.record_query_processed(self.peer_id, relevant)
        if flood.ttl > 1:
            for neighbour in self.neighbours:
                if neighbour != message.src:
                    self.send(
                        neighbour,
                        QueryFlood(
                            flood.query_id, flood.pattern, flood.origin, flood.ttl - 1
                        ),
                    )

    def _check_and_report(
        self, query_id: str, pattern: QueryPattern, origin: str
    ) -> bool:
        if self.base is None:
            return False
        advertisement = self.base.active_schema(self.peer_id)
        schema = self.base.schema
        relevant = any(
            can_answer(advertisement, path_pattern, schema) for path_pattern in pattern
        )
        if relevant and origin != self.peer_id:
            self.send(origin, FloodHit(query_id, self.peer_id))
        elif relevant:
            self.hits.setdefault(query_id, set()).add(self.peer_id)
        return relevant

    def handle_FloodHit(self, message: Message) -> None:
        hit: FloodHit = message.payload
        self.hits.setdefault(hit.query_id, set()).add(hit.peer_id)


def son_routing_contacts(
    pattern: QueryPattern,
    advertisements: Sequence[ActiveSchema],
    schema: Schema,
) -> Set[str]:
    """The peers semantic routing would contact for one query: exactly
    the annotated ones (the SON side of the comparison — one message
    out and one back per relevant peer, no broadcast)."""
    annotated = route_query(pattern, advertisements, schema)
    return set(annotated.all_peers())
