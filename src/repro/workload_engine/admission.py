"""Admission control: bounded queues, shedding and deadlines.

Under sustained load a coordinator cannot take every query the moment
it arrives — unbounded acceptance degrades *every* in-flight query at
once.  :class:`AdmissionControl` bounds the damage: a coordinator runs
at most ``max_concurrent`` coordinations, parks up to ``max_queued``
more in a FIFO, sheds the rest with a retry-after hint, and (when
``deadline`` is set) cancels stragglers through the existing ubQL
discard path so a stuck query releases its channels and its slot.

The same policy object also paces the super-peer routing service:
route requests beyond the queue bound are answered with
:class:`~repro.peers.protocol.RouteBusy`, and queued ones are served
one per ``service_time`` of virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class AdmissionControl:
    """Per-peer admission policy.

    Args:
        max_concurrent: Coordinations (or routing computations) allowed
            to run at once; arrivals beyond it queue.
        max_queued: Bound on the pending-query FIFO; arrivals beyond it
            are shed with a retry-after reply.
        retry_after: Virtual-time back-off hint carried by shed replies.
        deadline: Per-query wall (virtual) time budget measured from
            admission; ``None`` disables deadlines.  An expired query is
            cancelled via the ubQL discard path and answered with an
            explicit deadline error — never silence.
        service_time: Virtual time a super-peer spends serving one
            queued route request (models routing CPU).
    """

    max_concurrent: int = 8
    max_queued: int = 16
    retry_after: float = 25.0
    deadline: Optional[float] = None
    service_time: float = 1.0

    def __post_init__(self):
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        if self.retry_after <= 0:
            raise ValueError("retry_after must be positive")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive when set")
        if self.service_time < 0:
            raise ValueError("service_time must be >= 0")

    @classmethod
    def default(cls) -> "AdmissionControl":
        return cls()
