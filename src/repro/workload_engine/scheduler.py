"""Fair per-query scheduling of local work.

The execution engine is continuation-based: a peer's contribution to a
query is a series of small work units — start a shipped subplan,
evaluate a scan, combine a channel's gathered inputs.  Without a
scheduler every unit runs the instant its message arrives, so one
expensive query monopolises a peer while cheap concurrent queries sit
behind it in wall-clock (virtual-time) terms.

:class:`FairScheduler` round-robins those units *per query*: each unit
is enqueued under its query id, and one unit is executed per
``quantum`` of virtual time, cycling over the queries that have work.
A query with a hundred pending units cannot starve a query with one.
Scheduling order is a pure function of enqueue order, so seeded runs
stay bit-identical.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable, Deque


class FairScheduler:
    """Round-robin work queues keyed by query id, driven by the
    simulator clock.

    Args:
        network: The simulator whose ``call_later`` paces the pump.
        quantum: Virtual time charged per executed work unit (models a
            slice of peer CPU).  ``0.0`` keeps all units at the same
            timestamp but still interleaves them one event apiece.
    """

    def __init__(self, network, quantum: float = 0.25):
        if quantum < 0:
            raise ValueError("quantum must be >= 0")
        self.network = network
        self.quantum = quantum
        self._queues: "OrderedDict[str, Deque[Callable[[], None]]]" = OrderedDict()
        self._pumping = False
        self.backlog = 0
        self.max_backlog = 0
        self.executed = 0

    def submit(self, key: str, unit: Callable[[], None]) -> None:
        """Enqueue one work unit under ``key`` (normally a query id)."""
        self._queues.setdefault(key, deque()).append(unit)
        self.backlog += 1
        if self.backlog > self.max_backlog:
            self.max_backlog = self.backlog
        if not self._pumping:
            self._pumping = True
            self.network.call_later(self.quantum, self._pump)

    def _pump(self) -> None:
        if not self._queues:
            self._pumping = False
            return
        key, queue = next(iter(self._queues.items()))
        unit = queue.popleft()
        if queue:
            self._queues.move_to_end(key)
        else:
            del self._queues[key]
        self.backlog -= 1
        self.executed += 1
        unit()
        # the unit may have enqueued more work; keep pumping while any
        # queue is non-empty, one unit per quantum
        if self._queues:
            self.network.call_later(self.quantum, self._pump)
        else:
            self._pumping = False

    def pending(self) -> int:
        return self.backlog

    def __repr__(self) -> str:
        return (
            f"FairScheduler(queries={len(self._queues)}, backlog={self.backlog}, "
            f"quantum={self.quantum})"
        )
