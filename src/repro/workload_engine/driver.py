"""The workload driver: offered load as simulator events.

A :class:`WorkloadDriver` owns a pool of client peers, schedules query
submissions according to a :class:`~repro.workload_engine.spec.
WorkloadSpec` (open-loop Poisson/burst arrivals or closed-loop
think-time clients), listens for their outcomes, resubmits shed queries
after their back-off, and assembles a
:class:`~repro.workload_engine.spec.WorkloadReport` when the network
quiesces.  Everything runs on the virtual clock from the driver's own
seeded RNG, so a workload is bit-for-bit replayable — the property the
concurrent differential tests are built on.
"""

from __future__ import annotations

import random
from typing import Dict, List

from .spec import QueryOutcome, WorkloadReport, WorkloadSpec


class WorkloadDriver:
    """Drives one workload against a deployed system.

    Args:
        system: A :class:`~repro.systems.hybrid.HybridSystem` or
            :class:`~repro.systems.adhoc.AdhocSystem` (anything with a
            ``network`` and ``add_client``).
        spec: The workload to offer.

    Usage::

        driver = WorkloadDriver(system, spec)
        driver.install()
        system.network.run()
        report = driver.report()

    or just :func:`serve`, which does exactly that.
    """

    def __init__(self, system, spec: WorkloadSpec):
        self.system = system
        self.spec = spec
        self.network = system.network
        self.rng = random.Random(spec.seed)
        #: finalized outcomes, in completion order (sorted at report time)
        self.outcomes: List[QueryOutcome] = []
        #: query id -> outcome of the submission awaiting its reply
        self._inflight: Dict[str, QueryOutcome] = {}
        self._clients: List = []
        #: logical indices claimed so far (doubles as the closed loop's
        #: shared remaining-work counter)
        self._next_index = 0
        self._installed = False
        # telemetry (repro.obs.telemetry): optional pull-based sampling
        # on outcome completion — reads metrics, never schedules events
        self.probe = None
        self.telemetry_series = None
        self.slo_monitor = None
        self.slo_window = 60.0
        self.slo_events: List[dict] = []

    @property
    def clients(self) -> List:
        """The driver-owned client peers (created by :meth:`install`)."""
        return list(self._clients)

    def attach_telemetry(self, probe=None, rules=(), window: float = 60.0):
        """Sample telemetry on every completed outcome.

        Pull-based and uncharged: each completion reads the metrics
        into a :class:`~repro.obs.telemetry.sampler.PeerSeries` and
        evaluates the SLO monitor — no simulator events are scheduled,
        so an instrumented run stays bit-identical to a bare one.
        Returns the driver for chaining.
        """
        from ..obs.telemetry import PeerSeries, SLOMonitor, TelemetryProbe

        if probe is None:
            probe = TelemetryProbe(
                self.network,
                peers=list(getattr(self.system, "peers", {}).values())
                + list(getattr(self.system, "super_peers", {}).values()),
            )
        self.probe = probe
        self.telemetry_series = PeerSeries()
        self.slo_monitor = SLOMonitor(tuple(rules), scope="sim")
        self.slo_window = window
        return self

    # ------------------------------------------------------------------
    # installation: turn the spec into scheduled submission events
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Create the driver's clients and schedule the arrivals."""
        if self._installed:
            raise RuntimeError("workload driver already installed")
        self._installed = True
        spec = self.spec
        for i in range(min(spec.clients, spec.count)):
            client = self.system.add_client(f"wl-client{i + 1}")
            client.result_listeners.append(self._on_result)
            self._clients.append(client)
        if spec.mode == "open":
            self._install_open_loop()
        else:
            self._install_closed_loop()

    def _install_open_loop(self) -> None:
        """Pre-draw the whole arrival process (independent of query
        completions — that is what makes the loop *open*): exponential
        gaps between arrival instants, ``burst_size`` submissions per
        instant, round-robined over the client pool."""
        spec = self.spec
        at = 0.0
        offered = 0
        while offered < spec.count:
            at += self.rng.expovariate(spec.arrival_rate)
            for _ in range(min(spec.burst_size, spec.count - offered)):
                index = self._next_index
                self._next_index += 1
                client = self._clients[index % len(self._clients)]
                self.network.call_later(
                    at, lambda c=client, i=index: self._submit(c, i)
                )
                offered += 1

    def _install_closed_loop(self) -> None:
        """Each client submits one query at start; the next submission
        is scheduled ``think_time`` after its answer arrives."""
        for client in self._clients:
            index = self._claim_index()
            if index is None:
                break
            self.network.call_later(
                0.0, lambda c=client, i=index: self._submit(c, i)
            )

    def _claim_index(self):
        if self._next_index >= self.spec.count:
            return None
        index = self._next_index
        self._next_index += 1
        return index

    # ------------------------------------------------------------------
    # submissions and outcomes
    # ------------------------------------------------------------------
    def _submit(self, client, index: int) -> None:
        via, text = self.spec.queries[index % len(self.spec.queries)]
        query_id = client.submit(via, text, limit=self.spec.limit)
        self._inflight[query_id] = QueryOutcome(
            index=index,
            via=via,
            text=text,
            client_id=client.peer_id,
            query_id=query_id,
            submitted_at=self.network.now,
        )

    def _resubmit(self, client, outcome: QueryOutcome) -> None:
        """Re-offer a shed query after its back-off: a fresh query id,
        but the same logical outcome (latency keeps counting from the
        first submission)."""
        query_id = client.submit(outcome.via, outcome.text, limit=self.spec.limit)
        outcome.query_id = query_id
        self._inflight[query_id] = outcome

    def _on_result(self, client, result) -> None:
        outcome = self._inflight.pop(result.query_id, None)
        if outcome is None:
            return  # a query somebody else submitted through our client
        retry_after = client.sheds.pop(result.query_id, None)
        if (
            retry_after is not None
            and self.spec.resubmit_sheds
            and outcome.shed_retries < self.spec.max_shed_retries
        ):
            outcome.shed_retries += 1
            self.network.call_later(
                retry_after, lambda: self._resubmit(client, outcome)
            )
            return
        outcome.finished_at = self.network.now
        if result.error:
            outcome.status = "shed" if retry_after is not None else "error"
            outcome.error = result.error
        elif result.coverage is not None and not result.coverage.is_complete:
            outcome.status = "partial"
            outcome.rows = len(result.table)
        else:
            outcome.status = "ok"
            outcome.rows = len(result.table)
        self.outcomes.append(outcome)
        if self.probe is not None:
            sample = self.probe.sample()
            self.telemetry_series.append(sample)
            self.slo_events.extend(
                self.slo_monitor.evaluate(
                    sample.t, self.telemetry_series.rollup(self.slo_window)
                )
            )
        if self.spec.mode == "closed":
            index = self._claim_index()
            if index is not None:
                self.network.call_later(
                    self.spec.think_time,
                    lambda c=client, i=index: self._submit(c, i),
                )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> WorkloadReport:
        """Assemble the report.  Submissions still awaiting a reply are
        included with status ``silent`` — their presence after a run to
        quiescence is a liveness bug the property tests assert against.
        """
        outcomes = sorted(
            list(self.outcomes) + list(self._inflight.values()),
            key=lambda o: o.index,
        )
        started = min((o.submitted_at for o in outcomes), default=0.0)
        # the workload ends at its last completion, not at the last
        # no-op timer (disarmed deadlines and back-offs quiesce later
        # and would otherwise inflate the duration)
        finished = max(
            (o.finished_at for o in outcomes if o.finished_at is not None),
            default=self.network.now,
        )
        return WorkloadReport(
            outcomes=outcomes,
            started_at=started,
            finished_at=finished,
            metrics=dict(self.network.metrics.summary()),
        )


def serve(system, spec: WorkloadSpec, max_events: int = 2_000_000) -> WorkloadReport:
    """Install a workload, run the network to quiescence, report.

    This is the deployment's serving loop: many queries in flight at
    once, injected mid-run by the driver, with admission control and
    fair scheduling active if the system enabled them.
    """
    driver = WorkloadDriver(system, spec)
    driver.install()
    system.network.run(max_events=max_events)
    return driver.report()
