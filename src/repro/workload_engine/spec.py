"""Workload specifications and reports.

A :class:`WorkloadSpec` describes *offered load*: a catalog of queries,
how many submissions to make, and the arrival process — open-loop
(seeded Poisson or bursty arrivals, independent of completions, the
regime of the super-peer routing simulations in Ismail & Quafafou) or
closed-loop (N clients that think, submit, wait, repeat).  The driver
turns a spec into scheduled simulator events; the :class:`WorkloadReport`
is what comes back: one :class:`QueryOutcome` per logical query plus
throughput and latency aggregates on the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Outcome statuses a logical query can terminate with.  ``silent`` is
#: the pathological one — a query that never got *any* reply — and is
#: asserted absent by the scheduler property tests.
STATUSES = ("ok", "partial", "error", "shed", "silent")


@dataclass(frozen=True)
class WorkloadSpec:
    """One serving workload.

    Args:
        queries: Catalog of ``(via_peer, text)`` pairs; submissions
            cycle through it deterministically.
        count: Total logical queries to offer.
        mode: ``"open"`` (arrivals scheduled up front from a seeded
            Poisson process, injected mid-run regardless of progress)
            or ``"closed"`` (``clients`` loops of submit → wait →
            think).
        arrival_rate: Open loop: mean arrivals per unit of virtual time.
        burst_size: Open loop: arrivals per arrival instant (1 = pure
            Poisson; >1 models bursty load).
        clients: How many driver-owned clients submit (both modes; the
            open loop round-robins arrivals over them).
        think_time: Closed loop: virtual time a client waits between
            receiving an answer and submitting its next query.
        seed: Seed for the arrival process (independent of the network
            seed, so the same load can be replayed over different
            networks).
        resubmit_sheds: Re-offer shed queries after their retry-after
            back-off instead of recording them as refused.
        max_shed_retries: Bound on re-offers per logical query.
        limit: Submit every query as top-``limit`` (``LIMIT`` k).  With
            :attr:`~repro.peers.simple.Peer.topk_cancel` enabled on the
            coordinators this turns the whole workload into any-k
            early-terminated queries.
    """

    queries: Tuple[Tuple[str, str], ...]
    count: int
    mode: str = "open"
    arrival_rate: float = 0.1
    burst_size: int = 1
    clients: int = 2
    think_time: float = 5.0
    seed: int = 0
    resubmit_sheds: bool = True
    max_shed_retries: int = 3
    limit: Optional[int] = None

    def __post_init__(self):
        if not self.queries:
            raise ValueError("a workload needs at least one query")
        if self.count < 1:
            raise ValueError("count must be >= 1")
        if self.mode not in ("open", "closed"):
            raise ValueError("mode must be 'open' or 'closed'")
        if self.mode == "open" and self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.think_time < 0:
            raise ValueError("think_time must be >= 0")
        if self.max_shed_retries < 0:
            raise ValueError("max_shed_retries must be >= 0")
        if self.limit is not None and self.limit < 1:
            raise ValueError("limit must be >= 1 when set")


@dataclass
class QueryOutcome:
    """The fate of one logical query."""

    index: int
    via: str
    text: str
    client_id: str
    query_id: str
    submitted_at: float
    finished_at: Optional[float] = None
    status: str = "silent"
    rows: Optional[int] = None
    error: Optional[str] = None
    shed_retries: int = 0

    @property
    def latency(self) -> Optional[float]:
        """Virtual time from first submission to the final reply
        (queueing, shed back-offs and resubmissions included)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


@dataclass
class WorkloadReport:
    """Everything a serving run produced, on the virtual clock."""

    outcomes: List[QueryOutcome]
    started_at: float
    finished_at: float
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(self.finished_at - self.started_at, 0.0)

    def by_status(self) -> Dict[str, int]:
        counts = {status: 0 for status in STATUSES}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def completed(self) -> List[QueryOutcome]:
        """Outcomes that carried an answer table (full or partial)."""
        return [o for o in self.outcomes if o.status in ("ok", "partial")]

    def throughput(self) -> float:
        """Completed queries per unit of virtual time."""
        if self.duration <= 0:
            return 0.0
        return len(self.completed()) / self.duration

    def latency_percentiles(self) -> Dict[str, float]:
        """p50/p90/p99/max over completed queries' end-to-end latency."""
        observed = sorted(
            o.latency for o in self.completed() if o.latency is not None
        )
        return {
            "p50": _percentile(observed, 0.50),
            "p90": _percentile(observed, 0.90),
            "p99": _percentile(observed, 0.99),
            "max": observed[-1] if observed else 0.0,
        }

    def summary(self) -> Dict[str, float]:
        counts = self.by_status()
        percentiles = self.latency_percentiles()
        return {
            "offered": len(self.outcomes),
            "completed": counts["ok"] + counts["partial"],
            "partial": counts["partial"],
            "errors": counts["error"],
            "shed": counts["shed"],
            "silent": counts["silent"],
            "duration": self.duration,
            "throughput": self.throughput(),
            "latency_p50": percentiles["p50"],
            "latency_p99": percentiles["p99"],
            "latency_max": percentiles["max"],
            "max_inflight": self.metrics.get("max_inflight_queries", 0),
        }

    def render(self) -> str:
        """A one-screen text report."""
        summary = self.summary()
        lines = [
            f"offered    : {summary['offered']} queries "
            f"({summary['completed']} answered, {summary['partial']} partial, "
            f"{summary['errors']} errors, {summary['shed']} shed, "
            f"{summary['silent']} silent)",
            f"duration   : {summary['duration']:.1f} virtual time "
            f"(max {int(summary['max_inflight'])} in flight)",
            f"throughput : {summary['throughput']:.3f} completed/vt",
            f"latency    : p50={summary['latency_p50']:.1f} "
            f"p99={summary['latency_p99']:.1f} max={summary['latency_max']:.1f}",
        ]
        return "\n".join(lines)
