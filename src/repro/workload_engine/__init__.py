"""repro.workload_engine: concurrent multi-query serving.

The subsystem that turns the one-query-at-a-time reproduction into a
served system: a :class:`WorkloadDriver` offers load (open- or
closed-loop) on the virtual clock, :class:`AdmissionControl` bounds
what coordinators and super-peers accept (queue, shed, deadline), and
:class:`FairScheduler` interleaves per-query work at each peer so an
expensive query cannot starve cheap concurrent ones.  Everything stays
deterministic under a fixed seed.
"""

from .admission import AdmissionControl
from .driver import WorkloadDriver, serve
from .scheduler import FairScheduler
from .spec import QueryOutcome, WorkloadReport, WorkloadSpec

__all__ = [
    "AdmissionControl",
    "FairScheduler",
    "QueryOutcome",
    "WorkloadDriver",
    "WorkloadReport",
    "WorkloadSpec",
    "serve",
]
