"""Schema articulations: mappings between community RDF/S schemas.

Section 3.1: "A multi-layered hierarchical organization of the
super-peers network can be employed by using appropriate articulations
(aka mappings) of the classes and properties defined in each super-peer
RDF/S schema", and super-peers "may handle the role of a mediator in a
scenario where a query expressed in terms of a global-known schema
needs to be reformulated in terms of the schemas employed by the local
bases of the simple-peers".

An :class:`Articulation` maps classes and properties of a *source*
schema onto a *target* schema; :meth:`Articulation.reformulate`
rewrites a semantic query pattern across it, preserving variable names
and labels so reformulated subqueries join seamlessly with native ones.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..errors import MappingError
from ..rdf.schema import Schema
from ..rdf.terms import URI
from ..rdf.vocabulary import LITERAL_CLASS
from ..rql.pattern import PathPattern, QueryPattern, SchemaPath


class Articulation:
    """A directed schema mapping.

    Args:
        source: The schema queries are expressed in.
        target: The schema remote bases employ.
        class_map: Source class → target class.
        property_map: Source property → target property.

    Raises:
        MappingError: When a mapping entry names undeclared terms.
    """

    def __init__(
        self,
        source: Schema,
        target: Schema,
        class_map: Optional[Mapping[URI, URI]] = None,
        property_map: Optional[Mapping[URI, URI]] = None,
    ):
        self.source = source
        self.target = target
        self.class_map: Dict[URI, URI] = dict(class_map or {})
        self.property_map: Dict[URI, URI] = dict(property_map or {})
        for src, dst in self.class_map.items():
            if not source.has_class(src):
                raise MappingError(f"unknown source class {src}")
            if not target.has_class(dst):
                raise MappingError(f"unknown target class {dst}")
        for src, dst in self.property_map.items():
            if not source.has_property(src):
                raise MappingError(f"unknown source property {src}")
            if not target.has_property(dst):
                raise MappingError(f"unknown target property {dst}")

    # ------------------------------------------------------------------
    # term mapping
    # ------------------------------------------------------------------
    def map_property(self, prop: URI) -> Optional[URI]:
        """The target property for a source property, or ``None``."""
        return self.property_map.get(prop)

    def map_class(self, cls: URI, default: Optional[URI] = None) -> Optional[URI]:
        """The target class for a source class; literals map to
        themselves; unmapped classes fall back to ``default``."""
        if cls == LITERAL_CLASS:
            return LITERAL_CLASS
        return self.class_map.get(cls, default)

    def covers(self, pattern: QueryPattern) -> bool:
        """True when every property of the pattern is mapped."""
        return all(
            p.schema_path.property in self.property_map for p in pattern
        )

    # ------------------------------------------------------------------
    # reformulation
    # ------------------------------------------------------------------
    def reformulate_path(self, pattern: PathPattern) -> Optional[PathPattern]:
        """Rewrite one path pattern into the target vocabulary.

        The property must be mapped; end-point classes map through
        ``class_map`` and default to the target property's declared
        domain/range.  Variables, labels and projections survive
        unchanged so the reformulated subquery's results join with
        native ones.
        """
        target_prop = self.map_property(pattern.schema_path.property)
        if target_prop is None:
            return None
        definition = self.target.property_def(target_prop)
        domain = self.map_class(pattern.schema_path.domain, definition.domain)
        range_ = self.map_class(pattern.schema_path.range, definition.range)
        return PathPattern(
            label=pattern.label,
            schema_path=SchemaPath(domain, target_prop, range_),
            subject_var=pattern.subject_var,
            object_var=pattern.object_var,
            projected=pattern.projected,
        )

    def reformulate(self, pattern: QueryPattern) -> Optional[QueryPattern]:
        """Rewrite a whole query pattern, or ``None`` when any path's
        property is unmapped (partial mediation is unsound for joins)."""
        rewritten = []
        for path_pattern in pattern:
            mapped = self.reformulate_path(path_pattern)
            if mapped is None:
                return None
            rewritten.append(mapped)
        return QueryPattern(rewritten, pattern.projections, self.target)

    def inverse(self) -> "Articulation":
        """The reverse mapping (requires injective maps).

        Raises:
            MappingError: When two source terms map to one target term.
        """
        inverted_classes = {v: k for k, v in self.class_map.items()}
        inverted_properties = {v: k for k, v in self.property_map.items()}
        if len(inverted_classes) != len(self.class_map) or len(
            inverted_properties
        ) != len(self.property_map):
            raise MappingError("articulation is not invertible")
        return Articulation(
            self.target, self.source, inverted_classes, inverted_properties
        )

    def __repr__(self) -> str:
        return (
            f"Articulation({self.source.name} -> {self.target.name}, "
            f"{len(self.class_map)} classes, {len(self.property_map)} properties)"
        )
