"""Schema articulations and cross-SON query reformulation."""

from .articulation import Articulation

__all__ = ["Articulation"]
