"""ASCII rendering of span trees and timelines.

``render_trace(spans)`` draws one query's causal tree — stage name,
peer, virtual-time window, duration, status, fault/retry annotations —
plus a proportional timeline bar per span, so "where did this query
spend its life" is answerable from a terminal.
"""

from __future__ import annotations

from typing import List, Optional

from .collect import span_tree
from .span import Span, _stringify

#: Width of the timeline bar column.
BAR_WIDTH = 28


def _bar(span: Span, t0: float, t1: float) -> str:
    """A proportional ``[  ▓▓▓   ]`` lane for the span's window."""
    if t1 <= t0:
        return "·" * BAR_WIDTH
    end = span.end if span.end is not None else t1
    left = int(round((span.start - t0) / (t1 - t0) * (BAR_WIDTH - 1)))
    right = int(round((end - t0) / (t1 - t0) * (BAR_WIDTH - 1)))
    right = max(right, left)
    return " " * left + "#" * (right - left + 1) + " " * (BAR_WIDTH - right - 1)


def _label(span: Span) -> str:
    end = f"{span.end:.1f}" if span.end is not None else "…"
    duration = f"{span.duration:.1f}" if span.duration is not None else "?"
    status = "" if span.status == "ok" else f" !{span.status}"
    attributes = ""
    if span.attributes:
        inner = " ".join(
            f"{k}={_stringify(v)}" for k, v in sorted(span.attributes.items())
        )
        attributes = f" ({inner})"
    return (
        f"{span.name} @{span.peer_id} [{span.start:.1f}–{end}] "
        f"{duration}{status}{attributes}"
    )


def render_trace(spans: List[Span], show_events: bool = True) -> str:
    """The trace as an indented tree with per-span timeline bars."""
    if not spans:
        return "(empty trace)"
    t0 = min(span.start for span in spans)
    t1 = max(
        span.end if span.end is not None else span.start for span in spans
    )
    tree = span_tree(spans)
    lines: List[str] = [
        f"trace {spans[0].trace_id}  "
        f"[{t0:.1f}–{t1:.1f}]  {len(spans)} spans  "
        f"({len({s.peer_id for s in spans})} peers)"
    ]

    def walk(parent: Optional[str], prefix: str) -> None:
        children = tree.get(parent, [])
        for index, span in enumerate(children):
            last = index == len(children) - 1
            branch = "└─ " if last else "├─ "
            lines.append(
                f"{prefix}{branch}{_bar(span, t0, t1)}  {_label(span)}"
            )
            deeper = prefix + ("   " if last else "│  ")
            if show_events:
                for at, text in span.events or ():
                    lines.append(f"{deeper}{' ' * (BAR_WIDTH + 2)}· {at:.1f} {text}")
            walk(span.span_id, deeper)

    walk(None, "")
    return "\n".join(lines)
