"""HDR-style bucketed histograms for latency/size distributions.

Buckets grow geometrically, so relative error is bounded (~``growth``)
across the whole dynamic range — microsecond wall-clock samples and
hundred-unit virtual-time latencies land in the same structure — while
storage stays sparse (a dict of non-empty buckets).  Percentile reads
interpolate inside the winning bucket, which keeps small known
distributions (the test vectors) exact at the bucket resolution.

Recording is write-optimised: ``record`` only appends to a pending
list (histograms sit on the per-message and per-span hot paths of the
simulator) and the logarithmic bucket fold runs lazily on the first
read — or once the pending list hits a bounded size, so memory stays
O(threshold) between reads.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

#: Default geometric bucket growth (≈5% relative resolution).
DEFAULT_GROWTH = 1.05
#: Values at or below this fall into the underflow bucket.
MIN_TRACKABLE = 1e-9
#: Pending samples are folded into buckets at this size even without a
#: read, bounding memory between reads.
FLUSH_THRESHOLD = 1024


class Histogram:
    """A bucketed value distribution with percentile reads.

    Args:
        growth: Geometric factor between bucket boundaries.
    """

    __slots__ = (
        "growth",
        "_log_growth",
        "_buckets",
        "_count",
        "_total",
        "_min",
        "_max",
        "_pending",
    )

    def __init__(self, growth: float = DEFAULT_GROWTH):
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.growth = growth
        self._log_growth = math.log(growth)
        #: bucket index -> sample count (index < 0 is the underflow bucket)
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        #: recorded but not yet bucketed samples
        self._pending: List[float] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _index(self, value: float) -> int:
        if value <= MIN_TRACKABLE:
            return -1
        return int(math.log(value / MIN_TRACKABLE) / self._log_growth)

    def _upper_bound(self, index: int) -> float:
        if index < 0:
            return MIN_TRACKABLE
        return MIN_TRACKABLE * self.growth ** (index + 1)

    def _lower_bound(self, index: int) -> float:
        if index < 0:
            return 0.0
        return MIN_TRACKABLE * self.growth**index

    def record(self, value: float) -> None:
        pending = self._pending
        pending.append(value)
        if len(pending) >= FLUSH_THRESHOLD:
            self._flush()

    def record_many(self, values: Iterable[float]) -> None:
        self._pending.extend(values)
        if len(self._pending) >= FLUSH_THRESHOLD:
            self._flush()

    def _flush(self) -> None:
        """Fold pending samples into the buckets (deferred from
        :meth:`record` so the hot path stays a list append)."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        log = math.log
        log_growth = self._log_growth
        buckets = self._buckets
        total = 0.0
        low = high = pending[0]
        for value in pending:
            if value <= MIN_TRACKABLE:
                index = -1
            else:
                index = int(log(value / MIN_TRACKABLE) / log_growth)
            buckets[index] = buckets.get(index, 0) + 1
            total += value
            if value < low:
                low = value
            elif value > high:
                high = value
        self._count += len(pending)
        self._total += total
        self._min = low if self._min is None else min(self._min, low)
        self._max = high if self._max is None else max(self._max, high)

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram (same growth) into this one."""
        if other.growth != self.growth:
            raise ValueError("cannot merge histograms with different growth")
        self._flush()
        other._flush()
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._count += other._count
        self._total += other._total
        for bound in (other._min, other._max):
            if bound is not None:
                self._min = bound if self._min is None else min(self._min, bound)
                self._max = bound if self._max is None else max(self._max, bound)

    # ------------------------------------------------------------------
    # reads (each flushes pending samples first)
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        self._flush()
        return self._count

    @property
    def total(self) -> float:
        self._flush()
        return self._total

    @property
    def min(self) -> Optional[float]:
        self._flush()
        return self._min

    @property
    def max(self) -> Optional[float]:
        self._flush()
        return self._max

    @property
    def mean(self) -> Optional[float]:
        self._flush()
        return self._total / self._count if self._count else None

    def percentile(self, p: float) -> Optional[float]:
        """The value at quantile ``p`` in [0, 100] (linear interpolation
        within the winning bucket, clamped to the observed min/max)."""
        if not self.count:
            return None
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        assert self.min is not None and self.max is not None
        rank = p / 100.0 * self.count
        seen = 0
        for index in sorted(self._buckets):
            in_bucket = self._buckets[index]
            if seen + in_bucket >= rank:
                low = max(self._lower_bound(index), self.min)
                high = min(self._upper_bound(index), self.max)
                if in_bucket == 0:
                    return high
                fraction = (rank - seen) / in_bucket
                return low + (high - low) * min(max(fraction, 0.0), 1.0)
            seen += in_bucket
        return self.max

    def summary(self) -> Dict[str, float]:
        """The headline read: count, mean, p50/p90/p99, min/max."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
            "min": self.min,
            "max": self.max,
        }

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for non-empty
        buckets — the Prometheus histogram exposition shape."""
        self._flush()
        out: List[Tuple[float, int]] = []
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            out.append((self._upper_bound(index), seen))
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if not self.count:
            return "Histogram(empty)"
        return (
            f"Histogram(n={self.count}, p50={self.percentile(50):.4g}, "
            f"p99={self.percentile(99):.4g}, max={self.max:.4g})"
        )
