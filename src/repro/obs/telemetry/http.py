"""Per-peer telemetry endpoints: a minimal HTTP server and scrape client.

Live nodes serve three read-only paths off the same asyncio event loop
that drives their :class:`~repro.transport.live.AsyncioTransport` —
no threads, no third-party dependencies:

* ``/metrics`` — the Prometheus text exposition;
* ``/healthz`` — JSON liveness/membership state (peer id, role,
  incarnation epoch, quarantined peers, inflight queries, ...);
* ``/tracez`` — JSON summaries of recently collected traces.

The server speaks just enough HTTP/1.0 for a scraper or ``curl``:
request line + headers in, status line + ``Content-Type`` +
``Content-Length`` out, connection closed after the response.  The
matching :func:`scrape` client is synchronous (the launcher scrapes
between workload steps, from outside the peers' event loops).

:func:`parse_exposition` is the scrape-side parser: exposition text to
``(family, labels, value)`` triples, unescaping label values — the
inverse of :mod:`repro.obs.exposition`'s renderer, and property-tested
against it.
"""

from __future__ import annotations

import asyncio
import json
import socket
from typing import Callable, Dict, List, Optional, Tuple

from ...errors import NetworkError

#: ``path -> () -> (content_type, body)``
Handlers = Dict[str, Callable[[], Tuple[str, str]]]

#: scrape timeout (real seconds) before a peer counts as down
DEFAULT_SCRAPE_TIMEOUT = 2.0


class TelemetryServer:
    """Serves read-only telemetry paths on a peer's event loop.

    Args:
        handlers: Route table; each handler returns ``(content_type,
            body)`` and is invoked per request on the event loop.
        host: Interface to bind.
        port: Port (0 picks a free one; see :attr:`port` after
            :meth:`start`).
    """

    def __init__(self, handlers: Handlers, host: str = "127.0.0.1", port: int = 0):
        self.handlers = dict(handlers)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests_served = 0

    async def _start(self) -> None:
        self._server = await asyncio.start_server(self._serve, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def start(self, loop: asyncio.AbstractEventLoop) -> Tuple[str, int]:
        """Bind on ``loop``; returns the bound ``(host, port)``."""
        loop.run_until_complete(self._start())
        return (self.host, self.port)

    def close(self, loop: asyncio.AbstractEventLoop) -> None:
        if self._server is not None:
            self._server.close()
            if not loop.is_closed():
                loop.run_until_complete(self._server.wait_closed())
            self._server = None

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request.decode("ascii", "replace").split()
            path = parts[1] if len(parts) >= 2 else "/"
            # drain headers; telemetry requests carry no body
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            handler = self.handlers.get(path.split("?", 1)[0])
            if parts and parts[0] != "GET":
                status, content_type, body = "405 Method Not Allowed", "text/plain", "GET only\n"
            elif handler is None:
                known = " ".join(sorted(self.handlers))
                status, content_type, body = "404 Not Found", "text/plain", f"unknown path; try: {known}\n"
            else:
                try:
                    content_type, body = handler()
                    status = "200 OK"
                except Exception as exc:  # a broken gauge must not kill the node
                    status, content_type, body = "500 Internal Server Error", "text/plain", f"{exc}\n"
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    f"Content-Type: {content_type}; charset=utf-8\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("ascii")
            )
            writer.write(payload)
            await writer.drain()
            self.requests_served += 1
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            writer.close()


def scrape(
    host: str, port: int, path: str = "/metrics",
    timeout: float = DEFAULT_SCRAPE_TIMEOUT,
) -> str:
    """Synchronous GET of one telemetry path; returns the body.

    Raises :class:`~repro.errors.NetworkError` when the peer is
    unreachable or answers non-200 — the scraper's down signal.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(
                f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("ascii")
            )
            chunks = []
            while True:
                chunk = sock.recv(64 * 1024)
                if not chunk:
                    break
                chunks.append(chunk)
    except OSError as exc:
        raise NetworkError(f"scrape of {host}:{port}{path} failed: {exc}") from exc
    response = b"".join(chunks).decode("utf-8", "replace")
    head, _, body = response.partition("\r\n\r\n")
    status_line = head.split("\r\n", 1)[0]
    parts = status_line.split()
    if len(parts) < 2 or parts[1] != "200":
        raise NetworkError(
            f"scrape of {host}:{port}{path} answered {status_line!r}"
        )
    return body


def scrape_json(
    host: str, port: int, path: str, timeout: float = DEFAULT_SCRAPE_TIMEOUT
) -> dict:
    return json.loads(scrape(host, port, path, timeout))


def _unescape(value: str) -> str:
    out = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "\\":
                out.append("\\")
                index += 2
                continue
            if nxt == '"':
                out.append('"')
                index += 2
                continue
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
        out.append(char)
        index += 1
    return "".join(out)


def parse_exposition(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse a Prometheus text exposition into ``(family, labels,
    value)`` triples.

    Handles the full label-value escape set (backslashes, quotes,
    newlines) and skips comment/blank lines.  Malformed lines raise —
    a scraped endpoint producing soup should fail the scrape loudly,
    not silently drop samples.
    """
    out: List[Tuple[str, Dict[str, str], float]] = []
    # split on newlines only: str.splitlines would also break on \f,
    # \v and unicode separators, which are legal *inside* quoted label
    # values
    for line in text.split("\n"):
        if not line or line.startswith("#"):
            continue
        labels: Dict[str, str] = {}
        brace = line.find("{")
        if brace == -1:
            name, _, value = line.rpartition(" ")
            if not name:
                raise ValueError(f"malformed exposition line: {line!r}")
            out.append((name.strip(), labels, float(value)))
            continue
        name = line[:brace]
        index = brace + 1
        while index < len(line) and line[index] != "}":
            equals = line.index("=", index)
            label = line[index:equals]
            if line[equals + 1] != '"':
                raise ValueError(f"unquoted label value in: {line!r}")
            cursor = equals + 2
            raw = []
            while True:
                if cursor >= len(line):
                    raise ValueError(f"unterminated label value in: {line!r}")
                char = line[cursor]
                if char == "\\":
                    raw.append(line[cursor : cursor + 2])
                    cursor += 2
                    continue
                if char == '"':
                    break
                raw.append(char)
                cursor += 1
            labels[label] = _unescape("".join(raw))
            index = cursor + 1
            if index < len(line) and line[index] == ",":
                index += 1
        value = line[index + 1 :].strip()
        out.append((name, labels, float(value)))
    return out
