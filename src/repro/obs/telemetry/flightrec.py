"""The flight recorder: a bounded black box of control-plane events.

Counters say *how many* sheds or quarantines happened; the flight
recorder says *which* — every restart, quarantine, rehabilitation,
cache invalidation, shed, replan and deadline expiration lands here as
a structured record (``repro.obs/event-v1``) in a bounded ring.  Live
nodes additionally stream each record to a durable per-node
``*.events.jsonl`` (append + flush per write), so a SIGKILLed process
still leaves its last moments on disk for the supervisor's diagnostic
bundle.

Recording is uncharged: events never touch simulated quantities, so a
recorded run stays bit-identical to an unrecorded one — the same
invariant the tracer keeps.

The :class:`SlowQueryLog` rides the same philosophy for latency
outliers: any query slower than its threshold gets its query id,
latency and — when a collector is attached — full trace retained, so
the one-in-a-thousand straggler is explainable after the fact.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Any, Callable, Deque, Dict, List, Optional

#: schema tag stamped into every flight-recorder record
EVENT_SCHEMA = "repro.obs/event-v1"

#: the record kinds the repro's subsystems emit (documented contract;
#: unknown kinds are recorded too — the set is advisory, not enforced)
KNOWN_KINDS = (
    "shed",
    "deadline_expired",
    "replan",
    "quarantine",
    "rehabilitate",
    "cache_invalidate",
    "peer_down",
    "peer_up",
    "join",
    "leave",
    "crash",
    "rejoin",
    "recovery",
    "restart",
    "breaker_trip",
    "slow_query",
    # live data plane (repro.livedata)
    "update_batch",
    "advertise_delta",
    "topk_cancel",
)


class FlightRecorder:
    """Bounded structured event storage with an optional durable sink.

    Args:
        clock: Timestamps records (virtual time in-sim, wall live).
        capacity: Ring size; the oldest records fall off.
        sink: Optional callable receiving each record dict as it is
            recorded (live nodes pass a durable JSONL appender).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        capacity: int = 512,
        sink: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        if capacity < 1:
            raise ValueError("flight recorder capacity must be >= 1")
        self.clock = clock
        self.capacity = capacity
        self.sink = sink
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self.counts: Counter = Counter()
        self.dropped = 0

    def record(self, kind: str, peer: Optional[str] = None, **fields: Any) -> Dict[str, Any]:
        """Record one event; returns the record."""
        record = {"t": self.clock(), "kind": kind}
        if peer is not None:
            record["peer"] = peer
        if fields:
            record.update(fields)
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(record)
        self.counts[kind] += 1
        if self.sink is not None:
            self.sink(record)
        return record

    def events(self, kind: Optional[str] = None, peer: Optional[str] = None) -> List[Dict[str, Any]]:
        """Retained records, oldest first, optionally filtered."""
        out = list(self._ring)
        if kind is not None:
            out = [record for record in out if record["kind"] == kind]
        if peer is not None:
            out = [record for record in out if record.get("peer") == peer]
        return out

    def __len__(self) -> int:
        return len(self._ring)

    def export(self) -> Dict[str, Any]:
        """A JSON-ready dump (stable schema)."""
        return {
            "schema": EVENT_SCHEMA,
            "dropped": self.dropped,
            "counts": dict(self.counts),
            "events": list(self._ring),
        }


class JsonlSink:
    """A durable line-per-record appender (flushed per write, so a
    SIGKILL loses at most the record being written)."""

    def __init__(self, path):
        self.path = path
        self._handle = open(path, "a", buffering=1)

    def __call__(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()


class SlowQueryLog:
    """Retains the slowest queries above a latency threshold.

    Args:
        threshold: Latency (the metric clock's units) above which a
            query is logged.
        capacity: Worst-N bound on retained entries.
        collector: Optional
            :class:`~repro.obs.collect.TraceCollector`; when present,
            each logged entry carries the query's full trace export.
        on_slow: Optional callback ``(entry_dict)`` — live nodes dump
            the trace to disk from it.
    """

    def __init__(
        self,
        threshold: float,
        capacity: int = 32,
        collector=None,
        on_slow: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        if threshold <= 0:
            raise ValueError("slow-query threshold must be positive")
        self.threshold = threshold
        self.capacity = capacity
        self.collector = collector
        self.on_slow = on_slow
        #: logged entries, slowest first, at most ``capacity``
        self.entries: List[Dict[str, Any]] = []
        self.observed = 0

    def install(self, metrics) -> "SlowQueryLog":
        """Hook into a :class:`MetricSet`'s per-query latency stream."""
        metrics.on_query_latency = self.observe
        return self

    def observe(self, query_id: str, latency: float) -> None:
        self.observed += 1
        if latency < self.threshold:
            return
        entry: Dict[str, Any] = {
            "query_id": query_id,
            "latency": latency,
            "threshold": self.threshold,
        }
        if self.collector is not None and query_id in self.collector.trace_ids():
            # the query id doubles as the trace id (see ClientPeer.submit)
            entry["trace"] = self.collector.export(query_id)
        self.entries.append(entry)
        self.entries.sort(key=lambda item: -item["latency"])
        del self.entries[self.capacity:]
        if self.on_slow is not None:
            self.on_slow(entry)

    def __len__(self) -> int:
        return len(self.entries)
