"""Declarative SLO monitors over sliding-window rollups.

An :class:`SLORule` names one statistic of a rollup dict (the output of
:meth:`~repro.obs.telemetry.sampler.PeerSeries.rollup` or
:meth:`~repro.obs.telemetry.sampler.ClusterSeries.rollup`), a
comparison and a threshold, plus a debounce: the rule only *fires*
after the predicate has held for ``for_samples`` consecutive
evaluations — one slow scrape is noise, three in a row is an incident.

The :class:`SLOMonitor` evaluates every rule per tick and emits
structured alert events on **transitions** only (``firing`` /
``resolved``), so a timeline records incidents, not every evaluation.
Events are plain dicts with a stable schema (``repro.obs/alert-v1``)
that land in ``timeline.jsonl`` and in a run's ``report.json``.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple

#: schema tag stamped into every alert event
ALERT_SCHEMA = "repro.obs/alert-v1"

_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


class SLORule(NamedTuple):
    """One service-level objective.

    Attributes:
        name: Stable identifier (lands in alert events).
        metric: Key into the rollup dict (``p99_latency``,
            ``shed_rate``, ``availability``, ``partial_rate``, ...).
        op: Comparison that means *violated* (``">"`` fires when the
            observed value exceeds ``threshold``).
        threshold: The objective's bound.
        window: Sliding-window width (same clock as the samples).
        for_samples: Consecutive violating evaluations before firing.
        description: One line for operators.
    """

    name: str
    metric: str
    op: str
    threshold: float
    window: float = 60.0
    for_samples: int = 2
    description: str = ""

    def violated(self, rollup: Dict[str, Any]) -> Optional[bool]:
        """Whether this evaluation violates the objective (``None``
        when the statistic is unavailable, e.g. an empty window)."""
        value = rollup.get(self.metric)
        if value is None:
            return None
        return _OPS[self.op](value, self.threshold)


def default_slo_rules(
    p99_bound: float = 600.0,
    shed_bound: float = 0.25,
    availability_floor: float = 0.75,
    partial_bound: float = 0.5,
    window: float = 60.0,
) -> Tuple[SLORule, ...]:
    """The stock rule set a launch/serve run monitors."""
    return (
        SLORule(
            "p99-latency", "p99_latency", ">", p99_bound, window=window,
            description=f"windowed p99 query latency above {p99_bound:g}",
        ),
        SLORule(
            "shed-rate", "shed_rate", ">", shed_bound, window=window,
            description=f"more than {shed_bound:.0%} of offered queries shed",
        ),
        SLORule(
            "availability", "availability", "<", availability_floor,
            window=window, for_samples=1,
            description=f"fewer than {availability_floor:.0%} of peers up",
        ),
        SLORule(
            "partial-rate", "partial_rate", ">", partial_bound, window=window,
            description=f"more than {partial_bound:.0%} of answers partial",
        ),
    )


class SLOMonitor:
    """Evaluates rules each tick, emitting transition events.

    Args:
        rules: The objectives to watch.
        scope: Label for the monitored entity (``"cluster"`` or a peer
            id); lands in every alert event.
    """

    def __init__(self, rules: Tuple[SLORule, ...] = (), scope: str = "cluster"):
        self.rules = tuple(rules) or default_slo_rules()
        self.scope = scope
        self._violations: Dict[str, int] = {}
        self.firing: Dict[str, Dict[str, Any]] = {}
        #: every transition event ever emitted, in order
        self.history: List[Dict[str, Any]] = []

    def evaluate(self, t: float, rollup: Dict[str, Any]) -> List[Dict[str, Any]]:
        """One tick: returns the transition events (may be empty)."""
        events: List[Dict[str, Any]] = []
        for rule in self.rules:
            violated = rule.violated(rollup)
            if violated is None:
                continue
            streak = self._violations.get(rule.name, 0)
            streak = streak + 1 if violated else 0
            self._violations[rule.name] = streak
            value = rollup.get(rule.metric)
            if streak >= rule.for_samples and rule.name not in self.firing:
                event = {
                    "schema": ALERT_SCHEMA,
                    "kind": "alert",
                    "state": "firing",
                    "rule": rule.name,
                    "scope": self.scope,
                    "metric": rule.metric,
                    "op": rule.op,
                    "threshold": rule.threshold,
                    "value": value,
                    "window": rule.window,
                    "t": t,
                    "description": rule.description,
                }
                self.firing[rule.name] = event
                events.append(event)
            elif not violated and rule.name in self.firing:
                fired = self.firing.pop(rule.name)
                events.append(
                    {
                        "schema": ALERT_SCHEMA,
                        "kind": "alert",
                        "state": "resolved",
                        "rule": rule.name,
                        "scope": self.scope,
                        "metric": rule.metric,
                        "op": rule.op,
                        "threshold": rule.threshold,
                        "value": value,
                        "window": rule.window,
                        "t": t,
                        "fired_at": fired["t"],
                        "description": rule.description,
                    }
                )
        self.history.extend(events)
        return events

    def active(self) -> List[Dict[str, Any]]:
        """The currently firing alerts, oldest first."""
        return sorted(self.firing.values(), key=lambda event: event["t"])


def render_alert(event: Dict[str, Any]) -> str:
    """One human-readable line per alert event."""
    value = event.get("value")
    rendered = "n/a" if value is None else f"{value:.4g}"
    return (
        f"[{event['t']:.1f}] {event['state'].upper():<8} {event['rule']} "
        f"({event['scope']}): {event['metric']} = {rendered} "
        f"{event['op']} {event['threshold']:g} over {event['window']:g}"
    )
