"""In-process telemetry snapshots: the sim-side twin of the endpoints.

A :class:`TelemetryProbe` answers the same three questions the live
HTTP endpoints serve — *metrics*, *health*, *recent traces* — directly
from in-process objects, so a simulated run can be inspected with the
same payload shapes a live scrape returns.  Difftests lean on this: the
sim probe's exposition and a live node's ``/metrics`` body go through
one parser and one rollup pipeline.

The probe is strictly pull-based.  It never schedules simulator
events, never mutates metrics, and reads everything on demand — a
probed run stays bit-identical to an unprobed one.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..collect import validate_trace
from ..exposition import render_prometheus
from ..gauges import peer_gauges
from .sampler import TelemetrySample, sample_metricset

#: schema tags of the JSON payloads (shared by live endpoints)
HEALTH_SCHEMA = "repro.obs/healthz-v1"
TRACEZ_SCHEMA = "repro.obs/tracez-v1"


class TelemetryProbe:
    """Telemetry snapshots of one process's peers.

    Args:
        network: The :class:`~repro.net.simulator.Network` whose
            metrics/collector back the snapshots.
        peers: The peer objects living in this process (one for a live
            node; the whole population for an in-sim system).
        node_id: Identity reported by :meth:`healthz` (defaults to the
            sole peer's id, or ``"_system"``).
        role: ``"super"`` / ``"peer"`` / ``"system"`` for healthz.
    """

    def __init__(
        self,
        network,
        peers: Iterable = (),
        node_id: Optional[str] = None,
        role: Optional[str] = None,
    ):
        self.network = network
        self.peers = list(peers)
        if node_id is None:
            node_id = self.peers[0].peer_id if len(self.peers) == 1 else "_system"
        self.node_id = node_id
        self.role = role or ("system" if len(self.peers) != 1 else "peer")

    # ------------------------------------------------------------------
    # /metrics
    # ------------------------------------------------------------------
    def metrics_text(self, const_labels: Optional[Dict[str, Any]] = None) -> str:
        """The Prometheus exposition (same renderer live nodes use)."""
        return render_prometheus(
            self.network.metrics, peer_gauges(self.peers), const_labels=const_labels
        )

    # ------------------------------------------------------------------
    # /healthz
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        """Liveness + membership state, JSON-ready."""
        metrics = self.network.metrics
        quarantined: List[str] = sorted(
            {
                suspect
                for peer in self.peers
                for suspect in getattr(
                    getattr(peer, "quarantine", None), "peers", ()
                )
            }
        )
        incarnations = {}
        for peer in self.peers:
            channels = getattr(peer, "channels", None)
            if channels is not None and hasattr(channels, "epoch"):
                incarnations[peer.peer_id] = channels.epoch
        advertisements = max(
            (
                len(getattr(peer, "known_advertisements", ()) or ())
                for peer in self.peers
            ),
            default=0,
        )
        health = {
            "schema": HEALTH_SCHEMA,
            "status": "ok",
            "node_id": self.node_id,
            "role": self.role,
            "t": self.network.now,
            "peers_hosted": len(self.peers),
            "inflight_queries": metrics.inflight_queries,
            "queries_finished": metrics.latency_histogram.count,
            "queries_shed": metrics.queries_shed,
            "quarantined": quarantined,
            "incarnations": incarnations,
            "known_advertisements": advertisements,
            "recoveries": metrics.recoveries,
            "rejoins": metrics.rejoins,
        }
        transport = getattr(self.network, "transport", None)
        if transport is not None:
            health["transport"] = getattr(transport, "kind", "sim")
            extra = getattr(transport, "diagnostics_extra", None)
            if callable(extra):
                health.update(extra())
        down = getattr(self.network, "_down", None)
        if down is not None:
            health["down_peers"] = sorted(down)
        return health

    # ------------------------------------------------------------------
    # /tracez
    # ------------------------------------------------------------------
    def tracez(self, limit: int = 10) -> Dict[str, Any]:
        """Summaries of the most recently collected traces."""
        collector = getattr(self.network, "trace_collector", None)
        traces: List[Dict[str, Any]] = []
        if collector is not None:
            for trace_id in collector.trace_ids()[-limit:]:
                spans = collector.spans(trace_id)
                start = min(span.start for span in spans)
                ends = [span.end for span in spans if span.end is not None]
                traces.append(
                    {
                        "trace_id": trace_id,
                        "root": spans[0].name if spans else "?",
                        "spans": len(spans),
                        "start": start,
                        "duration": (max(ends) - start) if ends else None,
                        "problems": validate_trace(spans),
                    }
                )
        return {
            "schema": TRACEZ_SCHEMA,
            "node_id": self.node_id,
            "collected": (
                len(collector.trace_ids()) if collector is not None else 0
            ),
            "traces": traces,
        }

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self, gauges: Optional[Dict[str, Any]] = None) -> TelemetrySample:
        """One rollup-ready sample at the network's current time."""
        return sample_metricset(self.network.metrics, self.network.now, gauges)
