"""Live cluster telemetry: time-series rollups, scrape endpoints, SLO
watchdogs and the crash flight recorder.

Layered on the PR-3 observability core (:mod:`repro.obs`), this
package adds the *operational* half of observability:

* :mod:`timeseries` — bounded rings with Prometheus-style reset-aware
  ``rate()`` / ``increase()`` and windowed percentiles from cumulative
  histogram-bucket deltas;
* :mod:`sampler` — one :class:`TelemetrySample` shape whether read
  in-process off a :class:`MetricSet` or parsed from a scraped text
  exposition, feeding per-peer and cluster rollups;
* :mod:`slo` — declarative SLO rules with debounce, firing/resolved
  transition events (``repro.obs/alert-v1``);
* :mod:`flightrec` — the bounded structured-event black box
  (``repro.obs/event-v1``), durable JSONL sinks, slow-query log;
* :mod:`probe` — in-sim snapshot API mirroring the live endpoints;
* :mod:`http` — the per-peer ``/metrics`` / ``/healthz`` / ``/tracez``
  server on the node's event loop, plus the scrape client and
  exposition parser;
* :mod:`scraper` — the launcher-side scrape loop, durable
  ``timeline.jsonl`` and crash diagnostic bundles.

The PR-3 invariants carry over: everything here is pull-based and
uncharged, so telemetry perturbs no simulated quantity and a
telemetry-enabled run stays bit-identical to a bare one.
"""

from .flightrec import EVENT_SCHEMA, KNOWN_KINDS, FlightRecorder, JsonlSink, SlowQueryLog
from .http import TelemetryServer, parse_exposition, scrape, scrape_json
from .probe import HEALTH_SCHEMA, TRACEZ_SCHEMA, TelemetryProbe
from .sampler import (
    COUNTER_NAMES,
    ClusterSeries,
    PeerSeries,
    TelemetrySample,
    sample_from_exposition,
    sample_metricset,
)
from .scraper import (
    ClusterScraper,
    discover_endpoints,
    read_timeline,
    write_diagnostic_bundle,
    write_endpoint_file,
)
from .slo import ALERT_SCHEMA, SLOMonitor, SLORule, default_slo_rules, render_alert
from .timeseries import TimeSeries, delta_buckets, percentile_from_buckets

__all__ = [
    "ALERT_SCHEMA",
    "COUNTER_NAMES",
    "ClusterScraper",
    "ClusterSeries",
    "EVENT_SCHEMA",
    "FlightRecorder",
    "HEALTH_SCHEMA",
    "JsonlSink",
    "KNOWN_KINDS",
    "PeerSeries",
    "SLOMonitor",
    "SLORule",
    "SlowQueryLog",
    "TRACEZ_SCHEMA",
    "TelemetryProbe",
    "TelemetrySample",
    "TelemetryServer",
    "TimeSeries",
    "default_slo_rules",
    "delta_buckets",
    "discover_endpoints",
    "parse_exposition",
    "percentile_from_buckets",
    "read_timeline",
    "render_alert",
    "sample_from_exposition",
    "sample_metricset",
    "scrape",
    "scrape_json",
    "write_diagnostic_bundle",
    "write_endpoint_file",
]
