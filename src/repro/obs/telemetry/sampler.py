"""Samplers: turn metric sources into rollup-ready telemetry samples.

A :class:`TelemetrySample` is one scrape of one peer — cumulative
counters, the latency histogram's cumulative buckets, point-in-time
gauges, and a liveness verdict — regardless of where it came from:

* :func:`sample_metricset` reads a live
  :class:`~repro.metrics.collectors.MetricSet` in-process (the in-sim
  path, sampled on virtual time);
* :func:`sample_from_exposition` parses a scraped Prometheus text
  exposition (the live path, sampled on wall time).

Both feed the same :class:`PeerSeries`, whose :meth:`~PeerSeries.rollup`
computes the windowed statistics the SLO monitors evaluate — rates,
``increase()`` deltas and windowed latency percentiles — so sim and
live deployments are judged by one set of rules.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from .timeseries import (
    DEFAULT_CAPACITY,
    TimeSeries,
    delta_buckets,
    percentile_from_buckets,
)

#: Counters every sample carries (missing sources read as zero).
COUNTER_NAMES = (
    "messages",
    "bytes",
    "queries_finished",
    "queries_shed",
    "deadline_expirations",
    "partial_results",
    "retries",
    "retransmits",
    "suspicions",
    "dropped_messages",
    "cache_invalidations",
    "recoveries",
    "rejoins",
)

#: Prometheus family name behind each counter (the scrape-side mapping).
EXPOSITION_FAMILIES = {
    "messages": "repro_messages_total",
    "bytes": "repro_bytes_total",
    "queries_finished": "repro_query_latency_count",
    "queries_shed": "repro_queries_shed_total",
    "deadline_expirations": "repro_deadline_expirations_total",
    "partial_results": "repro_partial_results_total",
    "retries": "repro_retries_total",
    "retransmits": "repro_retransmits_total",
    "suspicions": "repro_suspicions_total",
    "dropped_messages": "repro_dropped_messages_total",
    "cache_invalidations": "repro_cache_invalidations_total",
    "recoveries": "repro_recoveries_total",
    "rejoins": "repro_rejoins_total",
}


class TelemetrySample(NamedTuple):
    """One scrape of one peer."""

    t: float
    counters: Dict[str, float]
    #: cumulative ``(upper_bound, count)`` pairs of the latency histogram
    latency_buckets: Tuple[Tuple[float, int], ...]
    gauges: Dict[str, Any]
    up: bool = True


def sample_metricset(
    metrics, t: float, gauges: Optional[Dict[str, Any]] = None
) -> TelemetrySample:
    """Read one sample straight off a :class:`MetricSet` (in-sim path)."""
    counters = {
        "messages": float(metrics.messages_total),
        "bytes": float(metrics.bytes_total),
        "queries_finished": float(metrics.latency_histogram.count),
        "queries_shed": float(metrics.queries_shed),
        "deadline_expirations": float(metrics.deadline_expirations),
        "partial_results": float(metrics.partial_results),
        "retries": float(metrics.retries),
        "retransmits": float(metrics.retransmits),
        "suspicions": float(metrics.suspicions),
        "dropped_messages": float(metrics.dropped_messages),
        "cache_invalidations": float(metrics.cache_invalidations),
        "recoveries": float(metrics.recoveries),
        "rejoins": float(metrics.rejoins),
    }
    point = dict(gauges or {})
    point.setdefault("inflight_queries", metrics.inflight_queries)
    return TelemetrySample(
        t=t,
        counters=counters,
        latency_buckets=tuple(metrics.latency_histogram.cumulative_buckets()),
        gauges=point,
    )


def sample_from_exposition(
    samples: Sequence[Tuple[str, Dict[str, str], float]],
    t: float,
    gauges: Optional[Dict[str, Any]] = None,
) -> TelemetrySample:
    """Build a sample from a parsed exposition (the live scrape path).

    ``samples`` is the output of
    :func:`~repro.obs.telemetry.http.parse_exposition`: ``(family,
    labels, value)`` triples.  Labelled families are summed over their
    label sets (one process exposes one peer, so the sum is the peer).
    """
    by_family: Dict[str, float] = {}
    buckets: List[Tuple[float, int]] = []
    for name, labels, value in samples:
        if name == "repro_query_latency_bucket":
            le = labels.get("le", "")
            if le not in ("", "+Inf"):
                buckets.append((float(le), int(value)))
            continue
        by_family[name] = by_family.get(name, 0.0) + value
    counters = {
        key: by_family.get(family, 0.0)
        for key, family in EXPOSITION_FAMILIES.items()
    }
    point = dict(gauges or {})
    point.setdefault(
        "inflight_queries", by_family.get("repro_inflight_queries", 0.0)
    )
    buckets.sort()
    return TelemetrySample(
        t=t, counters=counters, latency_buckets=tuple(buckets), gauges=point
    )


class PeerSeries:
    """The windowed history of one peer's samples.

    Appending a sample fans its counters into per-name
    :class:`TimeSeries` rings and keeps a bounded ring of the full
    samples (for bucket deltas and gauge reads).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self.series: Dict[str, TimeSeries] = {
            name: TimeSeries(capacity) for name in COUNTER_NAMES
        }
        self._samples: List[TelemetrySample] = []

    def append(self, sample: TelemetrySample) -> None:
        for name, value in sample.counters.items():
            series = self.series.get(name)
            if series is None:
                series = self.series[name] = TimeSeries(self.capacity)
            series.append(sample.t, value)
        self._samples.append(sample)
        if len(self._samples) > self.capacity:
            del self._samples[: len(self._samples) - self.capacity]

    def __len__(self) -> int:
        return len(self._samples)

    def latest(self) -> Optional[TelemetrySample]:
        return self._samples[-1] if self._samples else None

    def window(self, duration: float) -> List[TelemetrySample]:
        if not self._samples:
            return []
        horizon = self._samples[-1].t - duration
        return [s for s in self._samples if s.t >= horizon]

    # ------------------------------------------------------------------
    # rollups
    # ------------------------------------------------------------------
    def increase(self, name: str, window: float) -> float:
        series = self.series.get(name)
        return series.increase(window) if series is not None else 0.0

    def rate(self, name: str, window: float) -> float:
        series = self.series.get(name)
        return series.rate(window) if series is not None else 0.0

    def latency_percentile(self, p: float, window: float) -> Optional[float]:
        """Windowed latency quantile from bucket deltas between the
        oldest and newest in-window snapshots."""
        samples = self.window(window)
        if not samples:
            return None
        if len(samples) == 1:
            return percentile_from_buckets(
                samples[0].latency_buckets, p, cumulative=True
            )
        grown = delta_buckets(samples[0].latency_buckets, samples[-1].latency_buckets)
        if not grown:
            # nothing finished inside the window: fall back to all-time
            return percentile_from_buckets(
                samples[-1].latency_buckets, p, cumulative=True
            )
        return percentile_from_buckets(grown, p)

    def rollup(self, window: float) -> Dict[str, Any]:
        """The windowed statistics the SLO rules read.

        ``*_rate`` keys are per-time-unit; ``shed_rate`` and
        ``partial_rate`` are *fractions* of the window's offered /
        finished queries.
        """
        finished = self.increase("queries_finished", window)
        shed = self.increase("queries_shed", window)
        partial = self.increase("partial_results", window)
        offered = finished + shed
        latest = self.latest()
        return {
            "window": window,
            "up": bool(latest.up) if latest is not None else False,
            "queries_finished": finished,
            "query_rate": self.rate("queries_finished", window),
            "message_rate": self.rate("messages", window),
            "byte_rate": self.rate("bytes", window),
            "shed_rate": (shed / offered) if offered else 0.0,
            "partial_rate": (partial / finished) if finished else 0.0,
            "deadline_rate": (
                self.increase("deadline_expirations", window) / finished
                if finished
                else 0.0
            ),
            "p50_latency": self.latency_percentile(50, window),
            "p90_latency": self.latency_percentile(90, window),
            "p99_latency": self.latency_percentile(99, window),
            "inflight": (latest.gauges.get("inflight_queries", 0) if latest else 0),
        }


class ClusterSeries:
    """Per-peer series plus cluster-wide rollups.

    The cluster rollup sums counter movement across peers, takes
    latency percentiles over the *merged* bucket deltas (not an average
    of percentiles), and reports availability as the alive fraction of
    the latest scrape round.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = capacity
        self.peers: Dict[str, PeerSeries] = {}

    def append(self, peer_id: str, sample: TelemetrySample) -> None:
        series = self.peers.get(peer_id)
        if series is None:
            series = self.peers[peer_id] = PeerSeries(self.capacity)
        series.append(sample)

    def rollup(self, window: float) -> Dict[str, Any]:
        finished = shed = partial = deadline = 0.0
        rate = mrate = 0.0
        inflight = 0.0
        merged: Dict[float, int] = {}
        up = total = 0
        for series in self.peers.values():
            finished += series.increase("queries_finished", window)
            shed += series.increase("queries_shed", window)
            partial += series.increase("partial_results", window)
            deadline += series.increase("deadline_expirations", window)
            rate += series.rate("queries_finished", window)
            mrate += series.rate("messages", window)
            samples = series.window(window)
            if len(samples) >= 2:
                for bound, count in delta_buckets(
                    samples[0].latency_buckets, samples[-1].latency_buckets
                ):
                    merged[bound] = merged.get(bound, 0) + count
            elif samples:
                last = 0
                for bound, cumulative in samples[-1].latency_buckets:
                    merged[bound] = merged.get(bound, 0) + cumulative - last
                    last = cumulative
            latest = series.latest()
            if latest is not None:
                total += 1
                if latest.up:
                    up += 1
                    inflight += float(latest.gauges.get("inflight_queries", 0) or 0)
        offered = finished + shed
        buckets = sorted(merged.items())
        return {
            "window": window,
            "peers": total,
            "peers_up": up,
            "availability": (up / total) if total else 1.0,
            "queries_finished": finished,
            "query_rate": rate,
            "message_rate": mrate,
            "inflight": inflight,
            "shed_rate": (shed / offered) if offered else 0.0,
            "partial_rate": (partial / finished) if finished else 0.0,
            "deadline_rate": (deadline / finished) if finished else 0.0,
            "p50_latency": percentile_from_buckets(buckets, 50),
            "p90_latency": percentile_from_buckets(buckets, 90),
            "p99_latency": percentile_from_buckets(buckets, 99),
        }
