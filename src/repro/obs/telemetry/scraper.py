"""The launcher-side scrape loop: cluster rollups, a durable timeline,
and crash diagnostic bundles.

A :class:`ClusterScraper` discovers peers from the ``*.endpoint.json``
files each node writes next to its artifacts, polls every peer's
``/metrics`` + ``/healthz`` mid-run, feeds one shared
:class:`~repro.obs.telemetry.sampler.ClusterSeries`, and evaluates the
SLO monitor per round.  Every round is appended — flushed per line —
to ``timeline.jsonl``, so a SIGKILLed launcher still leaves the
cluster's history on disk up to its last heartbeat.

Timeline record kinds (one JSON object per line):

* ``{"kind": "sample", "peer": ..., "t": ..., "up": ..., ...}`` —
  one per peer per round;
* ``{"kind": "rollup", "t": ..., ...}`` — the cluster rollup;
* ``{"kind": "alert", "state": "firing"|"resolved", ...}`` — SLO
  transitions (schema ``repro.obs/alert-v1``).

:func:`write_diagnostic_bundle` assembles the black box after a crash
or breaker trip: the dead node's durable ``*.events.jsonl`` flight
record, its slow-query dumps, the last scraped health, and the active
alerts — everything an operator needs, in one directory.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...errors import NetworkError
from .http import parse_exposition, scrape, scrape_json
from .sampler import ClusterSeries, TelemetrySample, sample_from_exposition
from .slo import SLOMonitor, SLORule

#: filename each node writes once its telemetry server is bound
ENDPOINT_SUFFIX = ".endpoint.json"


def write_endpoint_file(
    outdir: Path, node_id: str, host: str, port: int, **extra: Any
) -> Path:
    """Publish one node's telemetry address (called by the node itself,
    so discovery survives a dead launcher)."""
    outdir.mkdir(parents=True, exist_ok=True)
    path = outdir / f"{node_id}{ENDPOINT_SUFFIX}"
    record = {"node_id": node_id, "host": host, "port": port}
    record.update(extra)
    path.write_text(json.dumps(record, indent=2, sort_keys=True))
    return path


def discover_endpoints(outdir: Path) -> Dict[str, Tuple[str, int]]:
    """``node_id -> (host, port)`` from the endpoint files in a run dir."""
    endpoints: Dict[str, Tuple[str, int]] = {}
    for path in sorted(Path(outdir).glob(f"*{ENDPOINT_SUFFIX}")):
        try:
            record = json.loads(path.read_text())
            endpoints[record["node_id"]] = (record["host"], int(record["port"]))
        except (ValueError, KeyError):
            continue  # half-written file: the node will rewrite it
    return endpoints


class ClusterScraper:
    """Polls every peer's telemetry endpoints and keeps cluster rollups.

    Args:
        outdir: The run directory (endpoint discovery + timeline home).
        clock: Returns the scrape timestamp; the launcher passes a
            scaled-wall-time clock so live timelines read in the same
            units as simulated ones.
        rules: SLO rules for the cluster monitor (stock set if empty).
        window: Rollup window passed to every evaluation.
        timeline: Timeline filename (``None`` disables the file).
    """

    def __init__(
        self,
        outdir: Path,
        clock: Callable[[], float],
        rules: Tuple[SLORule, ...] = (),
        window: float = 60.0,
        timeline: Optional[str] = "timeline.jsonl",
    ):
        self.outdir = Path(outdir)
        self.clock = clock
        self.window = window
        self.series = ClusterSeries()
        self.monitor = SLOMonitor(rules, scope="cluster")
        self.health: Dict[str, Dict[str, Any]] = {}
        self.rounds = 0
        self.scrape_failures = 0
        self._timeline = None
        if timeline is not None:
            self.outdir.mkdir(parents=True, exist_ok=True)
            self._timeline = open(self.outdir / timeline, "a", buffering=1)

    # ------------------------------------------------------------------
    # the scrape loop
    # ------------------------------------------------------------------
    def scrape_peer(self, node_id: str, host: str, port: int, t: float) -> TelemetrySample:
        """One peer, one round; a dead peer yields a ``down`` sample."""
        try:
            parsed = parse_exposition(scrape(host, port, "/metrics"))
            health = scrape_json(host, port, "/healthz")
        except (NetworkError, ValueError):
            self.scrape_failures += 1
            down = TelemetrySample(
                t=t, counters={}, latency_buckets=(), gauges={}, up=False
            )
            self.health[node_id] = {"status": "down", "node_id": node_id, "t": t}
            return down
        self.health[node_id] = health
        gauges = {"inflight_queries": health.get("inflight_queries", 0)}
        return sample_from_exposition(parsed, t, gauges)

    def scrape_once(self) -> Dict[str, Any]:
        """One full round: every discovered peer, the cluster rollup,
        the SLO evaluation; all appended to the timeline.  Returns the
        cluster rollup (with any alert transitions under ``"alerts"``)."""
        t = self.clock()
        endpoints = discover_endpoints(self.outdir)
        for node_id, (host, port) in sorted(endpoints.items()):
            sample = self.scrape_peer(node_id, host, port, t)
            self.series.append(node_id, sample)
            self._append_timeline(
                {
                    "kind": "sample",
                    "t": t,
                    "peer": node_id,
                    "up": sample.up,
                    "counters": sample.counters,
                    "inflight": sample.gauges.get("inflight_queries", 0),
                }
            )
        rollup = self.series.rollup(self.window)
        rollup["t"] = t
        self._append_timeline({"kind": "rollup", **rollup})
        alerts = self.monitor.evaluate(t, rollup)
        for event in alerts:
            self._append_timeline(event)
        rollup["alerts"] = alerts
        self.rounds += 1
        return rollup

    def _append_timeline(self, record: Dict[str, Any]) -> None:
        if self._timeline is not None:
            self._timeline.write(json.dumps(record, default=str) + "\n")
            self._timeline.flush()

    def close(self) -> None:
        if self._timeline is not None:
            self._timeline.close()
            self._timeline = None

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """A report-ready digest: final rollup, alert history, health."""
        return {
            "rounds": self.rounds,
            "scrape_failures": self.scrape_failures,
            "rollup": self.series.rollup(self.window) if self.series.peers else None,
            "alerts": list(self.monitor.history),
            "active_alerts": self.monitor.active(),
            "health": dict(self.health),
        }


def read_timeline(path: Path) -> List[Dict[str, Any]]:
    """Parse a ``timeline.jsonl``, skipping a torn final line (the one
    record a SIGKILL may have cut mid-write)."""
    records: List[Dict[str, Any]] = []
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        return records
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            continue
    return records


def write_diagnostic_bundle(
    outdir: Path,
    name: str,
    reason: str,
    node_ids: Tuple[str, ...] = (),
    scraper: Optional[ClusterScraper] = None,
    details: Optional[Dict[str, Any]] = None,
) -> Path:
    """Assemble a crash/breaker diagnostic bundle directory.

    Collects, per involved node: its durable flight-recorder
    ``<node>.events.jsonl``, any ``<node>.slow.*.json`` slow-query
    dumps, and its endpoint file; plus a ``manifest.json`` with the
    reason, last known health and the currently active alerts.
    Returns the bundle directory.
    """
    outdir = Path(outdir)
    bundle = outdir / "bundles" / name
    bundle.mkdir(parents=True, exist_ok=True)
    copied: List[str] = []
    patterns = []
    for node_id in node_ids or ("*",):
        patterns += [
            f"{node_id}.events.jsonl",
            f"{node_id}.slow.*.json",
            f"{node_id}{ENDPOINT_SUFFIX}",
        ]
    for pattern in patterns:
        for source in sorted(outdir.glob(pattern)):
            shutil.copy2(source, bundle / source.name)
            copied.append(source.name)
    manifest: Dict[str, Any] = {
        "schema": "repro.obs/bundle-v1",
        "reason": reason,
        "nodes": list(node_ids),
        "files": copied,
    }
    if details:
        manifest["details"] = details
    if scraper is not None:
        manifest["health"] = {
            node: scraper.health.get(node) for node in node_ids if node in scraper.health
        }
        manifest["active_alerts"] = scraper.monitor.active()
    (bundle / "manifest.json").write_text(
        json.dumps(manifest, indent=2, default=str)
    )
    return bundle
