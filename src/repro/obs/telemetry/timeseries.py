"""Windowed time series over cumulative counters and histograms.

The scrape-side substrate of :mod:`repro.obs.telemetry`: bounded ring
buffers of ``(t, value)`` observations with the delta-aware reads a
monitoring stack needs — ``increase()`` and ``rate()`` that survive
counter resets (a restarted peer's counters start again from zero, like
a restarted Prometheus target), and windowed percentile reads computed
from *bucket deltas* of two cumulative histogram snapshots, so a p99
over the last window is available even though the underlying
:class:`~repro.obs.histogram.Histogram` only accumulates.

Time is whatever clock the caller samples on: virtual time in-sim,
wall time live.  Nothing here schedules anything — sampling cadence is
the caller's business, which is what keeps the in-sim path free of
perturbation (no extra simulator events, ever).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

#: Default ring capacity: enough for ~10 minutes at 1 sample/second.
DEFAULT_CAPACITY = 600


class TimeSeries:
    """A bounded ring of ``(t, value)`` samples of one cumulative counter.

    Args:
        capacity: Samples retained; older ones fall off the front.
    """

    __slots__ = ("capacity", "_times", "_values", "_start")

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity < 2:
            raise ValueError("a time series needs capacity >= 2")
        self.capacity = capacity
        self._times: List[float] = []
        self._values: List[float] = []
        self._start = 0  # ring head offset into the lists

    def append(self, t: float, value: float) -> None:
        if len(self._times) < self.capacity:
            self._times.append(t)
            self._values.append(value)
            return
        # overwrite the oldest slot in place (no list churn)
        self._times[self._start] = t
        self._values[self._start] = value
        self._start = (self._start + 1) % self.capacity

    def __len__(self) -> int:
        return len(self._times)

    def samples(self) -> List[Tuple[float, float]]:
        """Oldest-to-newest ``(t, value)`` pairs."""
        n = len(self._times)
        order = range(self._start, self._start + n)
        return [(self._times[i % n], self._values[i % n]) for i in order] if n else []

    def latest(self) -> Optional[Tuple[float, float]]:
        if not self._times:
            return None
        n = len(self._times)
        i = (self._start - 1) % n if n == self.capacity else n - 1
        return (self._times[i], self._values[i])

    # ------------------------------------------------------------------
    # delta-aware rollups
    # ------------------------------------------------------------------
    def window(self, duration: float, now: Optional[float] = None) -> List[Tuple[float, float]]:
        """Samples with ``t >= now - duration`` (``now`` defaults to the
        newest sample's time)."""
        samples = self.samples()
        if not samples:
            return []
        horizon = (now if now is not None else samples[-1][0]) - duration
        return [s for s in samples if s[0] >= horizon]

    def increase(self, duration: float, now: Optional[float] = None) -> float:
        """Counter growth over the window, reset-aware.

        A sample smaller than its predecessor means the counter reset
        (process restart); the growth since the reset is counted from
        zero, exactly like Prometheus's ``increase()``.
        """
        window = self.window(duration, now)
        if len(window) < 2:
            return 0.0
        total = 0.0
        previous = window[0][1]
        for _, value in window[1:]:
            total += value - previous if value >= previous else value
            previous = value
        return total

    def rate(self, duration: float, now: Optional[float] = None) -> float:
        """Per-time-unit growth over the window (``increase / elapsed``)."""
        window = self.window(duration, now)
        if len(window) < 2:
            return 0.0
        elapsed = window[-1][0] - window[0][0]
        if elapsed <= 0:
            return 0.0
        return self.increase(duration, now) / elapsed


#: A cumulative-bucket snapshot: ``(upper_bound, cumulative_count)``
#: pairs sorted by bound — exactly the shape of
#: :meth:`~repro.obs.histogram.Histogram.cumulative_buckets` and of a
#: parsed Prometheus ``_bucket`` family.
BucketSnapshot = Sequence[Tuple[float, int]]


def delta_buckets(
    earlier: BucketSnapshot, later: BucketSnapshot
) -> List[Tuple[float, int]]:
    """Per-bucket growth between two cumulative snapshots.

    Returns non-cumulative ``(upper_bound, count)`` pairs; a later
    snapshot with *smaller* cumulative counts is a reset and the later
    snapshot is returned whole (growth since zero).
    """
    before: Dict[float, int] = {}
    last = 0
    for bound, cumulative in earlier:
        before[bound] = cumulative - last
        last = cumulative
    out: List[Tuple[float, int]] = []
    last = 0
    reset = False
    for bound, cumulative in later:
        in_bucket = cumulative - last
        last = cumulative
        grown = in_bucket - before.get(bound, 0)
        if grown < 0:
            reset = True
            break
        if grown:
            out.append((bound, grown))
    if reset:
        out = []
        last = 0
        for bound, cumulative in later:
            if cumulative - last:
                out.append((bound, cumulative - last))
            last = cumulative
    return out


def percentile_from_buckets(
    buckets: BucketSnapshot, p: float, cumulative: bool = False
) -> Optional[float]:
    """The quantile ``p`` in [0, 100] from bucket counts.

    ``buckets`` are ``(upper_bound, count)`` pairs sorted by bound —
    non-cumulative by default (the :func:`delta_buckets` shape), or
    cumulative with ``cumulative=True``.  Interpolates linearly inside
    the winning bucket between the previous bound and its own, which
    matches :meth:`Histogram.percentile` up to the min/max clamp.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    counts: List[Tuple[float, int]] = []
    last = 0
    for bound, value in buckets:
        count = (value - last) if cumulative else value
        last = value
        if count:
            counts.append((bound, count))
    total = sum(count for _, count in counts)
    if not total:
        return None
    rank = p / 100.0 * total
    seen = 0
    lower = 0.0
    for bound, count in counts:
        if seen + count >= rank:
            fraction = (rank - seen) / count
            return lower + (bound - lower) * min(max(fraction, 0.0), 1.0)
        seen += count
        lower = bound
    return counts[-1][0]
