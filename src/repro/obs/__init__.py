"""Observability: distributed tracing, histogram metrics, profiling.

The ``repro.obs`` subsystem gives the repro per-stage, per-peer
visibility into where a query spends its (virtual) life — routing
annotation, plan compilation, optimiser rewrites, channel execution,
run-time adaptation — the breakdowns the paper argues about in
Sections 2.3–2.5 but the flat counter set could not show.

Three pieces:

* **Tracing** (:mod:`span`, :mod:`tracer`, :mod:`collect`) —
  lightweight spans on simulator virtual time, stitched into one
  causal tree per query by propagating a :class:`TraceContext` inside
  network messages; collected by a bounded :class:`TraceCollector`.
* **Histograms** (:mod:`histogram`) — HDR-style bucketed percentiles
  replacing mean-only latency, kept per stage and per message kind.
* **Surfaces** (:mod:`render`, :mod:`exposition`, :mod:`gauges`) —
  ASCII span trees/timelines, Prometheus-style text exposition, and
  per-peer gauge snapshots.

Everything defaults on; disabling observability swaps in
:data:`NULL_TRACER`, whose spans are a shared no-op singleton, so the
seed's behaviour and bench numbers are preserved.
"""

from .collect import (
    TraceCollector,
    span_tree,
    spans_from_dicts,
    stitch_trace_exports,
    validate_trace,
    validate_trace_dicts,
)
from .gauges import peer_gauges, system_gauges
from .histogram import Histogram
from .render import render_trace
from .span import Span, TraceContext
from .tracer import NULL_SPAN, NULL_TRACER, NullTracer, Tracer
from .exposition import add_const_labels, merge_expositions, render_prometheus

__all__ = [
    "Histogram",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceCollector",
    "TraceContext",
    "Tracer",
    "peer_gauges",
    "add_const_labels",
    "merge_expositions",
    "render_prometheus",
    "render_trace",
    "span_tree",
    "spans_from_dicts",
    "stitch_trace_exports",
    "system_gauges",
    "validate_trace",
    "validate_trace_dicts",
]
