"""Prometheus-style text exposition of the metric set.

``render_prometheus(metrics)`` turns a
:class:`~repro.metrics.collectors.MetricSet` (plus optional per-peer
gauges) into the plain-text exposition format: ``# HELP`` / ``# TYPE``
headers, counter samples, histogram ``_bucket``/``_sum``/``_count``
series with ``le`` labels, and labelled gauges.  The schema is stable;
CI archives it as a build artifact and ``python -m repro metrics``
prints it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .histogram import Histogram


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _counter(
    lines: List[str], name: str, help_text: str, value, labelled=None
) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} counter")
    if labelled is None:
        lines.append(f"{name} {_fmt(value)}")
        return
    label, samples = labelled
    for key in sorted(samples):
        lines.append(f'{name}{{{label}="{_escape(str(key))}"}} {_fmt(samples[key])}')


def _histogram(
    lines: List[str],
    name: str,
    help_text: str,
    histograms: Dict[str, Histogram],
    label: Optional[str] = None,
) -> None:
    """One Prometheus histogram family, optionally split by a label."""
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} histogram")
    for key in sorted(histograms):
        histogram = histograms[key]
        prefix = f'{label}="{_escape(str(key))}",' if label else ""
        for upper, cumulative in histogram.cumulative_buckets():
            lines.append(f'{name}_bucket{{{prefix}le="{_fmt(upper)}"}} {cumulative}')
        lines.append(f'{name}_bucket{{{prefix}le="+Inf"}} {histogram.count}')
        suffix = f'{{{label}="{_escape(str(key))}"}}' if label else ""
        lines.append(f"{name}_sum{suffix} {_fmt(histogram.total)}")
        lines.append(f"{name}_count{suffix} {histogram.count}")


def add_const_labels(text: str, labels: Dict[str, Any]) -> str:
    """Inject constant labels into every sample of an exposition.

    Used by live deployments to tag each process's dump with its
    identity (``peer_id``, ``pid``, ``transport``) so per-process series
    stay distinguishable after a merge.  Comment lines pass through.
    """
    if not labels:
        return text
    rendered = ",".join(
        f'{name}="{_escape(str(value))}"' for name, value in sorted(labels.items())
    )
    out: List[str] = []
    # newline splits only: label values may legally contain \f, \v and
    # unicode separators, which str.splitlines would break on
    for line in text.split("\n"):
        if not line or line.startswith("#"):
            out.append(line)
            continue
        name_and_labels, _, value = line.rpartition(" ")
        if name_and_labels.endswith("}"):
            out.append(f"{name_and_labels[:-1]},{rendered}}} {value}")
        else:
            out.append(f"{name_and_labels}{{{rendered}}} {value}")
    if out and out[-1] == "":
        out.pop()  # the split's artifact of the trailing newline
    return "\n".join(out) + "\n"


def merge_expositions(texts: List[str]) -> str:
    """Merge several per-process expositions into one.

    Each input carries distinct const labels (see
    :func:`add_const_labels`), so the merge keeps every sample and emits
    each metric family's ``# HELP``/``# TYPE`` header once, samples
    grouped under it in input order.
    """
    order: List[str] = []
    headers: Dict[str, List[str]] = {}
    samples: Dict[str, List[str]] = {}

    def family_of(sample_line: str, header: List[str]) -> str:
        if header:  # "# HELP <name> ..." names the family authoritatively
            return header[0].split(" ", 3)[2]
        name = sample_line.split("{", 1)[0].split(" ", 1)[0]
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in headers:
                return name[: -len(suffix)]
        return name

    for text in texts:
        pending_header: List[str] = []
        for line in text.split("\n"):  # not splitlines: see add_const_labels
            if not line:
                continue
            if line.startswith("#"):
                pending_header.append(line)
                continue
            family = family_of(line, pending_header)
            if family not in headers:
                headers[family] = pending_header or []
                order.append(family)
            pending_header = []
            samples.setdefault(family, []).append(line)
    out: List[str] = []
    for family in order:
        out.extend(headers[family])
        out.extend(samples.get(family, []))
    return "\n".join(out) + "\n"


def render_prometheus(
    metrics,
    gauges: Optional[Dict[str, Dict[str, Any]]] = None,
    const_labels: Optional[Dict[str, Any]] = None,
) -> str:
    """The exposition text for one metric set (and optional gauges).

    ``const_labels`` are appended to every sample — live deployments
    pass ``{"peer_id": ..., "pid": ..., "transport": ...}``.
    """
    lines: List[str] = []
    _counter(lines, "repro_messages_total", "Messages delivered", metrics.messages_total)
    _counter(lines, "repro_bytes_total", "Payload bytes shipped", metrics.bytes_total)
    _counter(
        lines,
        "repro_messages_by_kind_total",
        "Messages by payload kind",
        None,
        ("kind", metrics.messages_by_kind),
    )
    _counter(
        lines,
        "repro_bytes_by_kind_total",
        "Bytes by payload kind",
        None,
        ("kind", metrics.bytes_by_kind),
    )
    _counter(
        lines,
        "repro_queries_processed_total",
        "Queries processed per peer",
        None,
        ("peer", metrics.queries_processed),
    )
    for name, help_text in (
        ("cache_hits", "Routing/plan cache hits"),
        ("cache_misses", "Routing/plan cache misses"),
        ("cache_invalidations", "Cache entries invalidated"),
        ("coalesced_queries", "Queries parked behind a singleflight leader"),
        ("retries", "Protocol-level retries"),
        ("retransmits", "Channel subplan retransmits"),
        ("suspicions", "Peer suspicions recorded"),
        ("partial_results", "Coverage-annotated partial answers"),
        ("dropped_messages", "Messages dropped by the fault plan"),
        ("duplicated_messages", "Messages duplicated by the fault plan"),
        ("batches_sent", "Binding batches (DataPackets) shipped"),
        ("discarded_bindings", "Bindings thrown away by plan discards"),
        ("queries_shed", "Queries refused by admission control"),
        ("deadline_expirations", "Per-query deadlines that fired"),
        ("joins", "Peers registering with the overlay"),
        ("goodbyes", "Graceful departures observed"),
        ("rejoins", "Peers re-advertising after crash or departure"),
        ("recoveries", "Crash recoveries from durable state"),
        ("log_replays", "Membership-log records replayed on recovery"),
        ("snapshot_bytes", "Bytes written by durable-state snapshots"),
    ):
        _counter(lines, f"repro_{name}_total", help_text, getattr(metrics, name))
    lines.append("# HELP repro_inflight_queries Queries currently in flight")
    lines.append("# TYPE repro_inflight_queries gauge")
    lines.append(f"repro_inflight_queries {metrics.inflight_queries}")
    lines.append(
        "# HELP repro_max_inflight_queries High-watermark of concurrent queries"
    )
    lines.append("# TYPE repro_max_inflight_queries gauge")
    lines.append(f"repro_max_inflight_queries {metrics.max_inflight_queries}")
    if metrics.queue_depth_histogram.count:
        _histogram(
            lines,
            "repro_admission_queue_depth",
            "Admission queue depth observed at enqueue time",
            {"": metrics.queue_depth_histogram},
        )
    if metrics.latency_histogram.count:
        _histogram(
            lines,
            "repro_query_latency",
            "End-to-end query latency (virtual time), all attempts",
            {"": metrics.latency_histogram},
        )
        summary = metrics.latency_histogram.summary()
        lines.append("# HELP repro_query_latency_quantile Query latency percentiles")
        lines.append("# TYPE repro_query_latency_quantile gauge")
        for quantile in ("p50", "p90", "p99", "max"):
            lines.append(
                f'repro_query_latency_quantile{{quantile="{quantile}"}} '
                f"{_fmt(summary[quantile])}"
            )
    if metrics.bindings_per_batch.count:
        _histogram(
            lines,
            "repro_bindings_per_batch",
            "Bindings carried per shipped batch",
            {"": metrics.bindings_per_batch},
        )
    if metrics.stage_latency:
        _histogram(
            lines,
            "repro_stage_duration",
            "Per-stage span durations (virtual time)",
            metrics.stage_latency,
            label="stage",
        )
    if metrics.message_delay_by_kind:
        _histogram(
            lines,
            "repro_message_delay",
            "Scheduled delivery delay per message kind",
            metrics.message_delay_by_kind,
            label="kind",
        )
    if gauges:
        lines.append("# HELP repro_peer_gauge Point-in-time per-peer state")
        lines.append("# TYPE repro_peer_gauge gauge")
        for peer_id in sorted(gauges):
            for gauge_name in sorted(gauges[peer_id]):
                lines.append(
                    f'repro_peer_gauge{{peer="{_escape(peer_id)}",'
                    f'gauge="{_escape(gauge_name)}"}} '
                    f"{_fmt(gauges[peer_id][gauge_name])}"
                )
    text = "\n".join(lines) + "\n"
    if const_labels:
        text = add_const_labels(text, const_labels)
    return text
