"""Trace collection: bounded storage, trees, validation, JSON export.

The :class:`TraceCollector` keeps every span of the most recent traces
(whole traces are evicted oldest-first once either bound is exceeded),
builds the causal tree of a trace, validates it — single root, no
orphans, children causally after their parent — and exports traces as
JSON-serialisable dicts with a stable schema.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, List, Optional

from .span import Span

#: Tolerance for start-time comparisons on the virtual clock.
_EPS = 1e-9


def _span_order(span: Span):
    """Sort key: start time, then creation order (span ids are
    ``s<n>`` — or ``s<n>@<node>`` from a live process — so the digits
    after the ``s`` recover mint order; lexicographic comparison would
    put ``s10`` before ``s2``)."""
    digits = ""
    for char in span.span_id[1:]:
        if not char.isdigit():
            break
        digits += char
    return (span.start, int(digits) if digits else 0, span.span_id)


class TraceCollector:
    """Bounded per-trace span storage.

    Args:
        max_traces: How many distinct traces to retain.
        max_spans: Total span budget across all retained traces.
    """

    def __init__(self, max_traces: int = 256, max_spans: int = 50_000):
        self.max_traces = max_traces
        self.max_spans = max_spans
        self._traces: "OrderedDict[str, List[Span]]" = OrderedDict()
        self._span_count = 0
        #: whole traces dropped to stay within bounds
        self.evicted_traces = 0

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def on_started(self, span: Span) -> None:
        """Register a span the moment it opens, so still-running stages
        appear in exports (marked by ``end: null``)."""
        spans = self._traces.get(span.trace_id)
        if spans is None:
            spans = self._traces[span.trace_id] = []
        spans.append(span)
        self._span_count += 1
        if self._span_count > self.max_spans or len(self._traces) > self.max_traces:
            self._evict()

    def _evict(self) -> None:
        while len(self._traces) > 1 and (
            len(self._traces) > self.max_traces or self._span_count > self.max_spans
        ):
            _, dropped = self._traces.popitem(last=False)
            self._span_count -= len(dropped)
            self.evicted_traces += 1

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def trace_ids(self) -> List[str]:
        return list(self._traces)

    def spans(self, trace_id: str) -> List[Span]:
        """The trace's spans, ordered by (start, creation order)."""
        spans = list(self._traces.get(trace_id, ()))
        spans.sort(key=_span_order)
        return spans

    def latest_trace_id(self) -> Optional[str]:
        return next(reversed(self._traces)) if self._traces else None

    def __len__(self) -> int:
        return self._span_count

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export(self, trace_id: Optional[str] = None) -> dict:
        """One trace (or all retained ones) as a JSON-ready dict."""
        if trace_id is not None:
            ids = [trace_id]
        else:
            ids = self.trace_ids()
        return {
            "schema": "repro.obs/trace-v1",
            "evicted_traces": self.evicted_traces,
            "traces": [
                {
                    "trace_id": tid,
                    "spans": [span.to_dict() for span in self.spans(tid)],
                }
                for tid in ids
            ],
        }

    def export_json(self, trace_id: Optional[str] = None, indent: int = 2) -> str:
        # strict: Span.to_dict guarantees JSON scalars, so any
        # non-serialisable value here is a bug worth crashing on —
        # no ``default=str`` escape hatch
        return json.dumps(self.export(trace_id), indent=indent)


def span_tree(spans: List[Span]) -> Dict[Optional[str], List[Span]]:
    """Children keyed by parent span id (``None`` holds the roots)."""
    tree: Dict[Optional[str], List[Span]] = {}
    ids = {span.span_id for span in spans}
    for span in sorted(spans, key=_span_order):
        parent = span.parent_id if span.parent_id in ids else None
        tree.setdefault(parent, []).append(span)
    return tree


def validate_trace(spans: List[Span], cross_clock: bool = False) -> List[str]:
    """Check a trace is a single rooted, gap-free causal tree.

    Returns a list of problems (empty means valid):

    * exactly one root span;
    * every non-root span's parent is present (no orphans — a missing
      parent is a *gap* in the causal chain, the symptom of a dropped
      trace context);
    * no span starts before its parent (causality on virtual time);
    * no span is left unfinished.

    ``cross_clock=True`` restricts the causality check to spans on the
    same peer: a live deployment's processes each run their own
    virtual-clock epoch, so start times are only comparable within one
    process (in-sim every peer shares the simulator clock, and the full
    check applies).
    """
    problems: List[str] = []
    if not spans:
        return ["empty trace"]
    by_id = {span.span_id: span for span in spans}
    roots = [span for span in spans if span.parent_id is None]
    if len(roots) != 1:
        problems.append(
            f"expected exactly 1 root span, found {len(roots)}: "
            + ", ".join(f"{s.name}@{s.peer_id}" for s in roots)
        )
    for span in spans:
        if span.parent_id is not None and span.parent_id not in by_id:
            problems.append(
                f"orphan span {span.name}@{span.peer_id} "
                f"(parent {span.parent_id} missing — context gap)"
            )
        parent = by_id.get(span.parent_id) if span.parent_id else None
        if (
            parent is not None
            and span.start + _EPS < parent.start
            and (not cross_clock or span.peer_id == parent.peer_id)
        ):
            problems.append(
                f"span {span.name}@{span.peer_id} starts at {span.start} "
                f"before its parent {parent.name} ({parent.start})"
            )
        if span.end is None:
            problems.append(f"span {span.name}@{span.peer_id} never finished")
    return problems


class _SpanRecord:
    """A :class:`Span` stand-in built from an exported dict — enough
    API surface to re-validate *and* re-render a trace that crossed a
    JSON boundary (a node's export, a merged live-run artifact)."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "peer_id",
        "start",
        "end",
        "status",
        "attributes",
        "events",
    )

    def __init__(self, record: dict):
        self.trace_id = record.get("trace_id", "?")
        self.span_id = record["span_id"]
        self.parent_id = record.get("parent_id")
        self.name = record.get("name", "?")
        self.peer_id = record.get("peer", "?")
        self.start = record.get("start", 0.0)
        self.end = record.get("end")
        self.status = record.get("status", "ok")
        self.attributes = dict(record.get("attributes") or {})
        self.events = [tuple(event) for event in record.get("events") or ()]

    @property
    def duration(self):
        return None if self.end is None else self.end - self.start


def spans_from_dicts(records: List[dict]) -> List[_SpanRecord]:
    """Exported span dicts as render/validate-ready span objects,
    ordered by (start, creation order)."""
    spans = [_SpanRecord(record) for record in records]
    spans.sort(key=_span_order)
    return spans


def stitch_trace_exports(exports: List[dict]) -> Dict[str, List[dict]]:
    """Merge per-process trace exports into whole traces.

    A distributed trace's spans are spread across the processes that
    executed it; each node's collector only holds its local fragment.
    This gathers every fragment's spans by trace id, so the reassembled
    trace can be validated as the single causal tree it is.
    """
    stitched: Dict[str, List[dict]] = {}
    for export in exports:
        for trace in export.get("traces", ()):
            stitched.setdefault(trace["trace_id"], []).extend(trace["spans"])
    for spans in stitched.values():
        spans.sort(key=lambda s: _span_order(_SpanRecord(s)))
    return stitched


def validate_trace_dicts(spans: List[dict], cross_clock: bool = False) -> List[str]:
    """:func:`validate_trace` over exported span dicts."""
    return validate_trace(spans_from_dicts(spans), cross_clock=cross_clock)
