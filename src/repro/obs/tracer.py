"""Tracer: mints spans against the simulator's virtual clock.

One :class:`Tracer` serves a whole simulated network (it plays the
role a per-process tracer plus an OTLP backend would play in a real
deployment): peers call ``network.tracer.start_span(...)`` and pass
the returned span's :class:`~repro.obs.span.TraceContext` along inside
messages.  Finished spans flow into a
:class:`~repro.obs.collect.TraceCollector` and their durations feed
the per-stage histograms of :class:`~repro.metrics.collectors.MetricSet`.

The disabled path is a **no-op recorder**: :data:`NULL_TRACER` returns
the shared :data:`NULL_SPAN` singleton from every call, whose methods
do nothing and whose ``context()`` is ``None`` — so messages carry no
context and the whole query path runs at seed cost.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from .span import Span, TraceContext


class Tracer:
    """The recording tracer.

    Args:
        clock: Returns the current virtual time (``lambda: network.now``).
        collector: Receives every finished span (optional).
        metrics: A :class:`~repro.metrics.collectors.MetricSet`; each
            finished span's duration is folded into the per-stage
            histogram under the span's name (optional).
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float],
        collector=None,
        metrics=None,
    ):
        # bound directly (not wrapped in a method): ``now`` sits on the
        # hot path of every span start/finish/annotate
        self.now = clock
        self.collector = collector
        self.metrics = metrics
        self._ids = itertools.count(1)
        #: appended to every minted span/trace id.  In-sim it stays
        #: empty (one tracer serves the whole network, ids are already
        #: unique and deterministic); each live node process sets it to
        #: ``@<node-id>`` so ids from different processes never collide
        #: when the launcher stitches their exports into one trace.
        self.id_suffix = ""

    def start_span(
        self,
        name: str,
        peer: str,
        parent: Optional[TraceContext] = None,
        trace_id: Optional[str] = None,
        **attributes: Any,
    ) -> Span:
        """Open a span.

        With ``parent`` set, the span joins the parent's trace; with
        ``trace_id`` (and no parent) it roots a new trace under that id
        — query traces use the query id, keeping exports deterministic
        across same-seed runs.
        """
        if parent is not None:
            trace = parent.trace_id
            parent_id: Optional[str] = parent.span_id
        else:
            trace = (
                trace_id
                if trace_id is not None
                else f"t{next(self._ids)}{self.id_suffix}"
            )
            parent_id = None
        span = Span(
            self,
            trace,
            f"s{next(self._ids)}{self.id_suffix}",
            parent_id,
            name,
            peer,
            self.now(),
            attributes,
        )
        if self.collector is not None:
            self.collector.on_started(span)
        return span

class _NullSpan:
    """The shared do-nothing span (disabled-observability path)."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    peer_id = ""
    start = 0.0
    end: Optional[float] = 0.0
    status = "ok"
    attributes: dict = {}
    events: list = []
    duration: Optional[float] = 0.0

    def context(self) -> None:
        return None

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    def annotate(self, text: str) -> None:
        pass

    def finish(self, status: str = "ok") -> None:
        pass

    def to_dict(self) -> dict:
        return {}

    def __repr__(self) -> str:
        return "NullSpan()"

    def __bool__(self) -> bool:
        return False


#: The singleton no-op span every :class:`NullTracer` call returns.
NULL_SPAN = _NullSpan()


class NullTracer:
    """The no-op recorder: observability disabled at zero overhead."""

    enabled = False
    collector = None
    metrics = None

    def now(self) -> float:
        return 0.0

    def start_span(self, name, peer, parent=None, trace_id=None, **attributes):
        return NULL_SPAN


#: Shared instance handed to networks built with observability off.
NULL_TRACER = NullTracer()
