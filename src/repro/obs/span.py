"""Spans: the unit of distributed tracing.

A :class:`Span` covers one stage of a query's life at one peer —
routing, a subsumption-backed route computation, plan compilation, an
optimiser rewrite, a channel's lifetime, a remote subplan execution —
with start/end stamped on the simulator's *virtual* clock.  Its
:class:`TraceContext` is what travels inside network messages so that
child spans opened on remote peers stitch into the same causal tree.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional, Tuple


def _stringify(value: Any):
    """Render deferred attribute values at export time.  Spans may hold
    live objects (e.g. an optimiser's plan tree) so that the hot path
    never pays for string building; anything with a ``render()`` is
    rendered here, when the trace is actually read.  The result is
    always a JSON scalar — exports must serialise strictly, without a
    ``default=`` escape hatch."""
    render = getattr(value, "render", None)
    if callable(render):
        return str(render())
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return str(value)


class TraceContext(NamedTuple):
    """The portable identity of a span: enough to parent a child to it
    from another peer.  Rides inside :class:`~repro.net.message.Message`
    envelopes (hybrid routing requests, subplan packets, ad-hoc
    partial-plan forwards alike)."""

    trace_id: str
    span_id: str

    def size_bytes(self) -> int:
        # the W3C traceparent header is ~55 bytes; ours is comparable
        return 16 + len(self.trace_id) + len(self.span_id)


class Span:
    """One recorded stage.

    Attributes:
        trace_id: The query's trace (the root query id).
        span_id: Unique within the collector.
        parent_id: The parent span's id, or ``None`` for the root.
        name: Stage name (``"routing"``, ``"channel"``, ...).
        peer_id: The peer the stage ran at.
        start: Virtual time the stage began.
        end: Virtual time it finished (``None`` while open).
        status: ``"ok"`` / ``"error"`` / ... set by :meth:`finish`.
        attributes: Tagged key/value details.
        events: Timestamped annotations (retries, faults, packets).
    """

    __slots__ = (
        "_tracer",
        "_ctx",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "peer_id",
        "start",
        "end",
        "status",
        "attributes",
        "events",
    )

    def __init__(
        self,
        tracer,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        peer_id: str,
        start: float,
        attributes: Optional[Dict[str, Any]] = None,
    ):
        self._tracer = tracer
        self._ctx: Optional[TraceContext] = None
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.peer_id = peer_id
        self.start = start
        self.end: Optional[float] = None
        self.status = "ok"
        # adopted, not copied: the tracer hands over a fresh kwargs dict
        self.attributes: Dict[str, Any] = attributes if attributes is not None else {}
        # allocated lazily on the first annotate — most spans have none
        self.events: Optional[List[Tuple[float, str]]] = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def context(self) -> TraceContext:
        """The context to propagate to children (possibly remote)."""
        ctx = self._ctx
        if ctx is None:
            ctx = self._ctx = TraceContext(self.trace_id, self.span_id)
        return ctx

    def set(self, **attributes: Any) -> "Span":
        self.attributes.update(attributes)
        return self

    def annotate(self, text: str) -> None:
        """Record a timestamped event (a retry, a fault, a packet)."""
        if self.events is None:
            self.events = []
        self.events.append((self._tracer.now(), text))

    def finish(self, status: str = "ok") -> None:
        """Close the span (idempotent) and feed its duration to the
        per-stage histograms."""
        if self.end is not None:
            return
        tracer = self._tracer
        end = self.end = tracer.now()
        self.status = status
        metrics = tracer.metrics
        if metrics is not None:
            # bare append — the per-stage histograms fold lazily
            metrics._stage_pending.append((self.name, end - self.start))

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serialisable record (stable schema)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "peer": self.peer_id,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": {
                key: _stringify(value) for key, value in self.attributes.items()
            },
            "events": [list(event) for event in self.events or ()],
        }

    def __repr__(self) -> str:
        end = f"{self.end:.2f}" if self.end is not None else "…"
        return (
            f"Span({self.name}@{self.peer_id} {self.trace_id}/{self.span_id} "
            f"[{self.start:.2f}–{end}])"
        )
