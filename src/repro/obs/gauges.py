"""Per-peer gauge snapshots: point-in-time operational state.

Counters and histograms say what *happened*; gauges say what *is* —
how many coordinations a peer currently holds, how many channels it
has open, whether it sits quarantined behind a suspicion.  The
snapshot is computed on demand from live peer objects (no background
bookkeeping, so the disabled-observability path pays nothing).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable


def _gauges_for(peer) -> Dict[str, Any]:
    channels = getattr(peer, "channels", None)
    quarantine = getattr(peer, "quarantine", None)
    scheduler = getattr(peer, "scheduler", None)
    return {
        "pending_queries": len(getattr(peer, "_pending", ())),
        "open_channels": len(channels.open_channels()) if channels is not None else 0,
        "quarantined_peers": len(quarantine) if quarantine is not None else 0,
        "known_advertisements": len(getattr(peer, "known_advertisements", ())),
        # workload engine: admission queue depths and scheduler backlog
        "queued_queries": len(getattr(peer, "_admission_queue", ())),
        "queued_route_requests": len(getattr(peer, "_route_queue", ())),
        "scheduler_backlog": scheduler.pending() if scheduler is not None else 0,
    }


def peer_gauges(peers: Iterable) -> Dict[str, Dict[str, Any]]:
    """Gauge snapshot for every peer, keyed by peer id.

    Accepts any iterable of peer objects (simple peers, super-peers,
    clients); attributes a role does not have read as zero.
    """
    return {peer.peer_id: _gauges_for(peer) for peer in peers}


def system_gauges(system) -> Dict[str, Dict[str, Any]]:
    """Gauges for every peer of a deployed system (hybrid or ad-hoc:
    super-peers, simple peers and clients alike), plus the network's
    own state under the pseudo-peer id ``_network``."""
    peers = []
    for attribute in ("super_peers", "peers", "clients"):
        peers.extend(getattr(system, attribute, {}).values())
    gauges = peer_gauges(peers)
    network = getattr(system, "network", None)
    if network is not None:
        gauges["_network"] = {
            "virtual_time": network.now,
            "pending_events": network.pending_events(),
            "down_peers": len(network._down),
        }
    return gauges
