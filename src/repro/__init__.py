"""SQPeer — semantic query routing and processing for P2P RDF/S bases.

A reproduction of "Semantic Query Routing and Processing in P2P
Database Systems: The ICS-FORTH SQPeer Middleware" (Kokkinidis &
Christophides, 2004).

The public API re-exports the pieces a downstream user composes:

* the RDF/S substrate (:mod:`repro.rdf`),
* the RQL/RVL languages (:mod:`repro.rql`, :mod:`repro.rvl`),
* the core routing/planning/optimisation pipeline (:mod:`repro.core`),
* the two deployable architectures (:mod:`repro.systems`),
* the paper's scenarios and synthetic workloads
  (:mod:`repro.workloads`).

Quickstart::

    from repro import HybridSystem
    from repro.workloads import hybrid_scenario, PAPER_QUERY

    system = HybridSystem.from_scenario(hybrid_scenario())
    table = system.query("P1", PAPER_QUERY)
    for binding in table.bindings():
        print(binding)
"""

from .errors import (
    ChannelError,
    EvaluationError,
    MappingError,
    NetworkError,
    ParseError,
    PeerError,
    PlanningError,
    RoutingError,
    SQPeerError,
    SchemaError,
)
from .core import (
    CostModel,
    Statistics,
    assign_sites,
    build_plan,
    optimize,
    replan,
    route_query,
)
from .rdf import Graph, Literal, Namespace, Schema, Triple, URI
from .rql import BindingTable, parse_query, pattern_from_text, query
from .rvl import ActiveSchema, parse_view
from .systems import AdhocSystem, HybridSystem

__version__ = "1.0.0"

__all__ = [
    "ActiveSchema",
    "AdhocSystem",
    "BindingTable",
    "ChannelError",
    "CostModel",
    "EvaluationError",
    "Graph",
    "HybridSystem",
    "Literal",
    "MappingError",
    "Namespace",
    "NetworkError",
    "ParseError",
    "PeerError",
    "PlanningError",
    "RoutingError",
    "SQPeerError",
    "Schema",
    "SchemaError",
    "Statistics",
    "Triple",
    "URI",
    "assign_sites",
    "build_plan",
    "optimize",
    "parse_query",
    "parse_view",
    "pattern_from_text",
    "query",
    "replan",
    "route_query",
    "__version__",
]
